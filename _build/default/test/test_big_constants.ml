(* Arbitrary-width constants: agreement with the int API at small widths,
   and cryptographic-width resource generation (the regime the int API
   cannot reach). *)

open Mbu_bitstring
open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let test_matches_int_api_semantics () =
  let n = 3 and p = 7 in
  let pb = Bitstring.of_int ~width:n p in
  List.iter
    (fun mbu ->
      for x_val = 0 to p - 1 do
        for y_val = 0 to p - 1 do
          let b = Builder.create () in
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" n in
          Mod_add.modadd_big ~mbu Mod_add.spec_cdkpm b ~p:pb ~x ~y;
          let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
          Alcotest.(check int)
            (Printf.sprintf "big modadd mbu=%b x=%d y=%d" mbu x_val y_val)
            ((x_val + y_val) mod p)
            (value r.Sim.state y);
          Alcotest.(check bool) "clean" true
            (Sim.wires_zero r.Sim.state ~except:[ x; y ])
        done
      done)
    [ false; true ]

let test_matches_int_api_counts () =
  (* identical circuits gate for gate at a width both APIs support *)
  let n = 16 in
  let p = (1 lsl n) - 3 in
  let build_int () =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y;
    Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b)
  in
  let build_big () =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    Mod_add.modadd_big ~mbu:true Mod_add.spec_cdkpm b
      ~p:(Bitstring.of_int ~width:n p) ~x ~y;
    Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b)
  in
  Alcotest.(check bool) "same counts" true
    (Counts.approx_equal (build_int ()) (build_big ()))

let test_constant_modadd_big () =
  let n = 3 and p = 7 in
  for a = 0 to p - 1 do
    for x_val = 0 to p - 1 do
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      Mod_add.modadd_const_big ~mbu:true Mod_add.spec_cdkpm b
        ~p:(Bitstring.of_int ~width:n p)
        ~a:(Bitstring.of_int ~width:n a)
        ~x;
      let r = Sim.run_builder ~rng b ~inits:[ (x, x_val) ] in
      Alcotest.(check int)
        (Printf.sprintf "a=%d x=%d" a x_val)
        ((x_val + a) mod p)
        (value r.Sim.state x)
    done
  done

let test_controlled_big () =
  let n = 3 and p = 5 in
  for ctrl_val = 0 to 1 do
    for x_val = 0 to p - 1 do
      let b = Builder.create () in
      let c = Builder.fresh_register b "c" 1 in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" n in
      Mod_add.modadd_controlled_big ~mbu:true Mod_add.spec_mixed b
        ~ctrl:(Register.get c 0)
        ~p:(Bitstring.of_int ~width:n p)
        ~x ~y;
      let r =
        Sim.run_builder ~rng b ~inits:[ (c, ctrl_val); (x, x_val); (y, 2) ]
      in
      Alcotest.(check int)
        (Printf.sprintf "c=%d x=%d" ctrl_val x_val)
        ((2 + (ctrl_val * x_val)) mod p)
        (value r.Sim.state y)
    done
  done

(* The point of the whole module: a 2048-bit RSA-style modulus. *)
let test_rsa_width_resources () =
  let n = 2048 in
  (* a dense pseudo-random odd 2048-bit modulus with the top bit set *)
  let p =
    Bitstring.init n (fun i ->
        i = 0 || i = n - 1 || (i * 2654435761) land 0x40000 <> 0)
  in
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  Mod_add.modadd_big ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y;
  let c = Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b) in
  Alcotest.(check (float 0.)) "7n+2 toffoli at n=2048"
    ((7. *. float_of_int n) +. 2.)
    c.Counts.toffoli;
  Alcotest.(check bool) "qubit budget ~3n" true
    (Builder.num_qubits b < (3 * n) + 16);
  (* and the MBU delta at this width: exactly n + 1/2 fewer than without *)
  let b2 = Builder.create () in
  let x2 = Builder.fresh_register b2 "x" n in
  let y2 = Builder.fresh_register b2 "y" n in
  Mod_add.modadd_big ~mbu:false Mod_add.spec_cdkpm b2 ~p ~x:x2 ~y:y2;
  let c2 = Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b2) in
  Alcotest.(check (float 0.)) "mbu saves n toffoli at n=2048"
    (float_of_int n)
    (c2.Counts.toffoli -. c.Counts.toffoli)

let test_rejects_draper () =
  let b = Builder.create () in
  let y = Builder.fresh_register b "y" 5 in
  Alcotest.check_raises "draper rejected"
    (Invalid_argument
       "Adder_big.add_const: Draper constants are capped at 61 bits; use Adder")
    (fun () ->
      Adder_big.add_const Adder.Draper b ~a:(Bitstring.of_int ~width:4 3) ~y)

let test_rejects_oversize_constant () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 3 in
  let t = Builder.fresh_register b "t" 1 in
  Alcotest.check_raises "constant too wide"
    (Invalid_argument "Adder_big.load_const: constant does not fit 3 qubits")
    (fun () ->
      Adder_big.compare_const Adder.Cdkpm b
        ~a:(Bitstring.of_int ~width:5 17)
        ~x ~target:(Register.get t 0))

let suite =
  ( "big-constants",
    [ Alcotest.test_case "semantics match int api" `Quick
        test_matches_int_api_semantics;
      Alcotest.test_case "counts match int api" `Quick test_matches_int_api_counts;
      Alcotest.test_case "constant modadd" `Quick test_constant_modadd_big;
      Alcotest.test_case "controlled modadd" `Quick test_controlled_big;
      Alcotest.test_case "rsa-width resources (n=2048)" `Quick
        test_rsa_width_resources;
      Alcotest.test_case "rejects draper" `Quick test_rejects_draper;
      Alcotest.test_case "rejects oversize constants" `Quick
        test_rejects_oversize_constant ] )
