(** Classical bit-string arithmetic (paper section 1.3 and appendix A).

    Bit strings are stored LSB-first: bit [i] of [x] has weight [2^i], matching
    the paper's convention [x = x_{n-1} ... x_0]. This module is the reference
    semantics against which every quantum circuit in the library is validated:
    circuits are simulated and their register contents compared with the
    functions below. *)

type t
(** An immutable bit string of fixed length. *)

(** {1 Construction and observation} *)

val length : t -> int

val get : t -> int -> bool
(** [get x i] is bit [i] (weight [2^i]). Raises [Invalid_argument] if [i] is
    out of bounds. *)

val zero : int -> t
(** [zero n] is the all-zeros string of length [n]. *)

val init : int -> (int -> bool) -> t

val of_int : width:int -> int -> t
(** [of_int ~width v] encodes the non-negative integer [v mod 2^width]
    (remark A.2). Raises [Invalid_argument] if [v < 0] or [width < 0]. *)

val to_int : t -> int
(** Unsigned value [sum_i x_i 2^i] (remark A.2). Raises [Invalid_argument] if
    the string is longer than 62 bits. *)

val to_signed_int : t -> int
(** Signed value under 2's-complement interpretation: the most significant bit
    carries weight [-2^(n-1)] (remark A.4). *)

val of_signed_int : width:int -> int -> t
(** [of_signed_int ~width v] encodes [v] in 2's complement on [width] bits
    (remark A.4). Raises [Invalid_argument] when [v] is not representable. *)

val of_bools : bool list -> t
(** LSB first. *)

val to_bools : t -> bool list

val of_string : string -> t
(** MSB-first string of ['0']/['1'] characters, as written in the paper
    ([x_{n-1} ... x_0]). Raises [Invalid_argument] on other characters. *)

val to_string : t -> string
(** MSB-first rendering. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** {1 Bit-level operations} *)

val maj : bool -> bool -> bool -> bool
(** Majority of three bits (equation (5)). *)

val carries : t -> t -> t
(** [carries x y] is the carry string [c_0 ... c_n] of [x + y] (length
    [n + 1]), defined by the recursion of definition 1.2: [c_0 = 0],
    [c_{i+1} = maj (x_i, y_i, c_i)]. Requires equal lengths. *)

val borrows : t -> t -> t
(** [borrows x y] is the borrow string [b_0 ... b_n] of [x - y] (length
    [n + 1]), per definition 1.5: [b_0 = 0],
    [b_{i+1} = maj (x_i XOR 1, y_i, b_i)]. Requires equal lengths. *)

(** {1 Arithmetic (definitions 1.2--1.5)} *)

val add : t -> t -> t
(** [add x y] is the [(n+1)]-bit sum of two [n]-bit strings (definition 1.2).
    Requires equal lengths. *)

val ones_complement : t -> t
(** Definition 1.3: flip every bit. *)

val twos_complement : t -> t
(** Definition 1.4: [ones_complement x + 1], truncated to [n] bits. *)

val sub : t -> t -> t
(** [sub x y] is the [(n+1)]-bit string [x - y] of definition 1.5. Its most
    significant bit is [1] exactly when [x < y] as unsigned integers
    (proposition A.3), and the whole string is the 2's-complement encoding of
    the signed integer [x - y] (proposition A.5). *)

val hamming_weight : t -> int
(** [|x|]: number of set bits. *)

val hamming_weight_int : int -> int
(** Hamming weight of the binary expansion of a non-negative integer. *)

(** {1 Comparisons and predicates used by the comparator circuits} *)

val lt : t -> t -> bool
(** Unsigned [x < y]. *)

val gt : t -> t -> bool
val msb : t -> bool

val pad : t -> int -> t
(** [pad x n] extends [x] with zero MSBs up to length [n]. Raises
    [Invalid_argument] if [n < length x]. *)

val truncate : t -> int -> t
(** [truncate x n] keeps the [n] least significant bits. *)
