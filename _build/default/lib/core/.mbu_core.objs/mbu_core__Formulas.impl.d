lib/core/formulas.ml: Float
