test/test_properties.ml: Adder Builder Circuit Counts Depth Instr Mbu_circuit Mbu_core Mbu_simulator Mod_add Phase Printf QCheck QCheck_alcotest Random Register Sim Test_optimize
