(** Modular adders (section 3) and their MBU-optimized variants (section 4).

    All circuits implement arithmetic modulo a classically known modulus [p]
    with [0 < p < 2^n] on [n]-qubit operands [0 <= x, y < p] (definitions
    3.1, 3.8, 3.12, 3.16). The VBE architecture is the four-stage pipeline of
    proposition 3.2 — plain add, compare with [p], conditional subtract of
    [p], and a final comparison that erases the condition bit — and the MBU
    variants (theorems 4.2--4.12) replace that final erasing comparison with
    the MBU lemma, halving its cost in expectation.

    The [mbu] flag (default [false]) selects the MBU variant everywhere. *)

open Mbu_circuit

(** Which adder family implements each of the four subroutines of
    proposition 3.2 (Q_ADD, Q_COMP(p), C-Q_SUB(p), Q'_COMP). *)
type spec = {
  q_add : Adder.style;
  q_comp_const : Adder.style;
  c_q_sub_const : Adder.style;
  q_comp : Adder.style;
}

val spec_cdkpm : spec  (** proposition 3.4: [8n] Toffoli. *)

val spec_gidney : spec  (** proposition 3.5: [4n] Toffoli. *)

val spec_mixed : spec
(** Theorem 3.6 (Gidney + CDKPM): [6n] Toffoli with only [n + O(1)]
    ancillas — the paper's new space–time tradeoff point. *)

val spec_name : spec -> string

(** {1 Modular addition (definition 3.1)} *)

val modadd :
  ?mbu:bool -> spec -> Builder.t -> p:int -> x:Register.t -> y:Register.t -> unit
(** [y <- (x + y) mod p] (proposition 3.2; theorem 4.2 when [mbu]).
    [x] and [y] have equal length [n] and [p < 2^n]. *)

val modadd_vbe_5adder :
  ?mbu:bool -> Builder.t -> p:int -> x:Register.t -> y:Register.t -> unit
(** The original five-plain-adder modular adder of \[VBE96\] (table 1 row 1):
    ADD, SUB(p), conditional re-ADD(p), then an adder pair SUB(x)/ADD(x) to
    erase the condition bit. With [mbu] the erasing adder pair runs half the
    time. *)

val modadd_vbe_4adder :
  ?mbu:bool -> Builder.t -> p:int -> x:Register.t -> y:Register.t -> unit
(** Table 1 row 2: the final adder pair replaced by a single VBE carry-chain
    comparator (four plain-adder-equivalents total). *)

val modadd_draper :
  ?mbu:bool -> Builder.t -> p:int -> x:Register.t -> y:Register.t -> unit
(** Draper/Beauregard QFT modular adder (proposition 3.7; theorem 4.6 when
    [mbu]), with the adjacent QFT/IQFT pairs cancelled as in the paper:
    3 QFT + 3 IQFT + 2 Phi_ADD + 1 Phi_SUB + 1 C-Phi_SUB(p) + 1 Phi_ADD(p) +
    1 Phi_SUB(p), and in expectation 2.5 QFT + 2.5 IQFT with MBU. *)

(** {1 Controlled modular addition (definition 3.8)} *)

val modadd_controlled :
  ?mbu:bool ->
  spec -> Builder.t -> ctrl:Gate.qubit -> p:int -> x:Register.t -> y:Register.t -> unit
(** [y <- (y + ctrl.x) mod p] (propositions 3.9/3.10/3.11; theorems 4.7--4.9
    when [mbu]): only the first adder and the final comparator carry the
    control. *)

(** {1 Modular addition by a constant (definition 3.12)} *)

val modadd_const :
  ?mbu:bool -> spec -> Builder.t -> p:int -> a:int -> x:Register.t -> unit
(** [x <- (x + a) mod p] in the VBE architecture (theorem 3.14; theorem 4.10
    when [mbu]). Requires [0 <= a < p]. *)

val modadd_const_takahashi :
  ?mbu:bool -> spec -> Builder.t -> p:int -> a:int -> x:Register.t -> unit
(** Takahashi's three-stage constant modular adder (proposition 3.15;
    theorem 4.11 when [mbu]): subtract [p - a], conditionally re-add [p]
    controlled on the sign, erase the sign bit with a constant comparison.
    Uses [q_add] for the subtraction/additions and [q_comp] for the final
    comparison. *)

val modadd_const_draper :
  ?mbu:bool -> Builder.t -> p:int -> a:int -> x:Register.t -> unit
(** QFT constant modular adder in the Beauregard style. *)

(** {1 Controlled modular addition by a constant (definition 3.16)} *)

val modadd_const_controlled :
  ?mbu:bool ->
  spec -> Builder.t -> ctrl:Gate.qubit -> p:int -> a:int -> x:Register.t -> unit
(** [x <- (x + ctrl.a) mod p] (proposition 3.18; theorem 4.12 when [mbu]). *)

val modadd_const_controlled_draper :
  ?mbu:bool ->
  Builder.t -> ctrl:Gate.qubit -> p:int -> a:int -> x:Register.t -> unit
(** Beauregard's controlled QFT constant modular adder (proposition 3.19). *)

(** {1 Generic reduction (remark 3.3 flavour)} *)

val modadd_const_via_load :
  ?mbu:bool -> spec -> Builder.t -> p:int -> a:int -> x:Register.t -> unit
(** Proposition 3.13: load [a] into an ancilla register with X gates and run
    the full quantum-quantum modular adder. Costlier than theorem 3.14; kept
    for the ablation benchmarks. *)

(** {1 Modular reduction and subtraction} *)

val reduce :
  ?mbu:bool ->
  spec -> Builder.t -> p:int -> x:Register.t -> flag:Gate.qubit -> unit
(** Remark 3.3: [(n+1)]-bit [x < 2p] becomes [x mod p] (top qubit |0>), with
    [flag XOR= 1\[x >= p\]]. The flag cannot be erased without knowing the
    pre-image, so it is an explicit output; composing reduce after a plain
    addition and erasing the flag with a comparator is exactly {!modadd}
    (the remark's alternative construction). [mbu] is accepted for symmetry
    but has no conditional block to skip here. *)

val modsub :
  ?mbu:bool -> spec -> Builder.t -> p:int -> x:Register.t -> y:Register.t -> unit
(** [y <- (y - x) mod p] — the mirror of {!modadd} (comparator first, then
    conditional re-add of [p], then a plain subtraction), with the flag
    erased by the sum-vs-modulus comparison; MBU halves that erasure. *)

val modsub_const :
  ?mbu:bool -> spec -> Builder.t -> p:int -> a:int -> x:Register.t -> unit
(** [x <- (x - a) mod p], i.e. {!modadd_const} with [(p - a) mod p]. *)

val modadd_const_double_controlled_draper :
  ?mbu:bool ->
  Builder.t ->
  ctrl1:Gate.qubit -> ctrl2:Gate.qubit -> p:int -> a:int -> x:Register.t -> unit
(** Beauregard's original doubly controlled constant modular adder
    (figure 23), as used inside modular exponentiation where the two
    controls are an exponent bit and a multiplicand bit. Implemented as a
    temporary logical-AND of the controls (erased by MBU) driving
    {!modadd_const_controlled_draper}. *)

(** {1 Arbitrary-width moduli}

    [int] constants cap the moduli above at 61 bits; these variants take the
    modulus and addend as {!Mbu_bitstring.Bitstring.t}, enabling
    cryptographic widths (ripple subroutine styles only). *)

val modadd_big :
  ?mbu:bool ->
  spec -> Builder.t ->
  p:Mbu_bitstring.Bitstring.t -> x:Register.t -> y:Register.t -> unit

val modadd_const_big :
  ?mbu:bool ->
  spec -> Builder.t ->
  p:Mbu_bitstring.Bitstring.t -> a:Mbu_bitstring.Bitstring.t -> x:Register.t -> unit

val modadd_controlled_big :
  ?mbu:bool ->
  spec -> Builder.t ->
  ctrl:Gate.qubit ->
  p:Mbu_bitstring.Bitstring.t -> x:Register.t -> y:Register.t -> unit
