open Mbu_circuit

(* Carries of v + 1: c_0 = 1, c_1 = y_0, c_{i+1} = c_i AND y_i. The flips
   y_i <- y_i XOR c_i run from the top down, erasing each prefix AND just
   after its use, while the lower bits still hold their original values. *)
let apply b y =
  let m = Register.length y in
  let yq = Register.get y in
  if m = 0 then invalid_arg "Increment.apply: empty register";
  Builder.with_span b "increment" @@ fun () ->
  if m >= 2 then begin
    let t = Array.make m (-1) in
    (* t.(i) holds c_i for 2 <= i <= m-1 *)
    for i = 2 to m - 1 do
      t.(i) <- Builder.alloc_ancilla b;
      if i = 2 then Logical_and.compute b ~c1:(yq 0) ~c2:(yq 1) ~target:t.(2)
      else Logical_and.compute b ~c1:t.(i - 1) ~c2:(yq (i - 1)) ~target:t.(i)
    done;
    for i = m - 1 downto 2 do
      Builder.cnot b ~control:t.(i) ~target:(yq i);
      (if i = 2 then Logical_and.uncompute b ~c1:(yq 0) ~c2:(yq 1) ~target:t.(2)
       else Logical_and.uncompute b ~c1:t.(i - 1) ~c2:(yq (i - 1)) ~target:t.(i));
      Builder.free_ancilla b t.(i)
    done;
    Builder.cnot b ~control:(yq 0) ~target:(yq 1)
  end;
  Builder.x b (yq 0)

let complement b y = Array.iter (fun q -> Builder.x b q) (Register.qubits y)

let apply_decrement b y =
  complement b y;
  apply b y;
  complement b y

(* Controlled version: c_1 = ctrl AND y_0 and the final flip of y_0 becomes
   a CNOT from the control. *)
let apply_controlled b ~ctrl y =
  let m = Register.length y in
  let yq = Register.get y in
  if m = 0 then invalid_arg "Increment.apply_controlled: empty register";
  Builder.with_span b "cincrement" @@ fun () ->
  if m >= 2 then begin
    let t = Array.make m (-1) in
    (* t.(i) holds c_i for 1 <= i <= m-1 *)
    for i = 1 to m - 1 do
      t.(i) <- Builder.alloc_ancilla b;
      if i = 1 then Logical_and.compute b ~c1:ctrl ~c2:(yq 0) ~target:t.(1)
      else Logical_and.compute b ~c1:t.(i - 1) ~c2:(yq (i - 1)) ~target:t.(i)
    done;
    for i = m - 1 downto 1 do
      Builder.cnot b ~control:t.(i) ~target:(yq i);
      (if i = 1 then Logical_and.uncompute b ~c1:ctrl ~c2:(yq 0) ~target:t.(1)
       else Logical_and.uncompute b ~c1:t.(i - 1) ~c2:(yq (i - 1)) ~target:t.(i));
      Builder.free_ancilla b t.(i)
    done
  end;
  Builder.cnot b ~control:ctrl ~target:(yq 0)

let apply_decrement_controlled b ~ctrl y =
  complement b y;
  apply_controlled b ~ctrl y;
  complement b y
