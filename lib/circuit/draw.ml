(* Each drawn item occupies one or more cells in a column; columns are packed
   greedily: a gate goes in the first column where the whole vertical span
   [min wire, max wire] is free. *)

type cell = { glyph : string; connect : bool }

type item = {
  cells : (int * cell) list;  (* wire -> cell *)
  span_lo : int;
  span_hi : int;
  conditional : bool;
}

let item_of_gate ~conditional g =
  let cellify pairs =
    let wires = List.map fst pairs in
    { cells = List.map (fun (w, s) -> (w, { glyph = s; connect = true })) pairs;
      span_lo = List.fold_left min max_int wires;
      span_hi = List.fold_left max min_int wires;
      conditional }
  in
  match g with
  | Gate.X q -> cellify [ (q, "X") ]
  | Gate.Z q -> cellify [ (q, "Z") ]
  | Gate.H q -> cellify [ (q, "H") ]
  | Gate.Phase (q, _) -> cellify [ (q, "R") ]
  | Gate.Cnot { control; target } -> cellify [ (control, "*"); (target, "+") ]
  | Gate.Cz (a, b) -> cellify [ (a, "*"); (b, "*") ]
  | Gate.Swap (a, b) -> cellify [ (a, "x"); (b, "x") ]
  | Gate.Toffoli { c1; c2; target } ->
      cellify [ (c1, "*"); (c2, "*"); (target, "+") ]
  | Gate.Cphase { control; target; _ } -> cellify [ (control, "*"); (target, "R") ]

let item_of_measure q =
  { cells = [ (q, { glyph = "M"; connect = false }) ];
    span_lo = q; span_hi = q; conditional = false }

let flatten instrs =
  let rec go conditional acc = function
    | [] -> acc
    | Instr.Gate g :: rest -> go conditional (item_of_gate ~conditional g :: acc) rest
    | Instr.Measure { qubit; _ } :: rest ->
        go conditional (item_of_measure qubit :: acc) rest
    | Instr.If_bit { body; _ } :: rest ->
        let acc = go true acc body in
        go conditional acc rest
    | (Instr.Span { body; _ } | Instr.Call { body; _ }) :: rest ->
        let acc = go conditional acc body in
        go conditional acc rest
  in
  List.rev (go false [] instrs)

(* Greedy column packing preserving order per wire. *)
let columns num_qubits items =
  let frontier = Array.make (max num_qubits 1) 0 in
  let cols : item list array ref = ref (Array.make 16 []) in
  let ensure n =
    if n > Array.length !cols then begin
      let bigger = Array.make (max n (2 * Array.length !cols)) [] in
      Array.blit !cols 0 bigger 0 (Array.length !cols);
      cols := bigger
    end
  in
  let place item =
    let col = ref 0 in
    for w = item.span_lo to item.span_hi do
      if frontier.(w) > !col then col := frontier.(w)
    done;
    ensure (!col + 1);
    !cols.(!col) <- item :: !cols.(!col);
    for w = item.span_lo to item.span_hi do
      frontier.(w) <- !col + 1
    done;
    !col
  in
  let used = List.fold_left (fun m item -> max m (place item + 1)) 0 items in
  Array.sub !cols 0 used

let render ?labels (c : Circuit.t) =
  let labels = Option.value labels ~default:(Printf.sprintf "q%d") in
  let n = c.num_qubits in
  let items = flatten c.instrs in
  let cols = columns n items in
  let ncols = Array.length cols in
  let grid = Array.make_matrix n ncols "-" in
  let vert = Array.make_matrix n ncols false in
  let cond_col = Array.make ncols false in
  Array.iteri
    (fun j col_items ->
      List.iter
        (fun item ->
          if item.conditional then cond_col.(j) <- true;
          List.iter (fun (w, cell) -> grid.(w).(j) <- cell.glyph) item.cells;
          if item.span_hi > item.span_lo then
            for w = item.span_lo to item.span_hi do
              vert.(w).(j) <- true
            done)
        col_items)
    cols;
  let buf = Buffer.create 1024 in
  let label_width =
    let rec widest acc i = if i >= n then acc else widest (max acc (String.length (labels i))) (i + 1) in
    widest 0 0
  in
  (* Header marks conditional columns. *)
  Buffer.add_string buf (String.make label_width ' ');
  Buffer.add_string buf "  ";
  for j = 0 to ncols - 1 do
    Buffer.add_string buf (if cond_col.(j) then " ? " else "   ")
  done;
  Buffer.add_char buf '\n';
  for w = 0 to n - 1 do
    let lbl = labels w in
    Buffer.add_string buf lbl;
    Buffer.add_string buf (String.make (label_width - String.length lbl) ' ');
    Buffer.add_string buf ": ";
    for j = 0 to ncols - 1 do
      let g = grid.(w).(j) in
      if g = "-" && vert.(w).(j) then Buffer.add_string buf "-|-"
      else begin
        Buffer.add_char buf '-';
        Buffer.add_string buf g;
        Buffer.add_char buf '-'
      end
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render_registers regs (c : Circuit.t) =
  let names = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Array.iteri
        (fun i q -> Hashtbl.replace names q (Printf.sprintf "%s%d" (Register.name r) i))
        (Register.qubits r))
    regs;
  let labels w =
    match Hashtbl.find_opt names w with Some s -> s | None -> Printf.sprintf "a%d" w
  in
  render ~labels c
