(** Montgomery multiplication by a constant (REDC).

    The alternative to the compare-and-correct modular reduction used
    everywhere else in this library (and surveyed in the paper's related
    work \[Wan+24b\]): interleave the shift-and-add ladder with Montgomery
    reduction steps, so no comparator against [p] is ever needed. Each step
    adds [x_i . a], peels off the accumulator's low bit [m] (after the
    conditional [+p] the low bit is always 0, so the {e wire} itself is
    recycled as the next most-significant accumulator wire — a register
    rotation), and adds [m . (p+1)/2] to the shifted accumulator.

    The [n] peeled reduction bits are data-dependent garbage, exactly the
    kind of by-product sections 1 and 4 of the paper are about; here they
    are returned explicitly (Rines–Chuang style) so the caller can uncompute
    them with the adjoint ladder — or weigh that against the comparator-
    based designs where MBU erases the single flag for half price. *)

open Mbu_circuit

val mul_const_redc :
  Adder.style ->
  Builder.t ->
  a:int -> p:int ->
  x:Register.t -> acc:Register.t -> quotient:Register.t -> Register.t
(** [mul_const_redc style b ~a ~p ~x ~acc ~quotient] computes the
    semi-reduced Montgomery product: the returned register (a rotation of
    [acc]'s wires) holds a value [t < 2p] with
    [t = x . a . 2^(-n) mod p] (congruence), where [n = length x]. [acc]
    must have [n + 2] wires at |0>, [quotient] [n] wires at |0> (it receives
    the reduction bits), [p] odd, [0 <= a < p], [x < p]. The circuit is
    unitary for the unitary adder styles, so [Builder.emit_adjoint] undoes
    it, garbage included. *)
