open Mbu_circuit

let compute b ~c1 ~c2 ~target =
  Builder.with_span b "and.compute" @@ fun () ->
  Builder.toffoli b ~c1 ~c2 ~target

let uncompute b ~c1 ~c2 ~target =
  Builder.with_span b "and.uncompute" @@ fun () ->
  Builder.h b target;
  let bit = Builder.measure ~reset:true b target in
  Builder.if_bit b bit (fun () -> Builder.cz b c1 c2)
