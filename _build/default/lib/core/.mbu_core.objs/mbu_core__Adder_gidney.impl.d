lib/core/adder_gidney.ml: Array Builder Logical_and Mbu_circuit Register
