lib/bitstring/bitstring.mli: Format
