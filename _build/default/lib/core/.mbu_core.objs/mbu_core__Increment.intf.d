lib/core/increment.mli: Builder Gate Mbu_circuit Register
