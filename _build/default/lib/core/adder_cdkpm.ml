open Mbu_circuit

let maj b ~c ~y ~x =
  Builder.cnot b ~control:x ~target:y;
  Builder.cnot b ~control:x ~target:c;
  Builder.toffoli b ~c1:c ~c2:y ~target:x

let uma b ~c ~y ~x =
  Builder.toffoli b ~c1:c ~c2:y ~target:x;
  Builder.cnot b ~control:x ~target:c;
  Builder.cnot b ~control:c ~target:y

let uma_3cnot b ~c ~y ~x =
  Builder.x b y;
  Builder.cnot b ~control:c ~target:y;
  Builder.toffoli b ~c1:c ~c2:y ~target:x;
  Builder.x b y;
  Builder.cnot b ~control:x ~target:c;
  Builder.cnot b ~control:x ~target:y

let c_uma b ~ctrl ~c ~y ~x =
  (* After MAJ the wires hold (c XOR x, y XOR x, maj). Restoring x first and
     then selecting which of c / x to add into y costs two Toffoli:
       TOF(c-wire, y-wire -> x-wire)   restores x
       TOF(ctrl, c-wire -> y-wire)     y-wire := y XOR x XOR ctrl.(c XOR x)
       CNOT(x-wire -> c-wire)          restores c
       CNOT(x-wire -> y-wire)          y-wire := ctrl ? y XOR x XOR c : y *)
  Builder.toffoli b ~c1:c ~c2:y ~target:x;
  Builder.toffoli b ~c1:ctrl ~c2:c ~target:y;
  Builder.cnot b ~control:x ~target:c;
  Builder.cnot b ~control:x ~target:y

let check_add_regs name ~x ~y =
  let n = Register.length x in
  if n = 0 then invalid_arg (name ^ ": empty addend");
  if Register.length y <> n + 1 then invalid_arg (name ^ ": length y <> length x + 1")

(* The carry into position i rides on the x_{i-1} wire; c_0 is an ancilla. *)
let add b ~x ~y =
  check_add_regs "Adder_cdkpm.add" ~x ~y;
  let n = Register.length x in
  Builder.with_ancilla b (fun c0 ->
      let carry i = if i = 0 then c0 else Register.get x (i - 1) in
      for i = 0 to n - 1 do
        maj b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
      done;
      Builder.cnot b ~control:(Register.get x (n - 1)) ~target:(Register.get y n);
      for i = n - 1 downto 0 do
        uma b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
      done)

let add_controlled b ~ctrl ~x ~y =
  check_add_regs "Adder_cdkpm.add_controlled" ~x ~y;
  let n = Register.length x in
  Builder.with_ancilla b (fun c0 ->
      let carry i = if i = 0 then c0 else Register.get x (i - 1) in
      for i = 0 to n - 1 do
        maj b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
      done;
      (* The copy of the top carry into y_n must itself be controlled. *)
      Builder.toffoli b ~c1:ctrl ~c2:(Register.get x (n - 1)) ~target:(Register.get y n);
      for i = n - 1 downto 0 do
        c_uma b ~ctrl ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
      done)

(* Comparator: the top carry of x + NOT(y) equals 1[x > y]. The MAJ chain
   plays the role of "half" an (adjoint) subtractor; the UMA-free descent is
   just the adjoint MAJ chain (figure 21). *)
let compare_gen b ?ctrl ~x ~y ~target () =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Adder_cdkpm.compare: unequal lengths";
  if n = 0 then invalid_arg "Adder_cdkpm.compare: empty register";
  let complement () = Array.iter (fun q -> Builder.x b q) (Register.qubits y) in
  Builder.with_ancilla b (fun c0 ->
      let carry i = if i = 0 then c0 else Register.get x (i - 1) in
      complement ();
      let (), chain =
        Builder.capture b (fun () ->
            for i = 0 to n - 1 do
              maj b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
            done)
      in
      Builder.emit b chain;
      (match ctrl with
      | None -> Builder.cnot b ~control:(Register.get x (n - 1)) ~target
      | Some ctrl ->
          Builder.toffoli b ~c1:ctrl ~c2:(Register.get x (n - 1)) ~target);
      Builder.emit b (Instr.adjoint chain);
      complement ())

let compare b ~x ~y ~target = compare_gen b ~x ~y ~target ()

let compare_controlled b ~ctrl ~x ~y ~target =
  compare_gen b ~ctrl ~x ~y ~target ()

(* Equal-length addition modulo 2^m: the top carry is not produced, so the
   top bit needs only two CNOTs (s_{m-1} = x XOR y XOR c). *)
let add_mod b ~x ~y =
  let m = Register.length x in
  if Register.length y <> m then invalid_arg "Adder_cdkpm.add_mod: unequal lengths";
  if m = 0 then invalid_arg "Adder_cdkpm.add_mod: empty register";
  if m = 1 then
    Builder.cnot b ~control:(Register.get x 0) ~target:(Register.get y 0)
  else
    Builder.with_ancilla b (fun c0 ->
        let carry i = if i = 0 then c0 else Register.get x (i - 1) in
        for i = 0 to m - 2 do
          maj b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
        done;
        Builder.cnot b ~control:(carry (m - 1)) ~target:(Register.get y (m - 1));
        Builder.cnot b ~control:(Register.get x (m - 1)) ~target:(Register.get y (m - 1));
        for i = m - 2 downto 0 do
          uma b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
        done)

let add_3cnot b ~x ~y =
  check_add_regs "Adder_cdkpm.add_3cnot" ~x ~y;
  let n = Register.length x in
  Builder.with_ancilla b (fun c0 ->
      let carry i = if i = 0 then c0 else Register.get x (i - 1) in
      for i = 0 to n - 1 do
        maj b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
      done;
      Builder.cnot b ~control:(Register.get x (n - 1)) ~target:(Register.get y n);
      for i = n - 1 downto 0 do
        uma_3cnot b ~c:(carry i) ~y:(Register.get y i) ~x:(Register.get x i)
      done)
