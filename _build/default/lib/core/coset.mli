(** Coset-state encoding (\[Zal06\], \[Gid19a\] — section 1.2 of the paper:
    "In \[Gid19a\], MBU is used to construct the coset state more
    effectively").

    A value [x] is encoded as the padded superposition
    [sum_{c=0}^{2^k - 1} |x + c p> / sqrt(2^k)] over [n + k] qubits. In this
    encoding a {e modular} addition of a classical constant is a single
    {e plain} addition — no comparator, no reduction — at the price of [k]
    padding qubits and an [O(2^-k)]-per-addition encoding error as the top
    coset branch overflows.

    Preparation is where MBU enters: each padding step puts an ancilla in
    |+>, conditionally adds [p 2^j], and removes the ancilla with an X-basis
    measurement. On outcome 0 the branch superposition is created for free;
    on outcome 1 (probability 1/2) the added branch carries a stray [-1]
    which is repaired by one comparator-driven phase flip — the expected
    cost of the fix is half a comparator per padding qubit, the same
    Bernoulli(1/2) economics as lemma 4.1. *)

open Mbu_circuit

val prepare : Adder.style -> Builder.t -> p:int -> pad:int -> Register.t -> unit
(** [prepare style b ~p ~pad reg]: [reg] has [n + pad] wires whose low [n]
    hold [x < p] and whose top [pad] are |0>; afterwards [reg] is the exact
    coset state of [x]. Requires [0 < p <= 2^n]. *)

val add_const : Adder.style -> Builder.t -> a:int -> Register.t -> unit
(** Modular addition in the encoding: one plain constant addition modulo
    [2^(n+pad)] over the whole padded register (definitions 2.15's circuit
    with no overflow qubit). Exact on all coset branches that do not
    overflow the padding — fidelity [1 - O(2^-pad)] per addition. *)

val decode : value:int -> p:int -> int
(** Classical readout: a computational-basis measurement of the coset
    register yields [x + c p]; the encoded value is its residue. *)
