lib/core/adder_cdkpm.mli: Builder Gate Mbu_circuit Register
