lib/circuit/register.ml: Array Format Gate Printf
