lib/core/ft_estimate.ml: Float Format Resources
