(* Surface-code estimator: monotonicity and sanity properties, and the
   MBU saving expressed in physical resources. *)

open Mbu_circuit
open Mbu_core

let modadd_workload ~mbu n =
  Ft_estimate.workload_of_resources
    (Resources.measure ~n
       ~build:(fun b ->
         let x = Builder.fresh_register b "x" n in
         let y = Builder.fresh_register b "y" n in
         Mod_add.modadd ~mbu Mod_add.spec_cdkpm b ~p:((1 lsl n) - 1) ~x ~y)
       ())

let test_basic_sanity () =
  let e = Ft_estimate.estimate (modadd_workload ~mbu:false 32) in
  Alcotest.(check bool) "odd distance >= 3" true
    (e.Ft_estimate.code_distance >= 3 && e.Ft_estimate.code_distance mod 2 = 1);
  Alcotest.(check bool) "has physical qubits" true (e.Ft_estimate.physical_qubits > 0);
  Alcotest.(check bool) "positive runtime" true (e.Ft_estimate.runtime_seconds > 0.)

let test_distance_monotone_in_error_rate () =
  let w = modadd_workload ~mbu:false 32 in
  let at rate =
    (Ft_estimate.estimate
       ~params:{ Ft_estimate.default_params with physical_error_rate = rate }
       w)
      .Ft_estimate.code_distance
  in
  Alcotest.(check bool) "worse hardware needs higher distance" true
    (at 1e-3 <= at 3e-3 && at 3e-3 <= at 5e-3)

let test_distance_monotone_in_workload () =
  let small = Ft_estimate.estimate (modadd_workload ~mbu:false 8) in
  let large = Ft_estimate.estimate (modadd_workload ~mbu:false 48) in
  Alcotest.(check bool) "bigger workload, >= distance" true
    (large.Ft_estimate.code_distance >= small.Ft_estimate.code_distance);
  Alcotest.(check bool) "bigger workload, more qubits" true
    (large.Ft_estimate.physical_qubits > small.Ft_estimate.physical_qubits)

let test_mbu_saves_runtime () =
  (* the 12.4% Toffoli saving should carry through to wall-clock at equal
     distance *)
  let plain = Ft_estimate.estimate (modadd_workload ~mbu:false 32) in
  let mbu = Ft_estimate.estimate (modadd_workload ~mbu:true 32) in
  Alcotest.(check bool)
    (Printf.sprintf "runtime %.3g < %.3g" mbu.Ft_estimate.runtime_seconds
       plain.Ft_estimate.runtime_seconds)
    true
    (mbu.Ft_estimate.runtime_seconds < plain.Ft_estimate.runtime_seconds);
  Alcotest.(check bool) "never more qubits" true
    (mbu.Ft_estimate.physical_qubits <= plain.Ft_estimate.physical_qubits)

let test_more_factories_faster () =
  let w = modadd_workload ~mbu:false 48 in
  let at k =
    (Ft_estimate.estimate
       ~params:{ Ft_estimate.default_params with factories = k }
       w)
      .Ft_estimate.runtime_seconds
  in
  Alcotest.(check bool) "factories reduce runtime (until depth-bound)" true
    (at 8 <= at 1)

let test_rejects_empty () =
  Alcotest.check_raises "empty workload"
    (Invalid_argument "Ft_estimate.estimate: empty workload") (fun () ->
      ignore
        (Ft_estimate.estimate
           { Ft_estimate.toffoli = 0.; toffoli_depth = 0.; logical_qubits = 0 }))

let suite =
  ( "ft-estimate",
    [ Alcotest.test_case "basic sanity" `Quick test_basic_sanity;
      Alcotest.test_case "distance vs error rate" `Quick
        test_distance_monotone_in_error_rate;
      Alcotest.test_case "distance vs workload" `Quick
        test_distance_monotone_in_workload;
      Alcotest.test_case "mbu saves physical runtime" `Quick test_mbu_saves_runtime;
      Alcotest.test_case "factories speed up" `Quick test_more_factories_faster;
      Alcotest.test_case "rejects empty workload" `Quick test_rejects_empty ] )
