(** Gate counting, with the paper's three accounting modes.

    The MBU lemma (lemma 4.1) makes gate costs random variables: each
    measurement-conditioned block executes with probability 1/2 when the
    measured qubit came from an X-basis-style measurement of a balanced
    garbage bit. The paper reports costs "in expectation" over that Bernoulli
    distribution; this module also offers worst-case (every conditional
    taken) and best-case (none taken) accounting. Counts are floats because
    expected counts are fractional (e.g. 3.5 n Toffoli for theorem 4.4). *)

type t = {
  x : float;
  z : float;
  h : float;
  phase : float;
  cnot : float;
  cz : float;
  swap : float;
  toffoli : float;
  cphase : float;
  measure : float;
}

type mode =
  | Worst  (** every conditional block executes *)
  | Best  (** no conditional block executes *)
  | Expected of float
      (** each conditional block executes with this probability,
          independently; [Expected 0.5] is the paper's cost model *)

val zero : t
val add : t -> t -> t
val scale : float -> t -> t
val of_gate : Gate.t -> t

val of_instrs : mode:mode -> Instr.t list -> t
(** Count the gates of a program. Measurements count in [measure] only; the
    outcome-conditioned reset X of a [Measure ~reset:true] is not counted as
    a gate. *)

val cnot_cz : t -> float
(** The paper's combined "CNOT,CZ" column of table 1. *)

val two_qubit : t -> float
(** CNOT + CZ + SWAP + controlled-phase. *)

val total_gates : t -> float

val qft_gates : int -> t
(** [qft_gates m]: gate count of a textbook [QFT_m] — [m] Hadamards and
    [m (m-1) / 2] controlled rotations (remark 1.1). Used to express
    Draper-adder costs in "QFT units" as table 1 does. *)

val qft_units : m:int -> t -> float
(** [(h + phase + cphase)] of the count, normalized by the same quantity for
    one [QFT_m]. *)

val approx_equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
