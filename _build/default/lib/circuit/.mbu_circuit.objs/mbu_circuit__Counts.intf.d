lib/circuit/counts.mli: Format Gate Instr
