type entry = {
  label : string;
  path : string list;
  start : float;
  dur : float;
  flat : Counts.t;
  cum : Counts.t;
  peak_ancillas : int;
  total_depth : float;
  toffoli_depth : float;
  calls : int;
  children : entry list;
}

let root_label = "(root)"

let depth_mode = function
  | Counts.Worst -> `Worst
  | Counts.Best -> `Expected 0.
  | Counts.Expected p -> `Expected p

let cum_of flat children =
  List.fold_left (fun acc e -> Counts.add acc e.cum) flat children

let profile ?(mode = Counts.Expected 0.5) instrs =
  let branch_weight =
    match mode with Counts.Worst -> 1. | Best -> 0. | Expected p -> p
  in
  (* [clock] is the running weighted instruction count — the span timeline's
     time axis; a gate or measurement under branch probability [w] advances
     it by [w]. *)
  let clock = ref 0. in
  (* returns (flat counts, children in emission order) for one block *)
  let rec walk path w instrs =
    let flat, rev_children =
      List.fold_left
        (fun (flat, kids) i ->
          match i with
          | Instr.Gate g ->
              clock := !clock +. w;
              (Counts.add flat (Counts.scale w (Counts.of_gate g)), kids)
          | Instr.Measure _ ->
              clock := !clock +. w;
              (Counts.add flat (Counts.scale w { Counts.zero with measure = 1. }),
               kids)
          | Instr.If_bit { body; _ } ->
              (* a conditional block is not a span: its contents attribute to
                 the enclosing span, discounted by the branch probability *)
              let bflat, bkids = walk path (w *. branch_weight) body in
              (Counts.add flat bflat, List.rev_append bkids kids)
          | Instr.Span { label; peak_ancillas; body } ->
              let start = !clock in
              let cpath = path @ [ label ] in
              let bflat, bkids = walk cpath w body in
              let d = Depth.of_instrs ~mode:(depth_mode mode) body in
              let e =
                { label; path = cpath; start; dur = !clock -. start;
                  flat = bflat; cum = cum_of bflat bkids; peak_ancillas;
                  total_depth = d.Depth.total; toffoli_depth = d.Depth.toffoli;
                  calls = 1; children = bkids }
              in
              (flat, e :: kids))
        (Counts.zero, []) instrs
    in
    (flat, List.rev rev_children)
  in
  let flat, children = walk [] 1. instrs in
  let d = Depth.of_instrs ~mode:(depth_mode mode) instrs in
  let peak =
    List.fold_left (fun m e -> max m e.peak_ancillas) 0 children
  in
  { label = root_label; path = []; start = 0.; dur = !clock; flat;
    cum = cum_of flat children; peak_ancillas = peak;
    total_depth = d.Depth.total; toffoli_depth = d.Depth.toffoli; calls = 1;
    children }

let of_circuit ?mode (c : Circuit.t) = profile ?mode c.Circuit.instrs

let rec flatten e = e :: List.concat_map flatten e.children

let find root label =
  List.find_opt (fun e -> e.label = label) (flatten root)

let sum_flat root =
  List.fold_left (fun acc e -> Counts.add acc e.flat) Counts.zero (flatten root)

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Collapse runs of same-labelled siblings (e.g. the n [and.compute] leaves
   of a Gidney adder) into one row: counts and durations sum, ancilla peaks
   max, children merge recursively. *)
let rec merge_siblings entries =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.label with
      | None ->
          Hashtbl.replace tbl e.label e;
          order := e.label :: !order
      | Some m ->
          Hashtbl.replace tbl e.label
            { m with
              dur = m.dur +. e.dur;
              flat = Counts.add m.flat e.flat;
              cum = Counts.add m.cum e.cum;
              peak_ancillas = max m.peak_ancillas e.peak_ancillas;
              total_depth = m.total_depth +. e.total_depth;
              toffoli_depth = m.toffoli_depth +. e.toffoli_depth;
              calls = m.calls + e.calls;
              children = m.children @ e.children })
    entries;
  List.rev_map
    (fun label ->
      let m = Hashtbl.find tbl label in
      { m with children = merge_siblings m.children })
    !order

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let render ?(merge = true) ?max_depth root =
  let root = if merge then { root with children = merge_siblings root.children } else root in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %5s %9s %9s %7s %7s %5s %9s %9s\n" "span" "calls"
       "flat Tof" "cum Tof" "CNOT+CZ" "X" "anc" "Tof-depth" "gates");
  let rec go prefix child_prefix e =
    let name = prefix ^ e.label in
    let name =
      if String.length name > 44 then String.sub name 0 41 ^ "..." else name
    in
    Buffer.add_string buf
      (Printf.sprintf "%-44s %5d %9s %9s %7s %7s %5d %9s %9s\n" name e.calls
         (fnum e.flat.Counts.toffoli)
         (fnum e.cum.Counts.toffoli)
         (fnum (Counts.cnot_cz e.cum))
         (fnum e.cum.Counts.x)
         e.peak_ancillas
         (fnum e.toffoli_depth)
         (fnum (Counts.total_gates e.cum +. e.cum.Counts.measure)));
    let deep =
      match max_depth with
      | Some d -> List.length e.path >= d
      | None -> false
    in
    if not deep then begin
      let rec kids = function
        | [] -> ()
        | [ last ] -> go (child_prefix ^ "`- ") (child_prefix ^ "   ") last
        | k :: rest ->
            go (child_prefix ^ "|- ") (child_prefix ^ "|  ") k;
            kids rest
      in
      kids e.children
    end
  in
  go "" "" root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* One complete ("ph":"X") event per span, on a weighted-gate-count time
   axis; loads directly into chrome://tracing / Perfetto / speedscope. *)
let to_json root =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let rec emit e =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf
         "\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
          \"ts\":%s,\"dur\":%s,\"args\":{\
          \"path\":\"%s\",\
          \"toffoli\":%s,\"cnot_cz\":%s,\"x\":%s,\"measure\":%s,\
          \"flat_toffoli\":%s,\"flat_cnot_cz\":%s,\
          \"peak_ancillas\":%d,\"toffoli_depth\":%s,\"total_depth\":%s}}"
         (json_escape e.label)
         (jnum e.start) (jnum e.dur)
         (json_escape (String.concat "/" e.path))
         (jnum e.cum.Counts.toffoli)
         (jnum (Counts.cnot_cz e.cum))
         (jnum e.cum.Counts.x)
         (jnum e.cum.Counts.measure)
         (jnum e.flat.Counts.toffoli)
         (jnum (Counts.cnot_cz e.flat))
         e.peak_ancillas
         (jnum e.toffoli_depth)
         (jnum e.total_depth));
    List.iter emit e.children
  in
  emit root;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
