(* OpenQASM 3 interchange: structural emission checks and semantic
   round-trips (emit, parse, re-simulate) on hand-written and random
   adaptive circuits, including the full MBU modular adders. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_emission_shape () =
  let b = Builder.create () in
  let q0 = Builder.fresh_qubit b and q1 = Builder.fresh_qubit b in
  Builder.h b q0;
  Builder.cphase b ~control:q0 ~target:q1 (Phase.theta 3);
  let bit = Builder.measure ~reset:true b q0 in
  Builder.if_bit b bit (fun () -> Builder.cz b q0 q1);
  let s = Qasm.to_string (Builder.to_circuit b) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle s))
    [ "OPENQASM 3.0;"; "qubit[2] q;"; "h q[0];"; "cp(pi*1/4) q[0], q[1];";
      "c[0] = measure q[0];"; "reset q[0];"; "if (c[0] == 1) {";
      "cz q[0], q[1];" ]

let semantically_equal c1 c2 ~num_qubits ~init ~seed =
  let run c =
    Sim.run ~rng:(Random.State.make [| seed |]) c
      ~init:(State.basis ~num_qubits init)
  in
  let a = run c1 and b = run c2 in
  a.Sim.bits = b.Sim.bits && State.fidelity a.Sim.state b.Sim.state > 1. -. 1e-9

let test_roundtrip_modadd () =
  (* the most demanding circuit we have: measurements, conditionals with
     nested measurements (Gidney ANDs inside the MBU branch), phases *)
  List.iter
    (fun (name, build) ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" 3 in
      let y = Builder.fresh_register b "y" 3 in
      build b ~x ~y;
      let c = Builder.to_circuit b in
      let c' = Qasm.of_string (Qasm.to_string c) in
      Alcotest.(check int) (name ^ " qubits kept") c.Circuit.num_qubits
        c'.Circuit.num_qubits;
      for seed = 1 to 5 do
        let init =
          Sim.init_registers ~num_qubits:c.Circuit.num_qubits
            [ (x, 4); (y, 6) ]
        in
        let run circ = Sim.run ~rng:(Random.State.make [| seed |]) circ ~init in
        let a = run c and b' = run c' in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d same behaviour" name seed)
          true
          (a.Sim.bits = b'.Sim.bits
          && State.fidelity a.Sim.state b'.Sim.state > 1. -. 1e-9)
      done)
    [ ("cdkpm+mbu", fun b ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p:7 ~x ~y);
      ("gidney+mbu", fun b ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_gidney b ~p:7 ~x ~y);
      ("draper+mbu", fun b ~x ~y -> Mod_add.modadd_draper ~mbu:true b ~p:7 ~x ~y) ]

let test_roundtrip_random () =
  let rng = Random.State.make [| 0xa5; 0x17 |] in
  for trial = 1 to 40 do
    let num_qubits = 2 + Random.State.int rng 3 in
    let c, _ =
      Test_optimize.random_circuit rng ~num_qubits
        ~len:(5 + Random.State.int rng 30)
    in
    let c' = Qasm.of_string (Qasm.to_string c) in
    let init = Random.State.int rng (1 lsl num_qubits) in
    let seed = 1 + Random.State.int rng 1000 in
    Alcotest.(check bool)
      (Printf.sprintf "random trial %d" trial)
      true
      (semantically_equal c c' ~num_qubits ~init ~seed)
  done

let test_parse_rejects_garbage () =
  let bad = "OPENQASM 3.0;\nqubit[1] q;\nbit[1] c;\nfrobnicate q[0];\n" in
  Alcotest.(check bool) "rejects unknown statement" true
    (match Qasm.of_string bad with
    | exception Failure msg -> contains ~needle:"unsupported" msg
    | _ -> false)

let test_angles_exact () =
  (* dyadic angles survive the round trip exactly *)
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  List.iter (fun k -> Builder.phase b q (Phase.theta k)) [ 1; 2; 5; 10 ];
  let c = Builder.to_circuit b in
  let c' = Qasm.of_string (Qasm.to_string c) in
  let phases circ =
    let acc = ref [] in
    Instr.iter_gates
      (function Gate.Phase (_, p) -> acc := p :: !acc | _ -> ())
      circ.Circuit.instrs;
    List.rev !acc
  in
  Alcotest.(check bool) "angles identical" true
    (List.for_all2 Phase.equal (phases c) (phases c'))

let suite =
  ( "qasm",
    [ Alcotest.test_case "emission shape" `Quick test_emission_shape;
      Alcotest.test_case "roundtrip modular adders" `Quick test_roundtrip_modadd;
      Alcotest.test_case "roundtrip random circuits" `Quick test_roundtrip_random;
      Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
      Alcotest.test_case "exact dyadic angles" `Quick test_angles_exact ] )
