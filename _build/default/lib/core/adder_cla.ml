open Mbu_circuit

(* Brent-Kung prefix tree over (P, G) pairs. Bit-level blocks at level t
   have size 2^t; block m covers bits [m.2^t, (m+1).2^t). The combined
   generate of a block is stored in place at the g-wire of its top bit; the
   combined propagates P_t[m] need ancillas (block 0's propagate is never
   read, so it is never computed).

   Up-sweep ("G rounds"): G of block m at level t is G(high half) XOR
   P(high half).G(low half):
       g[(m+1).2^t - 1]  ^=  P_{t-1}[2m+1]  AND  g[m.2^t + 2^{t-1} - 1].
   Down-sweep ("C rounds"): carries at the half-block boundaries:
       g[m.2^t + 2^{t-1} - 1]  ^=  P_{t-1}[2m]  AND  g[m.2^t - 1]   (m >= 1).
   After both sweeps g.(i) = c_{i+1}. *)

type g_update = { target : int; p_level : int; p_block : int; src : int }

let plan n =
  let max_level =
    let rec go t = if 1 lsl (t + 1) <= n then go (t + 1) else t in
    go 0
  in
  (* propagate blocks actually read by some update *)
  let needed = Hashtbl.create 16 in
  let ups = ref [] and downs = ref [] in
  for t = 1 to max_level do
    let size = 1 lsl t in
    let m = ref 0 in
    while (!m + 1) * size <= n do
      if !m * size + (size / 2) - 1 < n then begin
        ups :=
          { target = ((!m + 1) * size) - 1;
            p_level = t - 1;
            p_block = (2 * !m) + 1;
            src = (!m * size) + (size / 2) - 1 }
          :: !ups;
        Hashtbl.replace needed (t - 1, (2 * !m) + 1) ()
      end;
      incr m
    done
  done;
  for t = max_level downto 1 do
    let size = 1 lsl t in
    let m = ref 1 in
    while (!m * size) + (size / 2) - 1 < n do
      downs :=
        { target = (!m * size) + (size / 2) - 1;
          p_level = t - 1;
          p_block = 2 * !m;
          src = (!m * size) - 1 }
        :: !downs;
      Hashtbl.replace needed (t - 1, 2 * !m) ();
      incr m
    done
  done;
  (* a needed P block forces its two children (level-0 blocks are wires) *)
  let rec force (t, m) =
    if t >= 1 then begin
      if not (Hashtbl.mem needed (t, m)) then Hashtbl.replace needed (t, m) ();
      force (t - 1, 2 * m);
      force (t - 1, (2 * m) + 1)
    end
  in
  Hashtbl.iter (fun key () -> force key) (Hashtbl.copy needed);
  (max_level, needed, List.rev !ups, List.rev !downs)

(* Build (and later erase) the propagate tree; returns a lookup for P
   wires. Level 0 propagates are the p wires themselves. *)
let with_p_tree ?(mbu = false) b ~p ~max_level ~needed f =
  let wires = Hashtbl.create 16 in
  let wire (t, m) =
    if t = 0 then p.(m)
    else
      match Hashtbl.find_opt wires (t, m) with
      | Some w -> w
      | None -> invalid_arg "Adder_cla: missing propagate block"
  in
  let built = ref [] in
  for t = 1 to max_level do
    Hashtbl.iter
      (fun (t', m) () ->
        if t' = t then begin
          let w = Builder.alloc_ancilla b in
          Hashtbl.replace wires (t, m) w;
          Logical_and.compute b ~c1:(wire (t - 1, 2 * m))
            ~c2:(wire (t - 1, (2 * m) + 1))
            ~target:w;
          built := (t, m, w) :: !built
        end)
      needed
  done;
  f wire;
  List.iter
    (fun (t, m, w) ->
      (if mbu then
         Logical_and.uncompute b ~c1:(wire (t - 1, 2 * m))
           ~c2:(wire (t - 1, (2 * m) + 1))
           ~target:w
       else
         Builder.toffoli b ~c1:(wire (t - 1, 2 * m))
           ~c2:(wire (t - 1, (2 * m) + 1))
           ~target:w);
      Builder.free_ancilla b w)
    !built

let emit_updates b ~wire ~g updates =
  List.iter
    (fun { target; p_level; p_block; src } ->
      Builder.toffoli b ~c1:(wire (p_level, p_block)) ~c2:g.(src)
        ~target:g.(target))
    updates

let carries_gen ?(mbu = false) ~reverse b ~p ~g =
  let n = Array.length p in
  if Array.length g <> n then invalid_arg "Adder_cla: p/g length mismatch";
  if n = 0 then invalid_arg "Adder_cla: empty register";
  let max_level, needed, ups, downs = plan n in
  with_p_tree ~mbu b ~p ~max_level ~needed (fun wire ->
      if reverse then
        emit_updates b ~wire ~g (List.rev (ups @ downs))
      else emit_updates b ~wire ~g (ups @ downs))

let compute_carries b ~p ~g = carries_gen ~mbu:false ~reverse:false b ~p ~g
let uncompute_carries b ~p ~g = carries_gen ~mbu:false ~reverse:true b ~p ~g

let add ?(mbu = true) b ~x ~y =
  let n = Register.length x in
  if Register.length y <> n + 1 then
    invalid_arg "Adder_cla.add: length y <> length x + 1";
  if n = 0 then invalid_arg "Adder_cla.add: empty addend";
  let xq = Register.get x and yq = Register.get y in
  let g = Array.init n (fun _ -> Builder.alloc_ancilla b) in
  let p = Array.init n yq in
  (* generate and propagate *)
  for i = 0 to n - 1 do
    Logical_and.compute b ~c1:(xq i) ~c2:(yq i) ~target:g.(i);
    Builder.cnot b ~control:(xq i) ~target:(yq i)
  done;
  carries_gen ~mbu ~reverse:false b ~p ~g;
  (* write the sum: s_i = p_i XOR c_i, s_n = c_n *)
  Builder.cnot b ~control:g.(n - 1) ~target:(yq n);
  for i = 1 to n - 1 do
    Builder.cnot b ~control:g.(i - 1) ~target:(yq i)
  done;
  (* erase the carries using the dual chain: the borrows of s - x equal the
     carries of x + y, with propagate p'_i = NOT s_i XOR x_i and generate
     g'_i = x_i AND NOT s_i. *)
  for i = 0 to n - 1 do
    Builder.x b (yq i);
    Builder.cnot b ~control:(xq i) ~target:(yq i)
  done;
  (* y now holds p'; run the inverse prefix tree: carries -> g' *)
  carries_gen ~mbu ~reverse:true b ~p ~g;
  for i = 0 to n - 1 do
    Builder.cnot b ~control:(xq i) ~target:(yq i)
    (* y_i = NOT s_i *)
  done;
  for i = 0 to n - 1 do
    if mbu then Logical_and.uncompute b ~c1:(xq i) ~c2:(yq i) ~target:g.(i)
    else Builder.toffoli b ~c1:(xq i) ~c2:(yq i) ~target:g.(i);
    Builder.x b (yq i)
  done;
  Array.iter (Builder.free_ancilla b) (Array.init n (fun i -> g.(n - 1 - i)))
