lib/bitstring/bitstring.ml: Array Format Stdlib String
