type cost = {
  toffoli : float;
  cnot_cz : float;
  x : float;
  qft_units : float;
  qubits : float;
  ancillas : float;
}

let no_cost =
  { toffoli = Float.nan; cnot_cz = Float.nan; x = Float.nan;
    qft_units = Float.nan; qubits = Float.nan; ancillas = Float.nan }

type params = { n : int; hp : int; ha : int }

let fn p = float_of_int p.n
let fhp p = float_of_int p.hp
let fha p = float_of_int p.ha

(* ------------------------------------------------------------------ *)
(* Table 1 *)

type t1_row = {
  t1_name : string;
  t1_statement : string;
  t1_cost : mbu:bool -> params -> cost;
}

let table1 =
  [ { t1_name = "(5 adder) VBE";
      t1_statement = "table 1 row 1";
      t1_cost =
        (fun ~mbu p ->
          let n = fn p and hp = fhp p in
          if mbu then
            { no_cost with qubits = (4. *. n) +. 2.;
              toffoli = (16. *. n) +. 8.;
              cnot_cz = (16. *. n) +. (2. *. hp) +. 18.; x = hp +. 2.5 }
          else
            { no_cost with qubits = (4. *. n) +. 2.;
              toffoli = (20. *. n) +. 10.;
              cnot_cz = (20. *. n) +. (2. *. hp) +. 22.; x = hp +. 2. }) };
    { t1_name = "(4 adder) VBE";
      t1_statement = "table 1 row 2";
      t1_cost =
        (fun ~mbu p ->
          let n = fn p and hp = fhp p in
          if mbu then
            { no_cost with qubits = (4. *. n) +. 2.;
              toffoli = (14. *. n) +. 4.;
              cnot_cz = (17. *. n) +. (2. *. hp) +. 15.5;
              x = (2. *. hp) +. 1.5 }
          else
            { no_cost with qubits = (4. *. n) +. 2.;
              toffoli = (16. *. n) +. 4.;
              cnot_cz = (20. *. n) +. (2. *. hp) +. 18.;
              x = (2. *. hp) +. 1. }) };
    { t1_name = "CDKPM";
      t1_statement = "prop 3.4 / thm 4.3";
      t1_cost =
        (fun ~mbu p ->
          let n = fn p and hp = fhp p in
          if mbu then
            { no_cost with qubits = (3. *. n) +. 2.; toffoli = 7. *. n;
              cnot_cz = (14. *. n) +. (2. *. hp) +. 3.5;
              x = (2. *. hp) +. 1.5 }
          else
            { no_cost with qubits = (3. *. n) +. 2.; toffoli = 8. *. n;
              cnot_cz = (16. *. n) +. (2. *. hp) +. 4.;
              x = (2. *. hp) +. 1. }) };
    { t1_name = "Gidney";
      t1_statement = "prop 3.5 / thm 4.4";
      t1_cost =
        (fun ~mbu p ->
          let n = fn p and hp = fhp p in
          if mbu then
            { no_cost with qubits = (4. *. n) +. 2.; toffoli = 3.5 *. n;
              cnot_cz = (22.75 *. n) +. (2. *. hp) +. 3.5;
              x = (2. *. hp) +. 1.5 }
          else
            { no_cost with qubits = (4. *. n) +. 2.; toffoli = 4. *. n;
              cnot_cz = (26. *. n) +. (2. *. hp) +. 4.;
              x = (2. *. hp) +. 1. }) };
    { t1_name = "CDKPM+Gidney";
      t1_statement = "thm 3.6 / thm 4.5";
      t1_cost =
        (fun ~mbu p ->
          let n = fn p and hp = fhp p in
          if mbu then
            { no_cost with qubits = (3. *. n) +. 2.; toffoli = 5.5 *. n;
              cnot_cz = (17.75 *. n) +. (2. *. hp) +. 3.5;
              x = (2. *. hp) +. 1.5 }
          else
            { no_cost with qubits = (3. *. n) +. 2.; toffoli = 6. *. n;
              cnot_cz = (21. *. n) +. (2. *. hp) +. 4.;
              x = (2. *. hp) +. 1. }) };
    { t1_name = "Draper";
      t1_statement = "prop 3.7 / thm 4.6";
      t1_cost =
        (fun ~mbu p ->
          let n = fn p in
          { no_cost with qubits = (2. *. n) +. 2.;
            qft_units = (if mbu then 8. else 10.) }) };
    { t1_name = "Draper (expect)";
      t1_statement = "table 1 row 7 (amortized end QFTs)";
      t1_cost =
        (fun ~mbu p ->
          let n = fn p in
          { no_cost with qubits = (2. *. n) +. 2.;
            qft_units = (if mbu then 6. else 8.) }) } ]

(* ------------------------------------------------------------------ *)
(* Tables 2-6 *)

type row = { row_name : string; row_statement : string; row_cost : params -> cost }

let table2_plain_adders =
  [ { row_name = "VBE"; row_statement = "prop 2.2";
      row_cost =
        (fun p ->
          { no_cost with toffoli = 4. *. fn p; ancillas = fn p;
            cnot_cz = (4. *. fn p) +. 4. }) };
    { row_name = "CDKPM"; row_statement = "prop 2.3";
      row_cost =
        (fun p ->
          { no_cost with toffoli = 2. *. fn p; ancillas = 1.;
            cnot_cz = (4. *. fn p) +. 1. }) };
    { row_name = "Gidney"; row_statement = "prop 2.4";
      row_cost =
        (fun p ->
          { no_cost with toffoli = fn p; ancillas = fn p;
            cnot_cz = (6. *. fn p) -. 1. }) };
    { row_name = "Draper"; row_statement = "prop 2.5 / cor 2.7";
      row_cost = (fun _ -> { no_cost with qft_units = 3.; ancillas = 0. }) } ]

let table3_controlled_adders =
  [ { row_name = "CDKPM"; row_statement = "thm 2.12";
      row_cost =
        (fun p ->
          { no_cost with toffoli = 3. *. fn p; ancillas = 1.;
            cnot_cz = (4. *. fn p) +. 1. }) };
    { row_name = "Gidney"; row_statement = "prop 2.11";
      row_cost =
        (fun p ->
          { no_cost with toffoli = 2. *. fn p; ancillas = fn p +. 1.;
            cnot_cz = (7. *. fn p) -. 1. }) };
    { row_name = "Draper"; row_statement = "thm 2.14";
      row_cost =
        (fun p -> { no_cost with toffoli = fn p; ancillas = 1.; qft_units = 3. }) } ]

let table4_const_adders =
  [ { row_name = "CDKPM"; row_statement = "prop 2.16";
      row_cost =
        (fun p ->
          { no_cost with toffoli = 2. *. fn p; ancillas = fn p +. 1.;
            cnot_cz = (4. *. fn p) +. 1. }) };
    { row_name = "Gidney"; row_statement = "prop 2.16";
      row_cost =
        (fun p ->
          { no_cost with toffoli = fn p; ancillas = 2. *. fn p;
            cnot_cz = (6. *. fn p) -. 1. }) };
    { row_name = "Draper"; row_statement = "prop 2.17";
      row_cost = (fun _ -> { no_cost with qft_units = 2.; ancillas = 0. }) } ]

let table5_controlled_const_adders =
  [ { row_name = "CDKPM"; row_statement = "prop 2.19";
      row_cost =
        (fun p ->
          { no_cost with toffoli = 2. *. fn p; ancillas = fn p +. 1.;
            cnot_cz = (4. *. fn p) +. 1. +. (2. *. fha p) }) };
    { row_name = "Gidney"; row_statement = "prop 2.19";
      row_cost =
        (fun p ->
          { no_cost with toffoli = fn p; ancillas = 2. *. fn p;
            cnot_cz = (6. *. fn p) -. 1. +. (2. *. fha p) }) };
    { row_name = "Draper"; row_statement = "prop 2.20";
      row_cost = (fun _ -> { no_cost with qft_units = 2.; ancillas = 0. }) } ]

let table6_comparators =
  [ { row_name = "CDKPM"; row_statement = "prop 2.27";
      row_cost =
        (fun p ->
          { no_cost with toffoli = 2. *. fn p; ancillas = 1.;
            cnot_cz = (4. *. fn p) +. 1. }) };
    { row_name = "Gidney"; row_statement = "prop 2.28";
      row_cost =
        (fun p ->
          { no_cost with toffoli = fn p; ancillas = fn p;
            cnot_cz = (6. *. fn p) +. 1. }) };
    { row_name = "Draper"; row_statement = "prop 2.26";
      row_cost = (fun _ -> { no_cost with qft_units = 6.; ancillas = 1. }) } ]

(* ------------------------------------------------------------------ *)
(* Section 3/4 statements *)

let modadd_cdkpm ~mbu p =
  { no_cost with ancillas = fn p +. 3.;
    toffoli = (if mbu then 7. else 8.) *. fn p }

let modadd_gidney ~mbu p =
  { no_cost with ancillas = (2. *. fn p) +. 3.;
    toffoli = (if mbu then 3.5 else 4.) *. fn p }

let modadd_mixed ~mbu p =
  { no_cost with ancillas = fn p +. 3.;
    toffoli = (if mbu then 5.5 else 6.) *. fn p }

let cmodadd_cdkpm ~mbu p =
  { no_cost with ancillas = fn p +. 3.;
    toffoli = (if mbu then (8. *. fn p) +. 0.5 else (9. *. fn p) +. 1.) }

let cmodadd_gidney ~mbu p =
  { no_cost with ancillas = (2. *. fn p) +. 3.;
    toffoli = (if mbu then (4.5 *. fn p) +. 0.5 else (5. *. fn p) +. 1.) }

let modadd_const_takahashi_cdkpm ~mbu p =
  { no_cost with toffoli = (if mbu then 5. else 6.) *. fn p }

let in_range ~mbu p =
  (* CDKPM comparators: r_COMP = 2n, r'_C-COMP = 2n + 1. *)
  let r_comp = 2. *. fn p and r_ccomp = (2. *. fn p) +. 1. in
  { no_cost with
    toffoli = ((if mbu then 1.5 else 2.) *. r_comp) +. r_ccomp;
    ancillas = 2. }
