open Mbu_circuit

(* Loop invariant: the accumulator value t is < 2p and lives in the current
   (n+2)-wire window. One step with multiplier bit x_i:
     t += x_i . a                       (t < 3p < 2^(n+2))
     m := t mod 2                       (moved into quotient wire q_i)
     t := (t - m) / 2 + m . (p+1)/2     ( = (t + m p) / 2 < 2p )
   The division by two is free: the vacated low wire is provably |0> after
   the move, and re-enters the window as the new top wire. *)
let mul_const_redc style b ~a ~p ~x ~acc ~quotient =
  let n = Register.length x in
  if p <= 0 || p land 1 = 0 || p lsr n <> 0 then
    invalid_arg "Montgomery.mul_const_redc: need an odd modulus below 2^n";
  if a < 0 || a >= p then invalid_arg "Montgomery.mul_const_redc: need 0 <= a < p";
  if Register.length acc <> n + 2 then
    invalid_arg "Montgomery.mul_const_redc: acc needs n+2 wires";
  if Register.length quotient <> n then
    invalid_arg "Montgomery.mul_const_redc: quotient needs n wires";
  let window = ref (Register.qubits acc) in
  for i = 0 to n - 1 do
    let reg = Register.make ~name:"acc" !window in
    Adder.add_const_mod_controlled style b ~ctrl:(Register.get x i) ~a ~y:reg;
    (* move the low bit into the quotient wire (which starts |0>) *)
    let w0 = !window.(0) in
    let qi = Register.get quotient i in
    Builder.cnot b ~control:w0 ~target:qi;
    Builder.cnot b ~control:qi ~target:w0;
    (* rotate: w0 (now |0>) becomes the most significant wire *)
    let rotated = Array.append (Array.sub !window 1 (n + 1)) [| w0 |] in
    window := rotated;
    let reg = Register.make ~name:"acc" rotated in
    Adder.add_const_mod_controlled style b ~ctrl:qi ~a:((p + 1) / 2) ~y:reg
  done;
  Register.make ~name:"mont" !window
