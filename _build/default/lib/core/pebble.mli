(** Spooky pebble games (section 1.2's related work: \[Ben89; Gid19b;
    KSS21\]).

    Reversibly computing a chain [x_0 -> x_1 -> ... -> x_m] is modelled as a
    pebble game on a line: a pebble on node [i] means the value [x_i] is
    held in a register. The classical (Bennett) game allows placing or
    removing a pebble on [i] only while [i-1] is pebbled (node 0, the input,
    is always available); computing with few pebbles then costs
    exponentially many recomputations. Gidney's {e spooky} game adds the
    measurement move: a pebble may be removed at any time by an X-basis
    measurement, leaving a {e ghost} — a possible phase [(-1)^{x_i}] haunting
    the superposition — which must later be exorcised by re-pebbling the node
    and applying an outcome-conditioned Z. Ghosts materialize with
    probability 1/2, so their repair is free half the time; crucially the
    measurement itself needs {e no} precondition, which is what breaks the
    classical space lower bound.

    This module provides the game (moves, legality, cost accounting),
    reference strategies, and a compiler from strategies to real circuits
    over a chain of affine boolean functions, which the test suite runs on
    the simulator to confirm that ghosts are genuinely exorcised (flat
    phases on superposed inputs). *)

open Mbu_circuit

type move =
  | Pebble of int  (** compute node [i] (1-based); requires [i-1] pebbled *)
  | Unpebble of int  (** uncompute node [i]; requires [i-1] pebbled *)
  | Measure of int  (** measure node [i] away; leaves a ghost *)
  | Unghost of int  (** exorcise the ghost on [i]; requires [i] re-pebbled *)

type strategy = move list

val validate : chain_length:int -> strategy -> (unit, string) result
(** Check legality of every move and that the final configuration is exactly
    {pebble on node [m], no ghosts}. *)

type cost = {
  applications : int;  (** number of [U_f] applications (Pebble + Unpebble) *)
  space : int;  (** peak number of simultaneous pebbles *)
  measurements : int;
  expected_fixups : float;  (** Unghost count / 2 — expected conditioned Zs *)
}

val cost : chain_length:int -> strategy -> cost
(** Raises [Invalid_argument] if the strategy is illegal. *)

(** {1 Reference strategies} *)

val naive : chain_length:int -> strategy
(** Pebble forward, unpebble backward: [2m - 1] applications, [m] pebbles. *)

val bennett : chain_length:int -> strategy
(** Classic recursive checkpointing: [O(m^{log2 3})] applications,
    [O(log m)] pebbles. *)

val spooky : ?stride:int -> chain_length:int -> unit -> strategy
(** Measure-as-you-go with checkpoints every [stride] nodes (default
    [~sqrt m]): [O(m)] applications with [O(sqrt m)] pebbles — a point the
    classical game cannot reach without exponential recomputation. *)

(** {1 Circuit realization} *)

type chain = (bool * bool) array
(** Affine boolean chain: [f_i (v) = (a_i AND v) XOR c_i], entry [i-1]
    describing [f_i]. *)

val chain_value : chain -> input:bool -> int -> bool
(** [x_i] for the given input bit. *)

val compile :
  Builder.t -> chain:chain -> input:Gate.qubit -> strategy -> Register.t
(** Emit the strategy as a circuit. Allocates one node qubit per chain
    position (returned as a register, node [i] at index [i-1]); the final
    value [x_m] sits in the last qubit. Raises [Invalid_argument] on illegal
    strategies. *)
