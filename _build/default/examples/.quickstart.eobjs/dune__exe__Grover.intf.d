examples/grover.mli:
