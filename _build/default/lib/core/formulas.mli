(** The paper's closed-form resource formulas, transcribed statement by
    statement — the OCaml counterpart of the authors' symbolic-computation
    companion repository. The benchmark harness prints these next to the
    counts measured on the actually constructed circuits.

    Formulas are parameterized by the register width [n] and, where relevant,
    the Hamming weights [hp = |p|] and [ha = |a|] of the classical constants.
    Fields the paper does not state are [Float.nan] (printed as "-"). *)

type cost = {
  toffoli : float;
  cnot_cz : float;  (** the combined CNOT,CZ column of table 1 *)
  x : float;
  qft_units : float;  (** Draper rows: cost in [QFT_{n+1}] equivalents *)
  qubits : float;  (** total logical qubits *)
  ancillas : float;
}

val no_cost : cost
(** All-[nan]. *)

type params = { n : int; hp : int; ha : int }

(** {1 Table 1: modular addition} *)

type t1_row = {
  t1_name : string;  (** e.g. "(5 adder) VBE" *)
  t1_statement : string;  (** theorem/proposition reference *)
  t1_cost : mbu:bool -> params -> cost;
}

val table1 : t1_row list
(** Rows in the paper's order: 5-adder VBE, 4-adder VBE, CDKPM, Gidney,
    CDKPM+Gidney, Draper, Draper (expectation). *)

(** {1 Tables 2--6: plain arithmetic} *)

type row = {
  row_name : string;
  row_statement : string;
  row_cost : params -> cost;
}

val table2_plain_adders : row list
val table3_controlled_adders : row list
val table4_const_adders : row list
val table5_controlled_const_adders : row list
val table6_comparators : row list

(** {1 Section 3/4 statements: modular adders by statement} *)

val modadd_cdkpm : mbu:bool -> params -> cost
(** Proposition 3.4 / theorem 4.3: [8n] vs [7n] Toffoli, [n+3] ancillas. *)

val modadd_gidney : mbu:bool -> params -> cost
(** Proposition 3.5 / theorem 4.4: [4n] vs [3.5n], [2n+3] ancillas. *)

val modadd_mixed : mbu:bool -> params -> cost
(** Theorem 3.6 / theorem 4.5: [6n] vs [5.5n], [n+3] ancillas. *)

val cmodadd_cdkpm : mbu:bool -> params -> cost
(** Proposition 3.10 / theorem 4.8: [9n+1] vs [8n+0.5], [n+3] ancillas. *)

val cmodadd_gidney : mbu:bool -> params -> cost
(** Proposition 3.11 / theorem 4.9: [5n+1] vs [4.5n+0.5], [2n+3] ancillas. *)

val modadd_const_takahashi_cdkpm : mbu:bool -> params -> cost
(** Proposition 3.15 / theorem 4.11 with CDKPM subroutines: [6n] vs [5n]
    Toffoli — the 16.7% improvement quoted in section 1.1. *)

val in_range : mbu:bool -> params -> cost
(** Theorem 4.13 with CDKPM comparators: [2 r_COMP + r'_C-COMP] vs
    [1.5 r_COMP + r'_C-COMP] — the ~25% saving. *)
