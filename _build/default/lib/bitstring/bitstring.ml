type t = bool array
(* LSB first: index i has weight 2^i. *)

let length = Array.length

let get x i =
  if i < 0 || i >= Array.length x then invalid_arg "Bitstring.get";
  x.(i)

let zero n =
  if n < 0 then invalid_arg "Bitstring.zero";
  Array.make n false

let init n f =
  if n < 0 then invalid_arg "Bitstring.init";
  Array.init n f

let of_int ~width v =
  if width < 0 || v < 0 then invalid_arg "Bitstring.of_int";
  Array.init width (fun i -> if i >= 62 then false else (v lsr i) land 1 = 1)

let to_int x =
  if Array.length x > 62 then invalid_arg "Bitstring.to_int: too long";
  let v = ref 0 in
  for i = Array.length x - 1 downto 0 do
    v := (!v lsl 1) lor (if x.(i) then 1 else 0)
  done;
  !v

let to_signed_int x =
  let n = Array.length x in
  if n = 0 then 0
  else if n > 62 then invalid_arg "Bitstring.to_signed_int: too long"
  else begin
    let v = ref 0 in
    for i = n - 2 downto 0 do
      v := (!v lsl 1) lor (if x.(i) then 1 else 0)
    done;
    if x.(n - 1) then !v - (1 lsl (n - 1)) else !v
  end

let of_signed_int ~width v =
  if width <= 0 then invalid_arg "Bitstring.of_signed_int";
  if v < -(1 lsl (width - 1)) || v >= 1 lsl (width - 1) then
    invalid_arg "Bitstring.of_signed_int: not representable";
  let u = if v >= 0 then v else v + (1 lsl width) in
  of_int ~width u

let of_bools l = Array.of_list l
let to_bools x = Array.to_list x

let of_string s =
  let n = String.length s in
  Array.init n (fun i ->
      match s.[n - 1 - i] with
      | '0' -> false
      | '1' -> true
      | _ -> invalid_arg "Bitstring.of_string")

let to_string x =
  let n = Array.length x in
  String.init n (fun i -> if x.(n - 1 - i) then '1' else '0')

let equal = ( = )
let compare = Stdlib.compare
let pp fmt x = Format.pp_print_string fmt (to_string x)
let maj a b c = (a && b) || (a && c) || (b && c)

let carries x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Bitstring.carries";
  let c = Array.make (n + 1) false in
  for i = 0 to n - 1 do
    c.(i + 1) <- maj x.(i) y.(i) c.(i)
  done;
  c

let borrows x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Bitstring.borrows";
  let b = Array.make (n + 1) false in
  for i = 0 to n - 1 do
    b.(i + 1) <- maj (not x.(i)) y.(i) b.(i)
  done;
  b

let add x y =
  let n = Array.length x in
  let c = carries x y in
  Array.init (n + 1) (fun i ->
      if i = n then c.(n) else x.(i) <> y.(i) <> c.(i))

let ones_complement x = Array.map not x

let twos_complement x =
  let n = Array.length x in
  let one = of_int ~width:n 1 in
  Array.sub (add (ones_complement x) one) 0 n

let sub x y =
  let n = Array.length x in
  let b = borrows x y in
  Array.init (n + 1) (fun i ->
      if i = n then b.(n) else x.(i) <> y.(i) <> b.(i))

let hamming_weight x = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 x

let hamming_weight_int v =
  if v < 0 then invalid_arg "Bitstring.hamming_weight_int";
  let rec loop acc v = if v = 0 then acc else loop (acc + (v land 1)) (v lsr 1) in
  loop 0 v

let lt x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Bitstring.lt";
  let rec loop i =
    if i < 0 then false
    else if x.(i) <> y.(i) then y.(i)
    else loop (i - 1)
  in
  loop (n - 1)

let gt x y = lt y x
let msb x = x.(Array.length x - 1)

let pad x n =
  let len = Array.length x in
  if n < len then invalid_arg "Bitstring.pad";
  Array.init n (fun i -> if i < len then x.(i) else false)

let truncate x n = Array.sub x 0 (min n (Array.length x))
