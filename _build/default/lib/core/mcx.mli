(** Multi-controlled gates via logical-AND ladders.

    A [k]-controlled X decomposes into [k - 1] temporary logical-ANDs
    computing the conjunction tree, one CNOT, and the measurement-based
    erasure of the tree — so the expensive (Toffoli-equivalent) part is
    [k - 1] ANDs computed and zero uncomputed, the same economics as every
    other MBU construction in this library. Used by oracles that condition
    on a whole register (e.g. the Grover example). *)

open Mbu_circuit

val apply : Builder.t -> controls:Gate.qubit list -> target:Gate.qubit -> unit
(** [target XOR= AND of controls]. [controls] may be empty (plain X) or a
    singleton (CNOT). *)

val apply_z : Builder.t -> controls:Gate.qubit list -> target:Gate.qubit -> unit
(** Phase version: [(-1)^(target AND controls...)] — the Grover marking
    gate. Requires at least the target. *)

val with_conjunction :
  Builder.t -> controls:Gate.qubit list -> (Gate.qubit -> unit) -> unit
(** [with_conjunction b ~controls f] computes the AND of all controls into a
    temporary wire, passes it to [f], then erases it by MBU. With zero or
    one control the wire is borrowed rather than computed. *)
