test/test_qasm.ml: Alcotest Builder Circuit Gate Instr List Mbu_circuit Mbu_core Mbu_simulator Mod_add Phase Printf Qasm Random Sim State String Test_optimize
