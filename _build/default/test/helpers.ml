(* Shared test harness: build an arithmetic circuit, simulate it on
   computational-basis (and superposition) inputs, and compare register
   contents against the Bitstring reference semantics. *)

open Mbu_circuit
open Mbu_simulator

let rng = Random.State.make [| 0xadd; 0x2025 |]

type adder = Builder.t -> x:Register.t -> y:Register.t -> unit

(* Run one (x, y) case of a plain adder: x has n qubits, y has n+1 with the
   top qubit starting at 0. Returns (x', y', ancillas_clean). *)
let run_adder build n x_val y_val =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" (n + 1) in
  build b ~x ~y;
  let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
  ( Sim.register_value_exn r.Sim.state x,
    Sim.register_value_exn r.Sim.state y,
    Sim.wires_zero r.Sim.state ~except:[ x; y ] )

(* Exhaustively check that [build] implements y <- x + y (definition 2.1),
   keeps x, and cleans its ancillas, for every input pair at width n.
   [reps] > 1 exercises different measurement outcomes in MBU circuits. *)
let check_adder_exhaustive ?(reps = 1) ~name build n =
  for x_val = 0 to (1 lsl n) - 1 do
    for y_val = 0 to (1 lsl n) - 1 do
      for _ = 1 to reps do
        let x', y', clean = run_adder build n x_val y_val in
        Alcotest.(check int)
          (Printf.sprintf "%s n=%d: x kept (x=%d y=%d)" name n x_val y_val)
          x_val x';
        Alcotest.(check int)
          (Printf.sprintf "%s n=%d: sum (x=%d y=%d)" name n x_val y_val)
          (x_val + y_val) y';
        Alcotest.(check bool)
          (Printf.sprintf "%s n=%d: ancillas clean (x=%d y=%d)" name n x_val y_val)
          true clean
      done
    done
  done

let check_adder_random ?(reps = 1) ?(cases = 40) ~name build n =
  for _ = 1 to cases do
    let x_val = Random.State.int rng (1 lsl n) in
    let y_val = Random.State.int rng (1 lsl n) in
    for _ = 1 to reps do
      let x', y', clean = run_adder build n x_val y_val in
      Alcotest.(check int)
        (Printf.sprintf "%s n=%d: x kept (x=%d y=%d)" name n x_val y_val)
        x_val x';
      Alcotest.(check int)
        (Printf.sprintf "%s n=%d: sum (x=%d y=%d)" name n x_val y_val)
        (x_val + y_val) y';
      Alcotest.(check bool) (Printf.sprintf "%s n=%d: clean" name n) true clean
    done
  done

(* Controlled adder: y <- y + ctrl*x (definition 2.8). *)
let check_controlled_adder_exhaustive ?(reps = 1) ~name build n =
  for ctrl_val = 0 to 1 do
    for x_val = 0 to (1 lsl n) - 1 do
      for y_val = 0 to (1 lsl n) - 1 do
        for _ = 1 to reps do
          let b = Builder.create () in
          let ctrl = Builder.fresh_register b "ctrl" 1 in
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" (n + 1) in
          build b ~ctrl:(Register.get ctrl 0) ~x ~y;
          let r =
            Sim.run_builder ~rng b
              ~inits:[ (ctrl, ctrl_val); (x, x_val); (y, y_val) ]
          in
          let msg tag =
            Printf.sprintf "%s n=%d %s (c=%d x=%d y=%d)" name n tag ctrl_val
              x_val y_val
          in
          Alcotest.(check int) (msg "ctrl kept") ctrl_val
            (Sim.register_value_exn r.Sim.state ctrl);
          Alcotest.(check int) (msg "x kept") x_val
            (Sim.register_value_exn r.Sim.state x);
          Alcotest.(check int) (msg "sum")
            (y_val + (ctrl_val * x_val))
            (Sim.register_value_exn r.Sim.state y);
          Alcotest.(check bool) (msg "clean") true
            (Sim.wires_zero r.Sim.state ~except:[ ctrl; x; y ])
        done
      done
    done
  done

(* Comparator: target <- target XOR 1[x > y] (definition 2.24). *)
let check_comparator_exhaustive ?(reps = 1) ~name build n =
  for t_val = 0 to 1 do
    for x_val = 0 to (1 lsl n) - 1 do
      for y_val = 0 to (1 lsl n) - 1 do
        for _ = 1 to reps do
          let b = Builder.create () in
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" n in
          let t = Builder.fresh_register b "t" 1 in
          build b ~x ~y ~target:(Register.get t 0);
          let r =
            Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val); (t, t_val) ]
          in
          let msg tag =
            Printf.sprintf "%s n=%d %s (x=%d y=%d t=%d)" name n tag x_val y_val t_val
          in
          let expect = t_val lxor (if x_val > y_val then 1 else 0) in
          Alcotest.(check int) (msg "x kept") x_val
            (Sim.register_value_exn r.Sim.state x);
          Alcotest.(check int) (msg "y kept") y_val
            (Sim.register_value_exn r.Sim.state y);
          Alcotest.(check int) (msg "compare") expect
            (Sim.register_value_exn r.Sim.state t);
          Alcotest.(check bool) (msg "clean") true
            (Sim.wires_zero r.Sim.state ~except:[ x; y; t ])
        done
      done
    done
  done

(* Controlled comparator: target <- target XOR ctrl.1[x > y] (def 2.29). *)
let check_controlled_comparator_exhaustive ?(reps = 1) ~name build n =
  for ctrl_val = 0 to 1 do
    for x_val = 0 to (1 lsl n) - 1 do
      for y_val = 0 to (1 lsl n) - 1 do
        for _ = 1 to reps do
          let b = Builder.create () in
          let c = Builder.fresh_register b "c" 1 in
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" n in
          let t = Builder.fresh_register b "t" 1 in
          build b ~ctrl:(Register.get c 0) ~x ~y ~target:(Register.get t 0);
          let r =
            Sim.run_builder ~rng b
              ~inits:[ (c, ctrl_val); (x, x_val); (y, y_val); (t, 0) ]
          in
          let msg tag =
            Printf.sprintf "%s n=%d %s (c=%d x=%d y=%d)" name n tag ctrl_val x_val y_val
          in
          let expect = if ctrl_val = 1 && x_val > y_val then 1 else 0 in
          Alcotest.(check int) (msg "compare") expect
            (Sim.register_value_exn r.Sim.state t);
          Alcotest.(check int) (msg "x kept") x_val
            (Sim.register_value_exn r.Sim.state x);
          Alcotest.(check int) (msg "y kept") y_val
            (Sim.register_value_exn r.Sim.state y);
          Alcotest.(check bool) (msg "clean") true
            (Sim.wires_zero r.Sim.state ~except:[ c; x; y; t ])
        done
      done
    done
  done

(* Superposition check for a plain adder: feed x as a uniform superposition
   with y = y0 fixed; the output must be exactly
   sum_x |x>|x + y0> / sqrt(2^n) with flat phases. This is the test that
   catches MBU phase errors, which basis-state tests cannot see. *)
let check_adder_superposition ~name build n y0 =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" (n + 1) in
  Array.iter (fun q -> Builder.h b q) (Register.qubits x);
  build b ~x ~y;
  let r = Sim.run_builder ~rng b ~inits:[ (y, y0) ] in
  let num_qubits = State.num_qubits r.Sim.state in
  let amp : Complex.t =
    { re = 1.0 /. sqrt (float_of_int (1 lsl n)); im = 0.0 }
  in
  let entry x_val =
    let idx = ref 0 in
    for i = 0 to n - 1 do
      if (x_val lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get x i)
    done;
    let s = x_val + y0 in
    for i = 0 to n do
      if (s lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get y i)
    done;
    (!idx, amp)
  in
  let expected =
    State.of_alist ~num_qubits (List.init (1 lsl n) entry)
  in
  let f = State.fidelity r.Sim.state expected in
  Alcotest.(check bool)
    (Printf.sprintf "%s n=%d superposition fidelity %.6f" name n f)
    true
    (f > 1.0 -. 1e-9)
