lib/circuit/draw.ml: Array Buffer Circuit Gate Hashtbl Instr List Option Printf Register String
