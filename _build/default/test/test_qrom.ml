(* QROM lookup and measurement-based unlookup ([Bab+18; Gid19c], discussed
   in the paper's related work as the flagship MBU application). *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let random_data rng k w =
  Array.init (1 lsl k) (fun _ -> Random.State.int rng (1 lsl w))

let test_lookup_exhaustive () =
  let data_rng = Random.State.make [| 11 |] in
  List.iter
    (fun (k, w) ->
      let data = random_data data_rng k w in
      for a = 0 to (1 lsl k) - 1 do
        let b = Builder.create () in
        let address = Builder.fresh_register b "a" k in
        let target = Builder.fresh_register b "t" w in
        Qrom.lookup b ~address ~target ~data;
        let r = Sim.run_builder ~rng b ~inits:[ (address, a) ] in
        let msg = Printf.sprintf "k=%d w=%d a=%d" k w a in
        Alcotest.(check int) msg data.(a) (value r.Sim.state target);
        Alcotest.(check int) (msg ^ " addr kept") a (value r.Sim.state address);
        Alcotest.(check bool) (msg ^ " clean") true
          (Sim.wires_zero r.Sim.state ~except:[ address; target ])
      done)
    [ (1, 2); (2, 3); (3, 2); (4, 1) ]

let test_lookup_xor_semantics () =
  (* |a>|t> -> |a>|t XOR data(a)> (equation (4) is for t = 0; the circuit is
     the XOR version) *)
  let data = [| 3; 1; 2; 0 |] in
  for a = 0 to 3 do
    for t = 0 to 3 do
      let b = Builder.create () in
      let address = Builder.fresh_register b "a" 2 in
      let target = Builder.fresh_register b "t" 2 in
      Qrom.lookup b ~address ~target ~data;
      let r = Sim.run_builder ~rng b ~inits:[ (address, a); (target, t) ] in
      Alcotest.(check int)
        (Printf.sprintf "a=%d t=%d" a t)
        (t lxor data.(a))
        (value r.Sim.state target)
    done
  done

let superposed_lookup_state k w data =
  let b = Builder.create () in
  let address = Builder.fresh_register b "a" k in
  let target = Builder.fresh_register b "t" w in
  Array.iter (fun q -> Builder.h b q) (Register.qubits address);
  Qrom.lookup b ~address ~target ~data;
  (b, address, target)

let entangled_expected ~num_qubits ~address ~target k data =
  let amp : Complex.t = { re = 1.0 /. sqrt (float_of_int (1 lsl k)); im = 0.0 } in
  State.of_alist ~num_qubits
    (List.init (1 lsl k) (fun a ->
         let idx = ref 0 in
         for i = 0 to k - 1 do
           if (a lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get address i)
         done;
         for j = 0 to Register.length target - 1 do
           if (data.(a) lsr j) land 1 = 1 then
             idx := !idx lor (1 lsl Register.get target j)
         done;
         (!idx, amp)))

let test_lookup_superposition () =
  let k = 3 and w = 2 in
  let data = random_data (Random.State.make [| 7 |]) k w in
  let b, address, target = superposed_lookup_state k w data in
  let r = Sim.run_builder ~rng b ~inits:[] in
  let expected =
    entangled_expected ~num_qubits:(State.num_qubits r.Sim.state) ~address
      ~target k data
  in
  Alcotest.(check bool) "entangled lookup state" true
    (State.fidelity r.Sim.state expected > 1. -. 1e-9)

let test_phase_lookup () =
  let k = 3 in
  let table = [| false; true; true; false; true; false; false; true |] in
  let b = Builder.create () in
  let address = Builder.fresh_register b "a" k in
  Array.iter (fun q -> Builder.h b q) (Register.qubits address);
  Qrom.phase_lookup b ~address ~table;
  let r = Sim.run_builder ~rng b ~inits:[] in
  let amp sgn : Complex.t = { re = sgn /. sqrt 8.0; im = 0.0 } in
  let expected =
    State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
      (List.init 8 (fun a ->
           let idx = ref 0 in
           for i = 0 to k - 1 do
             if (a lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get address i)
           done;
           (!idx, amp (if table.(a) then -1.0 else 1.0))))
  in
  Alcotest.(check bool) "phases applied" true
    (State.fidelity r.Sim.state expected > 1. -. 1e-9);
  Alcotest.(check bool) "ancillas clean" true
    (Sim.wires_zero r.Sim.state ~except:[ address ])

(* The critical test: lookup then MBU-unlookup on a superposed address must
   restore the exact pre-lookup state — any missed fixup phase breaks the
   fidelity check. *)
let test_unlookup_roundtrip () =
  List.iter
    (fun (k, w, seed) ->
      let data = random_data (Random.State.make [| seed |]) k w in
      let b = Builder.create () in
      let address = Builder.fresh_register b "a" k in
      let target = Builder.fresh_register b "t" w in
      Array.iter (fun q -> Builder.h b q) (Register.qubits address);
      Qrom.lookup b ~address ~target ~data;
      Qrom.unlookup b ~address ~target ~data;
      for trial = 1 to 4 do
        let r = Sim.run_builder ~rng b ~inits:[] in
        let amp : Complex.t = { re = 1.0 /. sqrt (float_of_int (1 lsl k)); im = 0.0 } in
        let expected =
          State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
            (List.init (1 lsl k) (fun a ->
                 let idx = ref 0 in
                 for i = 0 to k - 1 do
                   if (a lsr i) land 1 = 1 then
                     idx := !idx lor (1 lsl Register.get address i)
                 done;
                 (!idx, amp)))
        in
        let f = State.fidelity r.Sim.state expected in
        Alcotest.(check bool)
          (Printf.sprintf "k=%d w=%d trial %d fidelity %.6f" k w trial f)
          true
          (f > 1. -. 1e-9)
      done)
    [ (2, 1, 3); (3, 2, 5); (4, 2, 9) ]

let test_unlookup_cost_advantage () =
  (* the sqrt(L) story: for k = 8, w = 1, the MBU unlookup must be far
     cheaper than re-running the lookup *)
  let k = 8 and w = 1 in
  let data = random_data (Random.State.make [| 21 |]) k w in
  let tof build =
    let b = Builder.create () in
    let address = Builder.fresh_register b "a" k in
    let target = Builder.fresh_register b "t" w in
    build b ~address ~target;
    (Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b)).Counts.toffoli
  in
  let lookup_cost = tof (fun b ~address ~target -> Qrom.lookup b ~address ~target ~data) in
  let naive = tof (fun b ~address ~target -> Qrom.unlookup_via_lookup b ~address ~target ~data) in
  let mbu = tof (fun b ~address ~target -> Qrom.unlookup b ~address ~target ~data) in
  Alcotest.(check bool)
    (Printf.sprintf "lookup %.0f, naive unlookup %.0f, mbu unlookup %.1f"
       lookup_cost naive mbu)
    true
    (mbu < naive /. 4. && lookup_cost > 200. && mbu < 40.)

let suite =
  ( "qrom",
    [ Alcotest.test_case "lookup exhaustive" `Quick test_lookup_exhaustive;
      Alcotest.test_case "lookup xor semantics" `Quick test_lookup_xor_semantics;
      Alcotest.test_case "lookup on superposed address" `Quick
        test_lookup_superposition;
      Alcotest.test_case "phase lookup" `Quick test_phase_lookup;
      Alcotest.test_case "mbu unlookup roundtrip" `Quick test_unlookup_roundtrip;
      Alcotest.test_case "sqrt(L) cost advantage" `Quick test_unlookup_cost_advantage ] )
