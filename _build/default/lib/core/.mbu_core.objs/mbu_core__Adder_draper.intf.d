lib/core/adder_draper.mli: Builder Gate Mbu_circuit Register
