test/test_unitary.ml: Adder_cdkpm Alcotest Builder Decompose List Mbu_circuit Mbu_core Mbu_simulator Optimize Phase Qft Register Sim
