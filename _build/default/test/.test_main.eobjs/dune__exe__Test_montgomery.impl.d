test/test_montgomery.ml: Adder Alcotest Builder Circuit Counts Helpers Instr List Mbu_circuit Mbu_core Mbu_simulator Mod_add Mod_mul Montgomery Printf Register Sim State
