(* Exact unitary-equality checks for the structural identities the library
   relies on: adjoint inversion, optimizer soundness, decomposition
   equality, gate identities — all up to global phase, column by column plus
   a superposed probe that catches relative-phase mistakes. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let circuit_of f =
  let b = Builder.create () in
  f b;
  Builder.to_circuit b

let test_gate_identities () =
  let cases =
    [ ( "HH = I",
        circuit_of (fun b -> let q = Builder.fresh_qubit b in Builder.h b q; Builder.h b q),
        circuit_of (fun b -> ignore (Builder.fresh_qubit b)) );
      ( "HZH = X",
        circuit_of (fun b ->
            let q = Builder.fresh_qubit b in
            Builder.h b q; Builder.z b q; Builder.h b q),
        circuit_of (fun b -> Builder.x b (Builder.fresh_qubit b)) );
      ( "SS = Z",
        circuit_of (fun b ->
            let q = Builder.fresh_qubit b in
            Builder.phase b q (Phase.theta 2);
            Builder.phase b q (Phase.theta 2)),
        circuit_of (fun b -> Builder.z b (Builder.fresh_qubit b)) );
      ( "cphase(theta1) = CZ",
        circuit_of (fun b ->
            let a = Builder.fresh_qubit b and c = Builder.fresh_qubit b in
            Builder.cphase b ~control:a ~target:c (Phase.theta 1)),
        circuit_of (fun b ->
            let a = Builder.fresh_qubit b and c = Builder.fresh_qubit b in
            Builder.cz b a c) );
      ( "SWAP = 3 CNOT",
        circuit_of (fun b ->
            let a = Builder.fresh_qubit b and c = Builder.fresh_qubit b in
            Builder.swap b a c),
        circuit_of (fun b ->
            let a = Builder.fresh_qubit b and c = Builder.fresh_qubit b in
            Builder.cnot b ~control:a ~target:c;
            Builder.cnot b ~control:c ~target:a;
            Builder.cnot b ~control:a ~target:c) ) ]
  in
  List.iter
    (fun (name, c1, c2) ->
      Alcotest.(check bool) name true (Sim.circuits_equal_unitary c1 c2))
    cases

let test_toffoli_decomposition_unitary () =
  let direct =
    circuit_of (fun b ->
        let r = Builder.fresh_register b "r" 3 in
        Builder.toffoli b ~c1:(Register.get r 0) ~c2:(Register.get r 1)
          ~target:(Register.get r 2))
  in
  let decomposed =
    circuit_of (fun b ->
        let r = Builder.fresh_register b "r" 3 in
        List.iter (Builder.gate b)
          (Decompose.toffoli_7t ~c1:(Register.get r 0) ~c2:(Register.get r 1)
             ~target:(Register.get r 2)))
  in
  Alcotest.(check bool) "7-T toffoli is exactly a toffoli" true
    (Sim.circuits_equal_unitary direct decomposed)

let test_adder_adjoint_unitary () =
  (* CDKPM adder then its adjoint = identity, as full unitaries at n = 2 *)
  let with_adder f =
    circuit_of (fun b ->
        let x = Builder.fresh_register b "x" 2 in
        let y = Builder.fresh_register b "y" 3 in
        f b x y)
  in
  let id = with_adder (fun _ _ _ -> ()) in
  let round =
    with_adder (fun b x y ->
        Adder_cdkpm.add b ~x ~y;
        Builder.emit_adjoint b (fun () -> Adder_cdkpm.add b ~x ~y))
  in
  Alcotest.(check bool) "add . add^dag = I" true
    (Sim.circuits_equal_unitary ~dim_qubits:6 id round)

let test_optimizer_preserves_unitary () =
  (* beyond the sampled checks of test_optimize: full unitary equality *)
  let build () =
    circuit_of (fun b ->
        let r = Builder.fresh_register b "r" 3 in
        Qft.apply b r;
        Builder.x b (Register.get r 0);
        Builder.x b (Register.get r 0);
        Builder.cphase b ~control:(Register.get r 1) ~target:(Register.get r 2)
          (Phase.theta 3);
        Qft.apply_inverse b r;
        Builder.h b (Register.get r 1))
  in
  let c = build () in
  Alcotest.(check bool) "optimized = original as unitaries" true
    (Sim.circuits_equal_unitary c (Optimize.circuit c))

let test_catches_phase_difference () =
  (* sanity: the checker must reject S vs Z (same basis action on |0>,|1>
     columns differ in phase) *)
  let s_gate =
    circuit_of (fun b -> Builder.phase b (Builder.fresh_qubit b) (Phase.theta 2))
  in
  let z_gate = circuit_of (fun b -> Builder.z b (Builder.fresh_qubit b)) in
  Alcotest.(check bool) "S <> Z" false (Sim.circuits_equal_unitary s_gate z_gate);
  (* and reject CZ vs plain Z on one wire *)
  let cz =
    circuit_of (fun b ->
        let a = Builder.fresh_qubit b and c = Builder.fresh_qubit b in
        Builder.cz b a c)
  in
  let z1 =
    circuit_of (fun b ->
        let _a = Builder.fresh_qubit b and c = Builder.fresh_qubit b in
        Builder.z b c)
  in
  Alcotest.(check bool) "CZ <> I x Z" false (Sim.circuits_equal_unitary cz z1)

let suite =
  ( "unitary",
    [ Alcotest.test_case "gate identities" `Quick test_gate_identities;
      Alcotest.test_case "toffoli decomposition" `Quick
        test_toffoli_decomposition_unitary;
      Alcotest.test_case "adder adjoint" `Quick test_adder_adjoint_unitary;
      Alcotest.test_case "optimizer unitary-exact" `Quick
        test_optimizer_preserves_unitary;
      Alcotest.test_case "rejects phase differences" `Quick
        test_catches_phase_difference ] )
