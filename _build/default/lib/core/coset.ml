open Mbu_circuit

(* One padding step: before step j the register value is below p 2^j, so
   the branch that received the conditional +p 2^j is identified by
   [value >= p 2^j] — which is what the outcome-1 phase fix conditions on. *)
let pad_step style b ~p ~j reg =
  let s = p lsl j in
  Builder.with_ancilla b (fun u ->
      Builder.h b u;
      Adder.add_const_mod_controlled style b ~ctrl:u ~a:s ~y:reg;
      Builder.h b u;
      let bit = Builder.measure ~reset:true b u in
      Builder.if_bit b bit (fun () ->
          Builder.with_ancilla b (fun t ->
              Adder.compare_ge_const style b ~a:s ~x:reg ~target:t;
              Builder.z b t;
              Adder.compare_ge_const style b ~a:s ~x:reg ~target:t)))

let prepare style b ~p ~pad reg =
  let total = Register.length reg in
  let n = total - pad in
  if pad < 1 || n < 1 then invalid_arg "Coset.prepare: bad padding split";
  if p <= 0 || (n < 62 && p > 1 lsl n) then
    invalid_arg "Coset.prepare: modulus does not fit the data wires";
  for j = 0 to pad - 1 do
    pad_step style b ~p ~j reg
  done

let add_const style b ~a reg = Adder.add_const_mod style b ~a ~y:reg

let decode ~value ~p = value mod p
