(* Telemetry-layer tests: jobs-independence of the merged per-domain
   counters, histogram bucket conservation, OpenMetrics round-tripping,
   and the bench-regression comparator.

   The registry is process-global; alcotest runs suites sequentially, so
   each test resets it and owns it for the test's duration. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_telemetry

let qtest = QCheck_alcotest.to_alcotest

let build_modadd ~n ~p =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  Mbu_core.Mod_add.modadd ~mbu:true Mbu_core.Mod_add.spec_cdkpm b ~p ~x ~y;
  (b, x, y)

(* The deterministic slice of a snapshot: everything except latency
   buckets/sums and GC word counts, which legitimately vary run to run
   (and per domain layout). Shot outcomes are split-RNG deterministic, so
   these must be exactly equal at any [jobs]. *)
let deterministic_counters () =
  List.filter
    (fun (name, _) ->
      let is_prefix p =
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p
      in
      not
        (is_prefix "mbu_sim_run_seconds"
        || is_prefix "mbu_robustness_run_seconds"
        || is_prefix "mbu_sim_gc_"))
    (Telemetry.counters_alist ())

let workload ~seed ~jobs ~shots c ~init =
  Telemetry.reset ();
  ignore (Sim.run_shots ~seed ~jobs ~shots c ~init);
  deterministic_counters ()

let prop_jobs_independent =
  QCheck.Test.make
    ~name:"merged counters at jobs=4 equal sequential totals at jobs=1"
    ~count:25
    QCheck.(
      make
        Gen.(
          int_range 2 4 >>= fun n ->
          map3
            (fun plow seed shots ->
              (n, max 3 (((1 lsl (n - 1)) lor plow) lor 1), seed, 1 + shots))
            (int_bound ((1 lsl (n - 1)) - 1))
            (int_bound 1000) (int_bound 40))
        ~print:(fun (n, p, seed, shots) ->
          Printf.sprintf "n=%d p=%d seed=%d shots=%d" n p seed shots))
    (fun (n, p, seed, shots) ->
      let b, x, y = build_modadd ~n ~p in
      let c = Builder.to_circuit b in
      let init =
        Sim.init_registers ~num_qubits:(Builder.num_qubits b)
          [ (x, 1 mod p); (y, (p - 1) mod p) ]
      in
      let seq = workload ~seed ~jobs:1 ~shots c ~init in
      let par = workload ~seed ~jobs:4 ~shots c ~init in
      if seq <> par then
        QCheck.Test.fail_reportf "seq=%s@.par=%s"
          (String.concat "; "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) seq))
          (String.concat "; "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) par));
      (* The run counter must also reflect the shot count exactly. *)
      List.assoc "mbu_sim_runs_total" par = float_of_int shots)

let test_campaign_counters_jobs_independent () =
  let b, x, y = build_modadd ~n:3 ~p:5 in
  let spec =
    Mbu_robustness.Engine.spec_of_builder ~name:"modadd" b
      ~inits:[ (x, 2); (y, 3) ] ~keep:[ x; y ] ~expect:[ (x, 2); (y, 0) ]
  in
  let campaign jobs =
    Telemetry.reset ();
    let r =
      Mbu_robustness.Engine.run_campaign ~seed:11 ~jobs
        ~plan:(Mbu_robustness.Engine.Random { runs = 60; faults_per_run = 1 })
        spec
    in
    (r, deterministic_counters ())
  in
  let r1, seq = campaign 1 in
  let r4, par = campaign 4 in
  Alcotest.(check int) "correct jobs-independent" r1.Mbu_robustness.Engine.correct
    r4.Mbu_robustness.Engine.correct;
  Alcotest.(check bool) "telemetry jobs-independent" true (seq = par);
  Alcotest.(check (float 0.)) "runs counter = campaign runs"
    (float_of_int r4.Mbu_robustness.Engine.runs)
    (List.assoc "mbu_robustness_runs_total" par);
  Alcotest.(check (float 0.)) "outcome counters partition the runs"
    (List.assoc "mbu_robustness_runs_total" par)
    (List.assoc "mbu_robustness_correct_total" par
    +. List.assoc "mbu_robustness_detected_total" par
    +. List.assoc "mbu_robustness_silent_total" par)

(* ------------------------------------------------------------------ *)
(* Histograms *)

let prop_histogram_conserves =
  QCheck.Test.make
    ~name:"histogram bucket totals equal observation count" ~count:100
    QCheck.(list_of_size Gen.(int_bound 200) (float_bound_exclusive 10.))
    (fun obs ->
      Telemetry.reset ();
      let h = Telemetry.histogram ~base:1e-3 ~buckets:12 "test_hist_cons" in
      List.iter (Telemetry.observe h) obs;
      let n = List.length obs in
      let cum_last =
        match
          List.find_map
            (function
              | Telemetry.Histogram_sample { name = "test_hist_cons"; buckets; _ }
                ->
                  Some (snd buckets.(Array.length buckets - 1))
              | _ -> None)
            (Telemetry.snapshot ())
        with
        | Some c -> c
        | None -> -1
      in
      Telemetry.histogram_count h = n
      && cum_last = n
      && Float.abs (Telemetry.histogram_sum h -. List.fold_left ( +. ) 0. obs)
         < 1e-6 *. float_of_int (max 1 n))

let test_histogram_buckets_monotone () =
  Telemetry.reset ();
  let h = Telemetry.histogram ~base:1e-6 ~buckets:8 "test_hist_mono" in
  (* Overflow, underflow and exact bucket boundaries all land somewhere. *)
  List.iter (Telemetry.observe h)
    [ 0.; -1.; 1e-6; 2e-6; 3e-6; 1e3; Float.infinity ];
  match
    List.find_map
      (function
        | Telemetry.Histogram_sample { name = "test_hist_mono"; buckets; count; _ }
          ->
            Some (buckets, count)
        | _ -> None)
      (Telemetry.snapshot ())
  with
  | None -> Alcotest.fail "histogram sample missing"
  | Some (buckets, count) ->
      Alcotest.(check int) "count" 7 count;
      let prev = ref 0 in
      Array.iter
        (fun (_, cum) ->
          Alcotest.(check bool) "cumulative monotone" true (cum >= !prev);
          prev := cum)
        buckets;
      Alcotest.(check int) "last bucket is total" 7 !prev;
      (* 1e3 and infinity exceed every finite bound, so exactly those two
         land in the +Inf overflow bucket. *)
      let nb = Array.length buckets in
      let le_last, cum_last = buckets.(nb - 1) in
      let _, cum_prev = buckets.(nb - 2) in
      Alcotest.(check bool) "last le is +Inf" true (le_last = Float.infinity);
      Alcotest.(check int) "overflow bucket count" 2 (cum_last - cum_prev)

(* ------------------------------------------------------------------ *)
(* OpenMetrics round-trip *)

let test_openmetrics_roundtrip () =
  Telemetry.reset ();
  let c = Telemetry.counter ~help:"a counter" "test_om_counter" in
  let g = Telemetry.gauge ~help:"a gauge" "test_om_gauge" in
  let h = Telemetry.histogram ~base:1e-3 ~buckets:4 "test_om_hist" in
  Telemetry.add c 42;
  Telemetry.set_gauge g 7;
  Telemetry.set_gauge g 3;
  List.iter (Telemetry.observe h) [ 5e-4; 2e-3; 100. ];
  let text = Telemetry.to_openmetrics () in
  let samples = Telemetry.parse_openmetrics text in
  let get name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.failf "sample %s missing from exposition" name
  in
  Alcotest.(check (float 0.)) "counter" 42. (get "test_om_counter_total");
  Alcotest.(check (float 0.)) "gauge current" 3. (get "test_om_gauge");
  Alcotest.(check (float 0.)) "gauge highwater" 7.
    (get "test_om_gauge_highwater");
  Alcotest.(check (float 0.)) "hist count" 3. (get "test_om_hist_count");
  Alcotest.(check (float 0.)) "hist first bucket" 1.
    (get "test_om_hist_bucket{le=\"0.001\"}");
  Alcotest.(check (float 0.)) "hist +Inf bucket" 3.
    (get "test_om_hist_bucket{le=\"+Inf\"}");
  Alcotest.(check bool) "terminated by EOF" true
    (let l = String.length text in
     l >= 6 && String.sub text (l - 6) 6 = "# EOF\n")

let test_registry_kind_mismatch () =
  Telemetry.reset ();
  let c1 = Telemetry.counter "test_reg_dup" in
  let c2 = Telemetry.counter "test_reg_dup" in
  Telemetry.incr c1;
  Telemetry.incr c2;
  (* Same name resolves to the same instrument, not a shadow copy. *)
  Alcotest.(check int) "idempotent registration" 2 (Telemetry.counter_value c1);
  Alcotest.check_raises "kind mismatch raises"
    (Invalid_argument
       "Telemetry: \"test_reg_dup\" is already registered as another kind")
    (fun () -> ignore (Telemetry.gauge "test_reg_dup"))

(* ------------------------------------------------------------------ *)
(* Bench comparator *)

let baseline_doc =
  {|{
  "workload": "catalogue-fault-campaigns",
  "families": [
    {"family": "CDKPM", "sites": 349, "runs": 300, "correct": 123,
     "detected": 110, "silent": 67, "detection_rate": 0.6215,
     "silent_rate": 0.2233},
    {"family": "Gidney", "sites": 425, "runs": 300, "correct": 165,
     "detected": 51, "silent": 84, "detection_rate": 0.3778,
     "silent_rate": 0.28}
  ]
}|}

let test_compare_identical_passes () =
  match
    Bench_compare.compare_strings ~baseline:baseline_doc ~current:baseline_doc
  with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok report ->
      Alcotest.(check int) "no regressions" 0
        (List.length report.Bench_compare.regressions);
      Alcotest.(check (option string)) "workload extracted"
        (Some "catalogue-fault-campaigns") report.Bench_compare.workload_name

(* First-occurrence substring replacement (no Str in the test deps). *)
let replace s ~from ~into =
  let ls = String.length s and lf = String.length from in
  let rec find i =
    if i + lf > ls then None
    else if String.sub s i lf = from then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ into ^ String.sub s (i + lf) (ls - i - lf)

let test_compare_flags_degradation () =
  (* A silent count past its zero-tolerance threshold must be flagged. *)
  let degraded =
    replace baseline_doc ~from:{|"silent": 67|} ~into:{|"silent": 90|}
  in
  match
    Bench_compare.compare_strings ~baseline:baseline_doc ~current:degraded
  with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok report ->
      let keys =
        List.map (fun d -> d.Bench_compare.key) report.Bench_compare.regressions
      in
      Alcotest.(check (list string)) "exactly the degraded metric"
        [ "families.CDKPM.silent" ] keys

let test_compare_missing_metric_is_regression () =
  let shrunk =
    {|{"workload": "catalogue-fault-campaigns",
       "families": [
         {"family": "CDKPM", "sites": 349, "runs": 300, "correct": 123,
          "detected": 110, "silent": 67, "detection_rate": 0.6215,
          "silent_rate": 0.2233}
       ]}|}
  in
  match
    Bench_compare.compare_strings ~baseline:baseline_doc ~current:shrunk
  with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok report ->
      Alcotest.(check bool) "dropped row regresses" true
        (List.exists
           (fun d ->
             d.Bench_compare.status = Bench_compare.Missing
             && d.Bench_compare.key = "families.Gidney.silent")
           report.Bench_compare.regressions)

let test_compare_timing_floor () =
  (* A sub-millisecond timing wobble is noise, not a regression; a large
     absolute slowdown past the floor and the relative band is. *)
  let base = {|{"rows": [{"row": "a", "counts_dag_ms": 0.02}]}|} in
  let noisy = {|{"rows": [{"row": "a", "counts_dag_ms": 0.5}]}|} in
  let slow = {|{"rows": [{"row": "a", "counts_dag_ms": 200.0}]}|} in
  let regressions ~current =
    match Bench_compare.compare_strings ~baseline:base ~current with
    | Error e -> Alcotest.failf "parse error: %s" e
    | Ok r -> List.length r.Bench_compare.regressions
  in
  Alcotest.(check int) "25x on microseconds is noise" 0 (regressions ~current:noisy);
  Alcotest.(check int) "10000x past the floor regresses" 1
    (regressions ~current:slow)

let test_flatten_row_keys () =
  let doc =
    {|{"rows": [{"row": "mod_mul", "n": 16, "build_ms": 1.0},
                {"row": "mod_mul", "n": 32, "build_ms": 3.0}]}|}
  in
  let flat = Bench_compare.flatten (Bench_compare.parse doc) in
  Alcotest.(check (option (float 0.))) "n disambiguates repeated rows"
    (Some 3.0)
    (List.assoc_opt "rows.mod_mul@32.build_ms" flat)

let suite =
  ( "telemetry",
    [ qtest prop_jobs_independent;
      Alcotest.test_case "campaign counters jobs-independent" `Quick
        test_campaign_counters_jobs_independent;
      qtest prop_histogram_conserves;
      Alcotest.test_case "histogram buckets monotone" `Quick
        test_histogram_buckets_monotone;
      Alcotest.test_case "openmetrics round-trip" `Quick
        test_openmetrics_roundtrip;
      Alcotest.test_case "registry kind mismatch" `Quick
        test_registry_kind_mismatch;
      Alcotest.test_case "compare: identical baseline passes" `Quick
        test_compare_identical_passes;
      Alcotest.test_case "compare: degradation flagged" `Quick
        test_compare_flags_degradation;
      Alcotest.test_case "compare: missing metric flagged" `Quick
        test_compare_missing_metric_is_regression;
      Alcotest.test_case "compare: timing noise floor" `Quick
        test_compare_timing_floor;
      Alcotest.test_case "flatten: row@n keys" `Quick test_flatten_row_keys ] )
