lib/circuit/builder.ml: Array Circuit Gate Instr List Register
