(* Fault-injection engine and forced-branch execution over the Table-1
   catalogue: site enumeration consistency, both arms of every MBU
   conditional driven deterministically, exhaustive single-X campaigns that
   classify every site without aborting, the state-size guard, and the
   injected-fault counter. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_robustness

let n = 4
let p = 11

let outcome : Engine.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Engine.outcome_name o))
    ( = )

(* [Fault.site] (counted descent, no expansion) must agree with
   [Fault.sites] (the expanded program-order walk) on every index. *)
let test_site_enumeration () =
  List.iter
    (fun (e : Catalogue.entry) ->
      let spec = e.Catalogue.make ~n ~p in
      let instrs = spec.Engine.circuit.Circuit.instrs in
      let num = Fault.num_sites instrs in
      let listed = Fault.sites instrs in
      Alcotest.(check int)
        (e.Catalogue.name ^ ": num_sites = |sites|")
        num (List.length listed);
      List.iteri
        (fun k s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: site %d by descent = by walk" e.Catalogue.name
               k)
            true
            (Fault.site instrs k = s))
        listed;
      (match Fault.site instrs num with
      | _ -> Alcotest.fail "site out of range should raise"
      | exception Invalid_argument _ -> ()))
    Catalogue.all

(* Every catalogue adder is built with ~mbu:true, so each has at least one
   conditional; forcing outcomes must drive both arms of every one, with
   the classical oracle holding on each forced run. *)
let test_forced_branches_cover_all_arms () =
  List.iter
    (fun (e : Catalogue.entry) ->
      let spec = e.Catalogue.make ~n ~p in
      let cov = Engine.check_forced_branches spec in
      Alcotest.(check bool)
        (e.Catalogue.name ^ ": has conditionals")
        true
        (cov.Engine.arms <> []);
      Alcotest.(check (list (triple int bool bool)))
        (e.Catalogue.name ^ ": no uncovered arms")
        [] cov.Engine.uncovered;
      Alcotest.(check bool)
        (e.Catalogue.name ^ ": oracle holds on every forced arm")
        true
        (Engine.covered cov))
    Catalogue.all

(* The paper's MBU cost model says each correction fires with probability
   1/2; the Monte-Carlo stats hook should see that empirically. *)
let test_branch_frequency_near_half () =
  List.iter
    (fun (e : Catalogue.entry) ->
      let spec = e.Catalogue.make ~n ~p in
      let st = Sim.new_stats () in
      ignore
        (Sim.run_shots ~seed:17 ~stats:st ~shots:200 spec.Engine.circuit
           ~init:spec.Engine.init);
      match Sim.taken_frequency st with
      | None -> Alcotest.fail (e.Catalogue.name ^ ": no branches observed")
      | Some f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: taken frequency %.3f in [0.35, 0.65]"
               e.Catalogue.name f)
            true
            (f >= 0.35 && f <= 0.65))
    Catalogue.all

(* Acceptance probe: an exhaustive single-X campaign over a VBE modular
   adder — one run per (gate, wire) site plus every outcome flip and every
   branch skip — must classify each run, never abort. *)
let test_exhaustive_single_x_vbe () =
  let vbe = Option.get (Catalogue.find "vbe5") in
  let spec = vbe.Catalogue.make ~n ~p in
  let r =
    Engine.run_campaign ~seed:3
      ~plan:(Engine.Exhaustive { paulis = [ Fault.X ] })
      spec
  in
  Alcotest.(check int) "one run per site" r.Engine.sites r.Engine.runs;
  Alcotest.(check int) "every run classified" r.Engine.runs
    (r.Engine.correct + r.Engine.detected + r.Engine.silent);
  Alcotest.(check bool) "some fault detected" true (r.Engine.detected > 0)

(* Random campaigns are reproducible and jobs-independent. *)
let test_campaign_deterministic () =
  let spec = (Option.get (Catalogue.find "cdkpm")).Catalogue.make ~n ~p in
  let run jobs =
    Engine.run_campaign ~seed:5 ~jobs
      ~plan:(Engine.Random { runs = 60; faults_per_run = 2 })
      spec
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check (triple int int int))
    "tallies independent of jobs"
    (a.Engine.correct, a.Engine.detected, a.Engine.silent)
    (b.Engine.correct, b.Engine.detected, b.Engine.silent)

(* The state-size guard: a circuit that puts 8 wires in uniform
   superposition exceeds a 16-term budget and must fail with a clean
   [Resource_limit], not thrash; a sufficient budget passes untouched. *)
let test_max_terms_guard () =
  let b = Builder.create () in
  let r = Builder.fresh_register b "q" 8 in
  Array.iter (fun q -> Builder.h b q) (Register.qubits r);
  let c = Builder.to_circuit b in
  let init = Sim.init_registers ~num_qubits:8 [] in
  (match Sim.run ~max_terms:16 c ~init with
  | _ -> Alcotest.fail "expected Resource_limit"
  | exception Mbu_error.Error e -> (
      match e.Mbu_error.kind with
      | Mbu_error.Resource_limit { limit; actual } ->
          Alcotest.(check int) "limit reported" 16 limit;
          Alcotest.(check bool) "actual exceeds limit" true (actual > 16)
      | Mbu_error.Invalid -> Alcotest.fail "wrong error kind"));
  let ok = Sim.run ~max_terms:256 c ~init in
  Alcotest.(check int) "full support under budget" 256
    (State.num_terms ok.Sim.state)

(* Forcing an outcome that has probability zero is an impossible request
   and raises cleanly (campaigns classify it Detected). *)
let test_force_zero_probability_rejected () =
  let b = Builder.create () in
  let r = Builder.fresh_register b "q" 1 in
  ignore (Builder.measure b (Register.get r 0));
  let c = Builder.to_circuit b in
  let init = Sim.init_registers ~num_qubits:1 [] in
  match Sim.run ~force:(Engine.force_all true) c ~init with
  | _ -> Alcotest.fail "forcing a zero-probability outcome should raise"
  | exception Mbu_error.Error e ->
      Alcotest.(check string) "subsystem" "Sim.run" e.Mbu_error.subsystem;
      Alcotest.(check (option int)) "bit attached" (Some 0) e.Mbu_error.bit

(* The [injected] counter reports faults that actually fired: a Pauli at a
   reached position counts, one parked inside a never-taken branch does
   not. *)
let test_injected_counter () =
  let spec = (Option.get (Catalogue.find "cdkpm")).Catalogue.make ~n ~p in
  let c = spec.Engine.circuit in
  let instrs = c.Circuit.instrs in
  let rng () = Random.State.make [| 23 |] in
  let clean = Sim.run ~rng:(rng ()) c ~init:spec.Engine.init in
  Alcotest.(check int) "no plan, nothing injected" 0 clean.Sim.injected;
  let first = Fault.of_site ~pauli:Fault.X (Fault.site instrs 0) in
  let hit = Sim.run ~rng:(rng ()) ~faults:[ first ] c ~init:spec.Engine.init in
  Alcotest.(check int) "pauli at site 0 fires" 1 hit.Sim.injected;
  match
    List.find_opt
      (function Fault.Branch_site _ -> true | _ -> false)
      (Fault.sites instrs)
  with
  | Some (Fault.Branch_site { pos; bit; value }) ->
      (* Park an X on the first instruction of the conditional body and pin
         the guard so the branch never fires: the fault must not either. *)
      let parked = Fault.Pauli_after { pos = pos + 1; qubit = 0; pauli = Fault.X } in
      let force b = if b = bit then Some (not value) else None in
      let miss =
        Sim.run ~rng:(rng ()) ~force ~faults:[ parked ] c ~init:spec.Engine.init
      in
      Alcotest.(check int) "pauli in untaken branch never fires" 0
        miss.Sim.injected;
      let skip = Fault.Skip_block { pos } in
      let force_taken b = if b = bit then Some value else None in
      let skipped =
        Sim.run ~rng:(rng ()) ~force:force_taken ~faults:[ skip ] c
          ~init:spec.Engine.init
      in
      Alcotest.(check int) "skip of a taken branch counts" 1
        skipped.Sim.injected
  | _ -> Alcotest.fail "catalogue circuit should contain a conditional"

(* Classification sanity on a hand-picked plan: flipping the recorded MBU
   outcome (misread model) desynchronizes the correction from the state and
   is always caught — on either true outcome — by the dirty-ancilla check. *)
let test_flip_outcome_always_detected () =
  let spec = (Option.get (Catalogue.find "cdkpm")).Catalogue.make ~n ~p in
  let bits =
    List.filter_map
      (function Fault.Branch_site { bit; _ } -> Some bit | _ -> None)
      (Fault.sites spec.Engine.circuit.Circuit.instrs)
  in
  Alcotest.(check bool) "has an MBU measurement" true (bits <> []);
  List.iter
    (fun bit ->
      List.iter
        (fun v ->
          let o =
            Engine.classify
              ~force:(Engine.force_all v)
              ~rng:(Random.State.make [| 31 |])
              ~faults:[ Fault.Flip_outcome { bit } ]
              spec
          in
          Alcotest.check outcome
            (Printf.sprintf "misread of bit %d detected (outcome %b)" bit v)
            Engine.Detected o)
        [ true; false ])
    bits

let suite =
  ( "robustness",
    [ Alcotest.test_case "site enumeration consistent" `Quick
        test_site_enumeration;
      Alcotest.test_case "forced branches cover every arm" `Quick
        test_forced_branches_cover_all_arms;
      Alcotest.test_case "branch frequency near 1/2" `Quick
        test_branch_frequency_near_half;
      Alcotest.test_case "exhaustive single-X VBE classified" `Quick
        test_exhaustive_single_x_vbe;
      Alcotest.test_case "campaign jobs-independent" `Quick
        test_campaign_deterministic;
      Alcotest.test_case "max_terms resource limit" `Quick
        test_max_terms_guard;
      Alcotest.test_case "force zero-probability rejected" `Quick
        test_force_zero_probability_rejected;
      Alcotest.test_case "injected counter" `Quick test_injected_counter;
      Alcotest.test_case "outcome misread always detected" `Quick
        test_flip_outcome_always_detected ] )
