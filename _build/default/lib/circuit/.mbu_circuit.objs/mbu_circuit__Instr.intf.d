lib/circuit/instr.mli: Format Gate
