lib/core/resources.mli: Builder Counts Mbu_circuit Random
