lib/core/mod_mul.ml: Array Builder Gate Logical_and Mbu_circuit Mod_add Printf Qrom Register
