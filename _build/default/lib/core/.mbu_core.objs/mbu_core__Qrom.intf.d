lib/core/qrom.mli: Builder Mbu_circuit Register
