test/test_mod_extras.ml: Adder Alcotest Builder Circuit Counts Helpers List Mbu_circuit Mbu_core Mbu_simulator Mod_add Printf Random Register Sim
