(* QROM table lookup with measurement-based unlookup.

   The related-work showcase of MBU ([Bab+18; Gid19c], paper section 1.2):
   looking a value up from a 2^k-entry table costs ~2^k Toffoli, but
   ERASING it afterwards costs only O(sqrt(2^k)) — measure the payload in
   the X basis and repair the leftover phase with a much smaller lookup.
   This example runs the full round trip on the simulator and then scales
   the costs.

     dune exec examples/table_lookup.exe *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let () =
  print_endline "=== Lookup |a>|0> -> |a>|T[a]>, table T = squares mod 13 ===";
  let k = 3 and w = 4 in
  let data = Array.init (1 lsl k) (fun a -> a * a mod 13) in
  for a = 0 to (1 lsl k) - 1 do
    let b = Builder.create () in
    let address = Builder.fresh_register b "a" k in
    let target = Builder.fresh_register b "t" w in
    Qrom.lookup b ~address ~target ~data;
    let r = Sim.run_builder b ~inits:[ (address, a) ] in
    Printf.printf "  T[%d] = %2d\n" a (Sim.register_value_exn r.Sim.state target)
  done;
  print_newline ()

let () =
  print_endline "=== Round trip on a superposed address ===";
  let k = 3 and w = 4 in
  let data = Array.init (1 lsl k) (fun a -> a * a mod 13) in
  let b = Builder.create () in
  let address = Builder.fresh_register b "a" k in
  let target = Builder.fresh_register b "t" w in
  Array.iter (fun q -> Builder.h b q) (Register.qubits address);
  Qrom.lookup b ~address ~target ~data;
  Printf.printf "  after lookup: entangled state over %d branches\n" (1 lsl k);
  Qrom.unlookup b ~address ~target ~data;
  let r = Sim.run_builder b ~inits:[] in
  Printf.printf "  after MBU unlookup: %d flat terms, payload register |0>: %b\n"
    (State.num_terms r.Sim.state)
    (Sim.register_value r.Sim.state target = Some 0);
  Printf.printf "  executed gates this run: %s\n\n"
    (Format.asprintf "%a" Counts.pp r.Sim.executed)

let () =
  print_endline "=== Cost scaling: O(L) lookup vs O(sqrt L) unlookup ===";
  Printf.printf "  %4s %8s | %12s | %12s | %12s\n" "k" "L" "lookup" "naive erase"
    "MBU erase";
  List.iter
    (fun k ->
      let data = Array.init (1 lsl k) (fun a -> (a * 11 + 3) land 1) in
      let tof build =
        let b = Builder.create () in
        let address = Builder.fresh_register b "a" k in
        let target = Builder.fresh_register b "t" 1 in
        build b ~address ~target;
        (Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b))
          .Counts.toffoli
      in
      Printf.printf "  %4d %8d | %12.0f | %12.0f | %12.1f\n" k (1 lsl k)
        (tof (fun b ~address ~target -> Qrom.lookup b ~address ~target ~data))
        (tof (fun b ~address ~target ->
             Qrom.unlookup_via_lookup b ~address ~target ~data))
        (tof (fun b ~address ~target -> Qrom.unlookup b ~address ~target ~data)))
    [ 4; 6; 8; 10; 12; 14 ];
  print_endline
    "\n  The MBU erase grows as ~1.5 sqrt(L) while both the lookup and its\n\
    \  naive inverse grow as L - 2."
