examples/shor.mli:
