type t =
  | Gate of Gate.t
  | Measure of { qubit : Gate.qubit; bit : int; reset : bool }
  | If_bit of { bit : int; value : bool; body : t list }
  | Span of { label : string; peak_ancillas : int; body : t list }
  | Call of node

and node = { id : int; hkey : int; body : t list }

(* ------------------------------------------------------------------ *)
(* Hash-consing.                                                       *)
(*                                                                     *)
(* Nodes are interned bottom-up: the body of a node is built before    *)
(* the node itself, so any [Call] appearing inside a candidate body    *)
(* already points at a canonical node. Structural equality of [Call]s  *)
(* therefore reduces to physical equality of their nodes, which keeps  *)
(* both hashing and comparison O(size of the body's own level) instead *)
(* of O(size of the expanded tree).                                    *)
(* ------------------------------------------------------------------ *)

let combine h v = (h * 0x01000193) lxor (v land max_int)

let rec hash_instr = function
  | Gate g -> combine 0x9e3779b1 (Hashtbl.hash g)
  | Measure { qubit; bit; reset } ->
      combine (combine (combine 2 qubit) bit) (Bool.to_int reset)
  | If_bit { bit; value; body } ->
      combine (combine (combine 3 bit) (Bool.to_int value)) (hash_body body)
  | Span { label; peak_ancillas; body } ->
      combine
        (combine (combine 5 (Hashtbl.hash label)) peak_ancillas)
        (hash_body body)
  | Call n -> combine 7 n.hkey

and hash_body body =
  List.fold_left (fun h i -> combine h (hash_instr i)) 0x811c9dc5 body

let rec equal_instr a b =
  a == b
  ||
  match (a, b) with
  | Gate g, Gate h -> Gate.equal g h
  | Measure m, Measure m' ->
      m.qubit = m'.qubit && m.bit = m'.bit && m.reset = m'.reset
  | If_bit i, If_bit j ->
      i.bit = j.bit && i.value = j.value && equal_body i.body j.body
  | Span s, Span s' ->
      String.equal s.label s'.label
      && s.peak_ancillas = s'.peak_ancillas
      && equal_body s.body s'.body
  | Call n, Call m -> n == m
  | _ -> false

and equal_body a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> equal_instr x y && equal_body xs ys
  | _ -> false

module Body_tbl = Hashtbl.Make (struct
  type nonrec t = t list

  let hash = hash_body
  let equal = equal_body
end)

let intern_tbl : node Body_tbl.t = Body_tbl.create 1024
let next_node_id = ref 0

(* Hash-cons hit rate: interned / (interned + allocated). *)
let m_nodes_interned =
  Mbu_telemetry.Telemetry.counter
    ~help:"share calls resolved to an existing hash-consed node"
    "mbu_builder_nodes_interned"

let m_nodes_allocated =
  Mbu_telemetry.Telemetry.counter
    ~help:"share calls that allocated a fresh hash-consed node"
    "mbu_builder_nodes_allocated"

let share body =
  match Body_tbl.find_opt intern_tbl body with
  | Some n ->
      Mbu_telemetry.Telemetry.incr m_nodes_interned;
      Call n
  | None ->
      Mbu_telemetry.Telemetry.incr m_nodes_allocated;
      let n = { id = !next_node_id; hkey = hash_body body; body } in
      incr next_node_id;
      Body_tbl.add intern_tbl body n;
      Call n

let shared_nodes () = Body_tbl.length intern_tbl

(* ------------------------------------------------------------------ *)
(* Fused scan: one walk computing wire/bit maxima, instruction and     *)
(* span totals, and unitarity, with optional gate validation. Per-node *)
(* results are memoized by node id so a shared block is visited once   *)
(* no matter how many references point at it.                          *)
(* ------------------------------------------------------------------ *)

type summary = {
  max_qubit : int;
  max_bit : int;
  instr_count : int;
  span_count : int;
  unitary : bool;
}

type scan_acc = {
  mutable mq : int;
  mutable mb : int;
  mutable ni : int;
  mutable ns : int;
  mutable un : bool;
}

let summary_tbl : (int, summary) Hashtbl.t = Hashtbl.create 1024
let validated_tbl : (int, unit) Hashtbl.t = Hashtbl.create 1024

let rec scan_into ~validate acc = function
  | [] -> ()
  | Gate g :: rest ->
      if validate then Gate.validate g;
      List.iter (fun q -> if q > acc.mq then acc.mq <- q) (Gate.qubits g);
      acc.ni <- acc.ni + 1;
      scan_into ~validate acc rest
  | Measure { qubit; bit; _ } :: rest ->
      if qubit > acc.mq then acc.mq <- qubit;
      if bit > acc.mb then acc.mb <- bit;
      acc.ni <- acc.ni + 1;
      acc.un <- false;
      scan_into ~validate acc rest
  | If_bit { bit; body; _ } :: rest ->
      if bit > acc.mb then acc.mb <- bit;
      acc.ni <- acc.ni + 1;
      acc.un <- false;
      scan_into ~validate acc body;
      scan_into ~validate acc rest
  | Span { body; _ } :: rest ->
      acc.ns <- acc.ns + 1;
      scan_into ~validate acc body;
      scan_into ~validate acc rest
  | Call n :: rest ->
      let s = node_summary n in
      if validate then validate_node n;
      if s.max_qubit > acc.mq then acc.mq <- s.max_qubit;
      if s.max_bit > acc.mb then acc.mb <- s.max_bit;
      acc.ni <- acc.ni + s.instr_count;
      acc.ns <- acc.ns + s.span_count;
      acc.un <- acc.un && s.unitary;
      scan_into ~validate acc rest

and node_summary n =
  match Hashtbl.find_opt summary_tbl n.id with
  | Some s -> s
  | None ->
      let acc = { mq = -1; mb = -1; ni = 0; ns = 0; un = true } in
      scan_into ~validate:false acc n.body;
      let s =
        { max_qubit = acc.mq;
          max_bit = acc.mb;
          instr_count = acc.ni;
          span_count = acc.ns;
          unitary = acc.un }
      in
      Hashtbl.add summary_tbl n.id s;
      s

and validate_node n =
  if not (Hashtbl.mem validated_tbl n.id) then begin
    Hashtbl.add validated_tbl n.id ();
    validate_body n.body
  end

and validate_body = function
  | [] -> ()
  | Gate g :: rest ->
      Gate.validate g;
      validate_body rest
  | Measure _ :: rest -> validate_body rest
  | (If_bit { body; _ } | Span { body; _ }) :: rest ->
      validate_body body;
      validate_body rest
  | Call n :: rest ->
      validate_node n;
      validate_body rest

let scan ?(validate = false) instrs =
  let acc = { mq = -1; mb = -1; ni = 0; ns = 0; un = true } in
  scan_into ~validate acc instrs;
  { max_qubit = acc.mq;
    max_bit = acc.mb;
    instr_count = acc.ni;
    span_count = acc.ns;
    unitary = acc.un }

let max_qubit instrs = (scan instrs).max_qubit
let max_bit instrs = (scan instrs).max_bit

(* Spans are weightless bookkeeping: they never count as instructions, and
   neither does a [Call] — a reference counts as its expanded body. *)
let count_instrs instrs = (scan instrs).instr_count
let count_spans instrs = (scan instrs).span_count
let is_unitary instrs = (scan instrs).unitary

(* ------------------------------------------------------------------ *)
(* Adjoint. The adjoint of a shared node is itself shared, and the two *)
(* nodes cache each other so double-adjoint returns the original node  *)
(* physically — repeated references cost O(1) after the first.         *)
(* ------------------------------------------------------------------ *)

let adjoint_tbl : (int, t) Hashtbl.t = Hashtbl.create 256

let rec adjoint instrs = List.rev_map adj_one instrs

and adj_one = function
  | Gate g -> Gate (Gate.adjoint g)
  | Span { label; peak_ancillas; body } ->
      Span { label; peak_ancillas; body = adjoint body }
  | Call n -> (
      match Hashtbl.find_opt adjoint_tbl n.id with
      | Some a -> a
      | None ->
          let a = share (adjoint n.body) in
          Hashtbl.add adjoint_tbl n.id a;
          (match a with
          | Call an when not (Hashtbl.mem adjoint_tbl an.id) ->
              Hashtbl.add adjoint_tbl an.id (Call n)
          | _ -> ());
          a)
  | Measure _ | If_bit _ ->
      invalid_arg "Instr.adjoint: circuit contains a measurement"

let rec iter_gates f = function
  | [] -> ()
  | Gate g :: rest ->
      f g;
      iter_gates f rest
  | Measure _ :: rest -> iter_gates f rest
  | (If_bit { body; _ } | Span { body; _ } | Call { body; _ }) :: rest ->
      iter_gates f body;
      iter_gates f rest

(* Both rewrites below use a reversed accumulator ([go] conses onto [acc]
   and the caller reverses once) so splicing a body is rev-append-style
   O(|body|) instead of the quadratic [strip body @ strip rest]. *)

let rec strip_spans instrs =
  let rec go acc = function
    | [] -> acc
    | (Span { body; _ } | Call { body; _ }) :: rest -> go (go acc body) rest
    | If_bit { bit; value; body } :: rest ->
        go (If_bit { bit; value; body = strip_spans body } :: acc) rest
    | ((Gate _ | Measure _) as i) :: rest -> go (i :: acc) rest
  in
  List.rev (go [] instrs)

let rec expand_calls instrs =
  let rec go acc = function
    | [] -> acc
    | Call { body; _ } :: rest -> go (go acc body) rest
    | Span { label; peak_ancillas; body } :: rest ->
        go (Span { label; peak_ancillas; body = expand_calls body } :: acc) rest
    | If_bit { bit; value; body } :: rest ->
        go (If_bit { bit; value; body = expand_calls body } :: acc) rest
    | ((Gate _ | Measure _) as i) :: rest -> go (i :: acc) rest
  in
  List.rev (go [] instrs)

let rec pp fmt = function
  | Gate g -> Gate.pp fmt g
  | Measure { qubit; bit; reset } ->
      Format.fprintf fmt "M%s %d -> c%d" (if reset then "r" else "") qubit bit
  | If_bit { bit; value; body } ->
      Format.fprintf fmt "@[<v 2>if c%d = %b {%a}@]" bit value
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp)
        body
  | Span { label; body; _ } ->
      Format.fprintf fmt "@[<v 2>span %S {%a}@]" label
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp)
        body
  | Call { id; body; _ } ->
      Format.fprintf fmt "@[<v 2>call #%d {%a}@]" id
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp)
        body
