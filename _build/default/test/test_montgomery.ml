(* Montgomery REDC multiplier: congruence and bound checks against the
   classical definition, adjoint round trip, comparator-free structure. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let rec pow_mod a e p =
  if e = 0 then 1 mod p
  else
    let h = pow_mod a (e / 2) p in
    let h2 = h * h mod p in
    if e land 1 = 1 then h2 * a mod p else h2

let test_redc_congruence () =
  let n = 4 in
  List.iter
    (fun p ->
      let r_inv = Mod_mul.modinv ~a:(pow_mod 2 n p) ~p in
      List.iter
        (fun a ->
          for x_val = 0 to p - 1 do
            let b = Builder.create () in
            let x = Builder.fresh_register b "x" n in
            let acc = Builder.fresh_register b "acc" (n + 2) in
            let q = Builder.fresh_register b "q" n in
            let out = Montgomery.mul_const_redc Adder.Cdkpm b ~a ~p ~x ~acc ~quotient:q in
            let r = Sim.run_builder ~rng b ~inits:[ (x, x_val) ] in
            let t = value r.Sim.state out in
            let msg = Printf.sprintf "p=%d a=%d x=%d t=%d" p a x_val t in
            Alcotest.(check bool) (msg ^ " semi-reduced") true (t < 2 * p);
            Alcotest.(check int) (msg ^ " congruent")
              (x_val * a * r_inv mod p)
              (t mod p);
            Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x)
          done)
        [ 1; p / 2; p - 1 ])
    [ 13; 15; 11 ]

let test_redc_adjoint_roundtrip () =
  (* unitary with CDKPM internals: adjoint restores everything, quotient
     garbage included *)
  let n = 4 and p = 13 and a = 7 in
  for x_val = 0 to p - 1 do
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let acc = Builder.fresh_register b "acc" (n + 2) in
    let q = Builder.fresh_register b "q" n in
    Builder.emit_adjoint b (fun () ->
        ignore (Montgomery.mul_const_redc Adder.Cdkpm b ~a ~p ~x ~acc ~quotient:q));
    (* adjoint-of-adjoint sandwich: forward then backward is identity *)
    let b2 = Builder.create () in
    let x2 = Builder.fresh_register b2 "x" n in
    let acc2 = Builder.fresh_register b2 "acc" (n + 2) in
    let q2 = Builder.fresh_register b2 "q" n in
    let (), fwd =
      Builder.capture b2 (fun () ->
          ignore
            (Montgomery.mul_const_redc Adder.Cdkpm b2 ~a ~p ~x:x2 ~acc:acc2
               ~quotient:q2))
    in
    Builder.emit b2 fwd;
    Builder.emit b2 (Instr.adjoint fwd);
    let r = Sim.run_builder ~rng b2 ~inits:[ (x2, x_val) ] in
    Alcotest.(check int) "x restored" x_val (value r.Sim.state x2);
    Alcotest.(check int) "acc cleared" 0 (value r.Sim.state acc2);
    Alcotest.(check int) "quotient cleared" 0 (value r.Sim.state q2)
  done

let test_redc_no_comparator () =
  (* structurally comparator-free: no measurement, and strictly fewer
     Toffoli than the compare-and-correct constant modular adder ladder of
     the same width *)
  let n = 8 and p = 251 and a = 100 in
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let acc = Builder.fresh_register b "acc" (n + 2) in
  let q = Builder.fresh_register b "q" n in
  ignore (Montgomery.mul_const_redc Adder.Cdkpm b ~a ~p ~x ~acc ~quotient:q);
  let c = Builder.to_circuit b in
  Alcotest.(check bool) "unitary (no measurement)" true (Circuit.is_unitary c);
  let mont_tof = (Circuit.counts ~mode:Counts.Worst c).Counts.toffoli in
  let b2 = Builder.create () in
  let x2 = Builder.fresh_register b2 "x" n in
  let t2 = Builder.fresh_register b2 "t" n in
  Mod_mul.mult_add
    (Mod_mul.ripple_engine ~mbu:false Mod_add.spec_cdkpm)
    b2 ~a ~p ~x:x2 ~target:t2;
  let ladder_tof =
    (Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b2)).Counts.toffoli
  in
  Alcotest.(check bool)
    (Printf.sprintf "montgomery %.0f < ladder %.0f toffoli" mont_tof ladder_tof)
    true
    (mont_tof < ladder_tof)

let test_redc_superposition () =
  (* entangled quotient bits: the output register must still hold the right
     congruence classes branch by branch *)
  let n = 3 and p = 7 and a = 3 in
  let r_inv = Mod_mul.modinv ~a:(pow_mod 2 n p) ~p in
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let acc = Builder.fresh_register b "acc" (n + 2) in
  let q = Builder.fresh_register b "q" n in
  (* superpose x over {1, 5} *)
  Builder.x b (Register.get x 0);
  Builder.h b (Register.get x 2);
  let out = Montgomery.mul_const_redc Adder.Cdkpm b ~a ~p ~x ~acc ~quotient:q in
  let r = Sim.run_builder ~rng b ~inits:[] in
  (* project onto each x branch classically: every surviving basis state
     must satisfy the congruence *)
  let entries = State.to_alist r.Sim.state in
  Alcotest.(check bool) "superposition survives" true (List.length entries >= 2);
  List.iter
    (fun (idx, _) ->
      let read reg =
        let v = ref 0 in
        for i = Register.length reg - 1 downto 0 do
          v := (!v lsl 1) lor ((idx lsr Register.get reg i) land 1)
        done;
        !v
      in
      let xv = read x and t = read out in
      Alcotest.(check int)
        (Printf.sprintf "branch x=%d" xv)
        (xv * a * r_inv mod p)
        (t mod p))
    entries

let suite =
  ( "montgomery",
    [ Alcotest.test_case "redc congruence" `Quick test_redc_congruence;
      Alcotest.test_case "adjoint roundtrip" `Quick test_redc_adjoint_roundtrip;
      Alcotest.test_case "comparator-free and cheap" `Quick test_redc_no_comparator;
      Alcotest.test_case "superposition branches" `Quick test_redc_superposition ] )
