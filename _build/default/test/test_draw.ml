(* ASCII circuit rendering: structural checks on small circuits. *)

open Mbu_circuit
open Mbu_core

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_row_per_wire () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 2 in
  let y = Builder.fresh_register b "y" 3 in
  Adder_cdkpm.add b ~x ~y;
  let rendered = Draw.render_registers [ x; y ] (Builder.to_circuit b) in
  let ls = lines rendered in
  (* header + one row per wire (5 register wires + 1 ancilla) *)
  Alcotest.(check int) "rows" 7 (List.length ls);
  List.iter
    (fun label ->
      Alcotest.(check bool) ("has row " ^ label) true
        (List.exists (fun l -> contains ~needle:(label ^ ":") l) ls))
    [ "x0"; "x1"; "y0"; "y1"; "y2"; "a5" ]

let test_gate_glyphs () =
  let b = Builder.create () in
  let q0 = Builder.fresh_qubit b and q1 = Builder.fresh_qubit b in
  let q2 = Builder.fresh_qubit b in
  Builder.h b q0;
  Builder.toffoli b ~c1:q0 ~c2:q1 ~target:q2;
  Builder.swap b q0 q1;
  let bit = Builder.measure b q2 in
  Builder.if_bit b bit (fun () -> Builder.z b q0);
  let rendered = Draw.render (Builder.to_circuit b) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("glyph " ^ needle) true (contains ~needle rendered))
    [ "H"; "*"; "+"; "x"; "M"; "Z"; "?" ]

let test_columns_pack () =
  (* two disjoint gates share a column; overlapping gates do not *)
  let b = Builder.create () in
  let q = Array.init 4 (fun _ -> Builder.fresh_qubit b) in
  Builder.x b q.(0);
  Builder.x b q.(2);
  Builder.cnot b ~control:q.(0) ~target:q.(1);
  let c = Builder.to_circuit b in
  let rendered = Draw.render c in
  let width l = String.length l in
  let ws = List.map width (lines rendered) in
  (* all rows equally wide *)
  (match ws with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no output");
  (* the two X gates share column 0: row q0 and q2 each show X at the same
     offset *)
  let row n = List.nth (lines rendered) (n + 1) in
  let x_pos l = String.index l 'X' in
  Alcotest.(check int) "parallel X" (x_pos (row 0)) (x_pos (row 2))

let test_vertical_connector () =
  let b = Builder.create () in
  let q0 = Builder.fresh_qubit b in
  let _q1 = Builder.fresh_qubit b in
  let q2 = Builder.fresh_qubit b in
  Builder.cnot b ~control:q0 ~target:q2;
  let rendered = Draw.render (Builder.to_circuit b) in
  (* middle wire shows the crossing connector *)
  Alcotest.(check bool) "connector through q1" true (contains ~needle:"|" rendered)

let suite =
  ( "draw",
    [ Alcotest.test_case "row per wire" `Quick test_row_per_wire;
      Alcotest.test_case "gate glyphs" `Quick test_gate_glyphs;
      Alcotest.test_case "column packing" `Quick test_columns_pack;
      Alcotest.test_case "vertical connectors" `Quick test_vertical_connector ] )
