(* Quantum cryptanalysis workload: Shor-style modular exponentiation.

   The paper motivates MBU with quantum attacks on RSA/ECC-style problems
   (section 1): a factoring run is dominated by controlled modular
   multiplications, each of which is a ladder of controlled constant modular
   adders — exactly the circuits MBU optimizes. This example
   (a) runs a complete order-finding-style modular exponentiation on the
       simulator at toy size (p = 15, a = 7), and
   (b) scales the per-multiplier resource counts up to cryptographic-looking
       widths to show the compounded MBU saving.

     dune exec examples/cryptanalysis.exe *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let () =
  print_endline "=== Order finding on the simulator: a = 7, N = 15 ===";
  let n = 4 and p = 15 and a = 7 in
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_mixed in
  (* |e>|1> -> |e>|a^e mod N> over a superposed 3-bit exponent. *)
  let b = Builder.create () in
  let e = Builder.fresh_register b "e" 3 in
  let x = Builder.fresh_register b "x" n in
  Array.iter (fun q -> Builder.h b q) (Register.qubits e);
  Mod_mul.modexp engine b ~a ~p ~e ~x;
  let r = Sim.run_builder b ~inits:[ (x, 1) ] in
  Printf.printf "  prepared sum_e |e>|7^e mod 15> with %d basis terms\n"
    (State.num_terms r.Sim.state);
  (* Read off the period classically from the entangled state. *)
  let values =
    List.filter_map
      (fun (idx, _) ->
        let v = ref 0 in
        for k = n - 1 downto 0 do
          v := (!v lsl 1) lor ((idx lsr Register.get x k) land 1)
        done;
        Some !v)
      (State.to_alist r.Sim.state)
    |> List.sort_uniq compare
  in
  Printf.printf "  distinct values of 7^e mod 15: {%s} -> order %d\n\n"
    (String.concat ", " (List.map string_of_int values))
    (List.length values)

let modulus_for n =
  (* an odd constant near 2^n with mixed bit pattern *)
  ((1 lsl n) - 1) land max_int lor 1

let measure_cmult ~mbu ~engine_of n =
  let p = modulus_for n in
  Resources.measure ~n
    ~build:(fun b ->
      let c = Builder.fresh_register b "c" 1 in
      let x = Builder.fresh_register b "x" n in
      let t = Builder.fresh_register b "t" n in
      let engine = engine_of ~mbu in
      Mod_mul.cmult_add engine b ~ctrl:(Register.get c 0) ~a:(p / 3) ~p ~x
        ~target:t)
    ()

let () =
  print_endline
    "=== Controlled modular multiplier: expected Toffoli per CMULT ===";
  Printf.printf "  %4s %12s %12s %9s %10s\n" "n" "w/o MBU" "with MBU" "saving"
    "qubits";
  List.iter
    (fun n ->
      let engine_of ~mbu = Mod_mul.ripple_engine ~mbu Mod_add.spec_mixed in
      let plain = measure_cmult ~mbu:false ~engine_of n in
      let mbu = measure_cmult ~mbu:true ~engine_of n in
      Printf.printf "  %4d %12.0f %12.0f %8.1f%% %10d\n" n
        plain.Resources.toffoli mbu.Resources.toffoli
        (100.
        *. (plain.Resources.toffoli -. mbu.Resources.toffoli)
        /. plain.Resources.toffoli)
        mbu.Resources.qubits)
    [ 8; 16; 32 ];
  print_newline ()

let () =
  print_endline "=== Scaling to a full modular exponentiation ===";
  (* A factoring-style run needs 2n controlled multiplications, each made of
     2 CMULT ladders: extrapolate the per-CMULT measurement. *)
  Printf.printf "  %6s %18s %18s %14s\n" "n" "Tof w/o MBU" "Tof with MBU" "Tof saved";
  List.iter
    (fun n ->
      let engine_of ~mbu = Mod_mul.ripple_engine ~mbu Mod_add.spec_mixed in
      let per_cmult mbu = (measure_cmult ~mbu ~engine_of n).Resources.toffoli in
      let total mbu = per_cmult mbu *. float_of_int (2 * n * 2) in
      let without = total false and with_mbu = total true in
      Printf.printf "  %6d %18.3e %18.3e %14.3e\n" n without with_mbu
        (without -. with_mbu))
    [ 8; 16; 32 ];
  print_endline
    "\n  (per theorem 4.12, each controlled constant modular adder inside\n\
    \   the ladder saves ~n Toffoli in expectation; over the O(n^2) adders\n\
    \   of an exponentiation this compounds to an O(n^3) saving)"
