(** Hierarchical span profiling — pprof-style resource attribution.

    Circuits built through {!Builder.with_span} carry a tree of named
    {!Instr.Span} blocks ("modadd" > "adder.add" > "and.compute" > ...).
    {!profile} walks that tree once and produces, for every span, flat and
    cumulative gate counts, depth, and the peak number of live ancillas
    recorded while the span was open — the circuit-level analogue of a
    profiler's flat/cum columns.

    Spans are weightless: the root entry's cumulative counts equal
    [Counts.of_instrs ~mode] of the same program, and stripping spans
    ({!Instr.strip_spans}) never changes any cost metric. *)

type entry = {
  label : string;
  path : string list;  (** span labels from the root down to this entry *)
  start : float;
      (** position on the weighted-instruction time axis: number of
          (branch-probability-weighted) gates and measurements emitted before
          this span opened *)
  dur : float;  (** weighted gates + measurements inside the span *)
  flat : Counts.t;
      (** gates attributed directly to this span — not inside any child span
          (conditional blocks are transparent and weight their contents by
          the branch probability of the profiling mode) *)
  cum : Counts.t;  (** flat + sum of children's [cum] *)
  peak_ancillas : int;
      (** high-water mark of live builder ancillas while the span was open *)
  total_depth : float;  (** ASAP depth of the span's body, per {!Depth} *)
  toffoli_depth : float;
  calls : int;
      (** 1 for entries from {!profile}; >1 after {!render}'s sibling
          merging has collapsed repeated sub-circuits into one row *)
  children : entry list;
}

val root_label : string
(** Label of the synthetic root entry, ["(root)"]. *)

val profile : ?mode:Counts.mode -> ?span_depth:bool -> Instr.t list -> entry
(** Build the profile tree. [mode] defaults to [Counts.Expected 0.5], the
    paper's cost model for measurement-conditioned blocks. The returned root
    covers the whole program: [root.cum = Counts.of_instrs ~mode instrs].

    Shared blocks ({!Instr.Call}) are profiled once per distinct node and
    every reference reuses the memoized subtree, rebased to its own start
    time and branch weight — counts, durations and attribution are identical
    to profiling the expanded tree.

    [span_depth] (default [true]) controls the per-span isolated ASAP depth
    columns ([total_depth]/[toffoli_depth]). They are the one metric that
    defeats memoization — an ancestor span's depth walks its entire
    expansion — so cryptographic-scale sweeps that only need counts and
    attribution can pass [~span_depth:false], which reports those two fields
    as [0.] and skips the walks. *)

val of_circuit : ?mode:Counts.mode -> ?span_depth:bool -> Circuit.t -> entry

val flatten : entry -> entry list
(** Pre-order listing of an entry and all its descendants. *)

val find : entry -> string -> entry option
(** First entry (pre-order) with the given label. *)

val sum_flat : entry -> Counts.t
(** Sum of [flat] over the whole tree; equals the root's [cum]. Useful as a
    conservation check: every gate is attributed to exactly one span. *)

val render : ?merge:bool -> ?max_depth:int -> entry -> string
(** Fixed-width tree table (span, calls, flat/cum Toffoli, CNOT+CZ, X,
    ancillas, Toffoli-depth, total gates). [merge] (default [true]) collapses
    same-labelled siblings into one row with a call count — without it a
    Gidney adder prints one row per bit position. [max_depth] prunes the tree
    below the given nesting level. *)

val to_json : ?counters:(string * float) list -> entry -> string
(** Chrome trace-event JSON (one ["ph":"X"] complete event per span, on the
    weighted-gate-count time axis). Loads directly into [chrome://tracing],
    Perfetto or speedscope; per-span counts ride in ["args"]. [counters]
    (e.g. [Telemetry.counters_alist ()]) are appended as counter ["ph":"C"]
    events pinned to the root span's end, overlaying runtime metrics on the
    same timeline. *)
