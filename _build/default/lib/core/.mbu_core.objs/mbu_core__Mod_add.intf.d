lib/core/mod_add.mli: Adder Builder Gate Mbu_bitstring Mbu_circuit Register
