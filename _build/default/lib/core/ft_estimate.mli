(** Surface-code resource estimation.

    The paper motivates its Toffoli savings by "running quantum algorithms
    in early error-corrected settings" (section 1.1) and cites the
    fault-tolerant estimates of \[GE21; Gou+23; Lit23\]. This module applies
    the standard lattice-surgery cost model those works use, so the MBU
    savings can be read in physical qubits and wall-clock time rather than
    abstract gate counts:

    - logical error per qubit-round [p_L(d) = a (p / p_th)^((d+1)/2)];
    - the code distance is the smallest odd [d] keeping the total logical
      failure (qubit-rounds x p_L) under the target budget;
    - each logical qubit occupies [2 d^2] physical qubits;
    - Toffolis are consumed at one per [d]-cycle factory slot; runtime is
      [max(toffoli / factories, toffoli_depth) . d . t_cycle].

    The model is deliberately coarse (constant-factor agreement with
    \[GE21\]-class estimates, not decimal-place agreement) and every knob is
    an explicit parameter. *)

type params = {
  physical_error_rate : float;  (** per-operation physical error, e.g. 1e-3 *)
  threshold : float;  (** surface-code threshold, e.g. 1e-2 *)
  prefactor : float;  (** the [a] in [p_L], e.g. 0.1 *)
  cycle_time_ns : float;  (** surface-code cycle, e.g. 1000 ns *)
  target_failure : float;  (** whole-run failure budget, e.g. 1e-2 *)
  factories : int;  (** parallel Toffoli/T factories *)
  factory_footprint : int;  (** physical qubits per factory, in units of 2d^2 *)
}

val default_params : params
(** Superconducting-flavoured defaults: p = 1e-3, 1 us cycles, 1% budget,
    4 factories of footprint 12 logical tiles. *)

type workload = {
  toffoli : float;  (** expected Toffoli (MBU accounting allowed) *)
  toffoli_depth : float;
  logical_qubits : int;
}

val workload_of_resources : Resources.t -> workload

type estimate = {
  code_distance : int;
  logical_error_per_round : float;
  physical_qubits : int;  (** data + routing + factories *)
  runtime_seconds : float;
  toffoli_rate_hz : float;
}

val estimate : ?params:params -> workload -> estimate
(** Raises [Invalid_argument] if no distance up to 99 meets the budget. *)

val pp : Format.formatter -> estimate -> unit
