open Mbu_circuit

(* Process qubits from the MSB down so that the lower qubits are still in the
   computational basis when used as controls. *)
let apply_raw b r =
  let m = Register.length r in
  for i = m - 1 downto 0 do
    Builder.h b (Register.get r i);
    for j = i - 1 downto 0 do
      Builder.cphase b ~control:(Register.get r j) ~target:(Register.get r i)
        (Phase.theta (i - j + 1))
    done
  done

let apply b r = Builder.with_span b "qft" (fun () -> apply_raw b r)

let apply_inverse b r =
  Builder.with_span b "iqft" (fun () ->
      Builder.emit_adjoint b (fun () -> apply_raw b r))
let gate_counts m = Counts.qft_gates m

let apply_approx b ~cutoff r =
  if cutoff < 1 then invalid_arg "Qft.apply_approx: cutoff must be >= 1";
  let m = Register.length r in
  for i = m - 1 downto 0 do
    Builder.h b (Register.get r i);
    for j = i - 1 downto max 0 (i + 1 - cutoff) do
      Builder.cphase b ~control:(Register.get r j) ~target:(Register.get r i)
        (Phase.theta (i - j + 1))
    done
  done

let apply_approx_inverse b ~cutoff r =
  Builder.emit_adjoint b (fun () -> apply_approx b ~cutoff r)
