(** Exact dyadic phases.

    A value of this type represents the phase angle [2 * pi * num / 2^k],
    i.e. the unitary [diag (1, exp (2 i pi num / 2^k))] when used in a phase
    gate. The QFT-based circuits of the paper (Draper adder, Beauregard
    modular adder) only ever need dyadic angles, so representing them exactly
    keeps gate counting exact (two rotations are "the same gate" iff their
    dyadic phases are equal) and keeps the simulator numerically clean. *)

type t

val zero : t

val make : num:int -> log2_den:int -> t
(** [make ~num ~log2_den] is the phase [2 pi num / 2^log2_den], normalized so
    that equal angles compare equal ([num] is reduced modulo the denominator
    and the denominator is minimal). [log2_den] must lie in [0, 61]. *)

val theta : int -> t
(** [theta k] is the paper's rotation angle [theta_k = 2 pi / 2^k] (section
    1.3, figure 3). *)

val of_fraction_of_turn : num:int -> log2_den:int -> t
(** Alias of {!make}; emphasizes that the angle is [num / 2^log2_den] turns. *)

val add : t -> t -> t
val neg : t -> t
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val num : t -> int
(** Reduced numerator, in [0, 2^log2_den). *)

val log2_den : t -> int
(** Reduced denominator exponent; [0] iff the phase is zero. *)

val to_radians : t -> float
val pp : Format.formatter -> t -> unit
