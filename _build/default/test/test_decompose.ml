(* Clifford+T decompositions: exact unitary equivalence checks on random
   states, and the Tof-vs-T accounting behind "halving the cost of quantum
   addition" (figure 10). *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Random.State.make [| 0x7e57; 0xdec0 |]

let test_toffoli_7t_equivalence () =
  for trial = 1 to 25 do
    let prefix_len = Random.State.int rng 10 in
    let seed = Random.State.int rng 100000 in
    let build use_decomposed =
      let b = Builder.create () in
      let r = Builder.fresh_register b "r" 3 in
      let saved = Random.State.make [| seed |] in
      let q () = Register.get r (Random.State.int saved 3) in
      for _ = 1 to prefix_len do
        match Random.State.int saved 4 with
        | 0 -> Builder.h b (q ())
        | 1 -> Builder.phase b (q ()) (Phase.theta (1 + Random.State.int saved 3))
        | 2 ->
            let a = q () in
            let rec other () = let c = q () in if c = a then other () else c in
            Builder.cnot b ~control:a ~target:(other ())
        | _ -> Builder.x b (q ())
      done;
      if use_decomposed then
        List.iter (Builder.gate b)
          (Decompose.toffoli_7t ~c1:(Register.get r 0) ~c2:(Register.get r 1)
             ~target:(Register.get r 2))
      else
        Builder.toffoli b ~c1:(Register.get r 0) ~c2:(Register.get r 1)
          ~target:(Register.get r 2);
      (Sim.run_builder b ~inits:[]).Sim.state
    in
    let f = State.fidelity (build false) (build true) in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d fidelity %.6f" trial f)
      true
      (f > 1. -. 1e-9)
  done

let test_and_4t_matches_toffoli () =
  (* on a fresh |0> target, figure 10 must agree with the plain Toffoli for
     every superposition of the controls *)
  for trial = 1 to 20 do
    let seed = Random.State.int rng 100000 in
    let build use_4t =
      let b = Builder.create () in
      let ab = Builder.fresh_register b "ab" 2 in
      let t = Builder.fresh_register b "t" 1 in
      let saved = Random.State.make [| seed |] in
      for _ = 1 to 6 do
        let q = Register.get ab (Random.State.int saved 2) in
        match Random.State.int saved 3 with
        | 0 -> Builder.h b q
        | 1 -> Builder.phase b q (Phase.theta 2)
        | _ -> Builder.x b q
      done;
      let c1 = Register.get ab 0 and c2 = Register.get ab 1 in
      let target = Register.get t 0 in
      if use_4t then List.iter (Builder.gate b) (Decompose.and_4t ~c1 ~c2 ~target)
      else Builder.toffoli b ~c1 ~c2 ~target;
      (Sim.run_builder b ~inits:[]).Sim.state
    in
    let f = State.fidelity (build false) (build true) in
    Alcotest.(check bool)
      (Printf.sprintf "and trial %d fidelity %.6f" trial f)
      true
      (f > 1. -. 1e-9)
  done

let test_and_4t_uses_4_t () =
  let gates = Decompose.and_4t ~c1:0 ~c2:1 ~target:2 in
  let instrs = List.map (fun g -> Instr.Gate g) gates in
  Alcotest.(check (float 0.)) "4 T" 4. (Decompose.t_count ~mode:Counts.Worst instrs);
  let tof = List.map (fun g -> Instr.Gate g) (Decompose.toffoli_7t ~c1:0 ~c2:1 ~target:2) in
  Alcotest.(check (float 0.)) "7 T" 7. (Decompose.t_count ~mode:Counts.Worst tof)

let test_decomposed_adder_still_adds () =
  let n = 3 in
  List.iter
    (fun style ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder.add style b ~x ~y;
      let c = Decompose.circuit (Builder.to_circuit b) in
      for x_val = 0 to 7 do
        let y_val = (x_val * 3 + 1) land 7 in
        let init =
          Sim.init_registers ~num_qubits:c.Circuit.num_qubits
            [ (x, x_val); (y, y_val) ]
        in
        let r = Sim.run ~rng:(Random.State.make [| 7 |]) c ~init in
        Alcotest.(check int)
          (Printf.sprintf "%s x=%d y=%d" (Adder.style_name style) x_val y_val)
          (x_val + y_val)
          (Sim.register_value_exn r.Sim.state y)
      done)
    [ Adder.Cdkpm; Adder.Gidney ]

let test_halving_t_cost () =
  (* Gidney 2018's headline in T counts: an n-bit addition costs 4n T with
     the logical-AND adder vs 14n with the CDKPM adder under the 7-T
     Toffoli. Gidney's ANDs all target fresh |0> ancillas, so the 4-T
     rewrite is valid for his adder. *)
  let n = 16 in
  let t_of style ~fresh =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" (n + 1) in
    Adder.add style b ~x ~y;
    let c = Decompose.circuit ~fresh_target_and:fresh (Builder.to_circuit b) in
    Decompose.t_count ~mode:(Counts.Expected 0.5) c.Circuit.instrs
  in
  let cdkpm = t_of Adder.Cdkpm ~fresh:false in
  let gidney = t_of Adder.Gidney ~fresh:true in
  Alcotest.(check (float 0.)) "cdkpm 14n" (14. *. float_of_int n) cdkpm;
  Alcotest.(check (float 0.)) "gidney 4n" (4. *. float_of_int n) gidney

let test_fresh_and_rewrite_correct_for_gidney () =
  (* the 4-T rewrite is only claimed valid when every Toffoli is an AND onto
     |0>; the Gidney adder satisfies that — verify end to end, but note the
     adder's dirty-top-qubit block also uses a Toffoli onto y_n which is |0>
     per definition 2.1 *)
  let n = 3 in
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" (n + 1) in
  Adder_gidney.add b ~x ~y;
  let c = Decompose.circuit ~fresh_target_and:true (Builder.to_circuit b) in
  for x_val = 0 to 7 do
    for y_val = 0 to 7 do
      let init =
        Sim.init_registers ~num_qubits:c.Circuit.num_qubits
          [ (x, x_val); (y, y_val) ]
      in
      let r = Sim.run ~rng:(Random.State.make [| x_val + (8 * y_val) |]) c ~init in
      Alcotest.(check int)
        (Printf.sprintf "4t-gidney x=%d y=%d" x_val y_val)
        (x_val + y_val)
        (Sim.register_value_exn r.Sim.state y)
    done
  done

let suite =
  ( "decompose",
    [ Alcotest.test_case "7-T toffoli equivalence" `Quick test_toffoli_7t_equivalence;
      Alcotest.test_case "4-T AND (figure 10)" `Quick test_and_4t_matches_toffoli;
      Alcotest.test_case "t counts per gate" `Quick test_and_4t_uses_4_t;
      Alcotest.test_case "decomposed adders still add" `Quick
        test_decomposed_adder_still_adds;
      Alcotest.test_case "halving the T cost of addition" `Quick test_halving_t_cost;
      Alcotest.test_case "4-T rewrite valid for gidney adder" `Quick
        test_fresh_and_rewrite_correct_for_gidney ] )
