(** Structured errors for the builder / simulator hot paths.

    The seed raised bare [Invalid_argument] strings everywhere, which is
    fine for a library but loses exactly the context a CLI user (or a
    fault-injection campaign classifying failures) needs: {e which} wire,
    {e which} classical bit, {e which} register, and {e where} in the span
    tree the program was when the invariant broke. [Mbu_error.Error]
    carries that context as data; {!to_string} renders it as a one-line
    human message ([mbu-cli] prints it instead of a backtrace). *)

type kind =
  | Invalid
      (** A precondition violation: bad argument, malformed program,
          impossible request (e.g. forcing a zero-probability outcome). *)
  | Resource_limit of { limit : int; actual : int }
      (** A configured budget was exceeded — e.g. the sparse-state term
          budget of [Sim.run ?max_terms]. *)

type t = {
  kind : kind;
  subsystem : string;  (** the raising function, e.g. ["Builder.free_ancilla"] *)
  message : string;
  qubit : int option;  (** wire index, when one is implicated *)
  bit : int option;  (** classical bit index, when one is implicated *)
  register : string option;  (** register name, when one is implicated *)
  path : string list;  (** span-label path from the root, innermost last *)
}

exception Error of t

val invalid :
  ?qubit:int -> ?bit:int -> ?register:string -> ?path:string list ->
  subsystem:string -> string -> 'a
(** Raise {!Error} with [kind = Invalid]. *)

val resource_limit :
  ?qubit:int -> ?bit:int -> ?register:string -> ?path:string list ->
  limit:int -> actual:int -> subsystem:string -> string -> 'a
(** Raise {!Error} with [kind = Resource_limit]. *)

val to_string : t -> string
(** One line, no backtrace:
    ["Builder.free_ancilla: double free [qubit 5]"]. Also installed as the
    [Printexc] printer for {!Error}. *)
