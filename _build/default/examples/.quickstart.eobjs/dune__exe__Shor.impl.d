examples/shor.ml: Array Builder Circuit Hashtbl List Mbu_circuit Mbu_core Mbu_simulator Mod_add Mod_mul Printf Qft Random Register Sim
