open Mbu_circuit

(* Carry recursion via the logical-AND (figure 12): with c_0 = 0 and t_i the
   ancilla holding carry c_{i+1},

     c_{i+1} = c_i XOR ((x_i XOR c_i) AND (y_i XOR c_i)).

   Compute block for position i:
     CNOT(c_i -> x_i); CNOT(c_i -> y_i); AND(x_i, y_i -> t_i); CNOT(c_i -> t_i)
   (the CNOTs are skipped at i = 0 where c_0 = 0). Between compute and
   uncompute, wire x_i holds x_i XOR c_i and wire y_i holds y_i XOR c_i, so
   the sum bit is s_i = (y_i-wire) XOR x_i once x_i is restored. *)

let compute_block b ~c_in ~x ~y ~t =
  (match c_in with
  | Some c ->
      Builder.cnot b ~control:c ~target:x;
      Builder.cnot b ~control:c ~target:y
  | None -> ());
  Logical_and.compute b ~c1:x ~c2:y ~target:t;
  match c_in with
  | Some c -> Builder.cnot b ~control:c ~target:t
  | None -> ()

(* Erase t (holding c_{i+1}) by MBU; wires x, y must still hold the XORed
   values from compute time. *)
let erase_carry b ~c_in ~x ~y ~t =
  (match c_in with
  | Some c -> Builder.cnot b ~control:c ~target:t
  | None -> ());
  Logical_and.uncompute b ~c1:x ~c2:y ~target:t

let check_add_regs name ~x ~y =
  let n = Register.length x in
  if n = 0 then invalid_arg (name ^ ": empty addend");
  if Register.length y <> n + 1 then invalid_arg (name ^ ": length y <> length x + 1")

let add b ~x ~y =
  check_add_regs "Adder_gidney.add" ~x ~y;
  let n = Register.length x in
  let xq = Register.get x and yq = Register.get y in
  if n = 1 then begin
    (* Degenerate: one logical-AND straight into y_1, one CNOT for s_0. *)
    Logical_and.compute b ~c1:(xq 0) ~c2:(yq 0) ~target:(yq 1);
    Builder.cnot b ~control:(xq 0) ~target:(yq 0)
  end
  else begin
    let t = Array.init (n - 1) (fun _ -> Builder.alloc_ancilla b) in
    let c i = if i = 0 then None else Some t.(i - 1) in
    (* Rising pass: carries c_1 .. c_{n-1} into ancillas, c_n straight into
       the sum's top qubit y_n. *)
    for i = 0 to n - 2 do
      compute_block b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i)
    done;
    compute_block b ~c_in:(c (n - 1)) ~x:(xq (n - 1)) ~y:(yq (n - 1)) ~t:(yq n);
    (* The "two additional CNOTs": restore x_{n-1}, write s_{n-1}. *)
    (match c (n - 1) with
    | Some cq -> Builder.cnot b ~control:cq ~target:(xq (n - 1))
    | None -> ());
    Builder.cnot b ~control:(xq (n - 1)) ~target:(yq (n - 1));
    (* Falling pass: erase each carry, restore x_i, write s_i. *)
    for i = n - 2 downto 0 do
      erase_carry b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i);
      (match c i with
      | Some cq -> Builder.cnot b ~control:cq ~target:(xq i)
      | None -> ());
      Builder.cnot b ~control:(xq i) ~target:(yq i)
    done;
    Array.iter (Builder.free_ancilla b) (Array.init (n - 1) (fun i -> t.(n - 2 - i)))
  end

let add_controlled b ~ctrl ~x ~y =
  check_add_regs "Adder_gidney.add_controlled" ~x ~y;
  let n = Register.length x in
  let xq = Register.get x and yq = Register.get y in
  let t = Array.init n (fun _ -> Builder.alloc_ancilla b) in
  let c i = if i = 0 then None else Some t.(i - 1) in
  (* Carries are computed unconditionally, including c_n into an ancilla;
     only the copies into y are controlled (figure 15). *)
  for i = 0 to n - 1 do
    compute_block b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i)
  done;
  Builder.toffoli b ~c1:ctrl ~c2:t.(n - 1) ~target:(yq n);
  for i = n - 1 downto 0 do
    erase_carry b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i);
    (* wires: x_i XOR c_i, y_i XOR c_i. Conditionally fold x XOR c into y,
       restore x, then fold c back out of y:
       y := y XOR c XOR ctrl.(x XOR c) XOR c = ctrl ? s_i : y_i. *)
    Builder.toffoli b ~c1:ctrl ~c2:(xq i) ~target:(yq i);
    match c i with
    | Some cq ->
        Builder.cnot b ~control:cq ~target:(xq i);
        Builder.cnot b ~control:cq ~target:(yq i)
    | None -> ()
  done;
  Array.iter (Builder.free_ancilla b) (Array.init n (fun i -> t.(n - 1 - i)))

let compare_gen b ?ctrl ~x ~y ~target () =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Adder_gidney.compare: unequal lengths";
  if n = 0 then invalid_arg "Adder_gidney.compare: empty register";
  let xq = Register.get x and yq = Register.get y in
  let complement () = Array.iter (fun q -> Builder.x b q) (Register.qubits y) in
  (* Top carry of x + NOT(y) equals 1[x > y]; compute the carry ladder, copy
     the top carry out, then erase every carry by MBU (no Toffoli on the way
     down). *)
  let t = Array.init n (fun _ -> Builder.alloc_ancilla b) in
  let c i = if i = 0 then None else Some t.(i - 1) in
  complement ();
  for i = 0 to n - 1 do
    compute_block b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i)
  done;
  (match ctrl with
  | None -> Builder.cnot b ~control:t.(n - 1) ~target
  | Some ctrl -> Builder.toffoli b ~c1:ctrl ~c2:t.(n - 1) ~target);
  for i = n - 1 downto 0 do
    erase_carry b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i);
    match c i with
    | Some cq ->
        Builder.cnot b ~control:cq ~target:(yq i);
        Builder.cnot b ~control:cq ~target:(xq i)
    | None -> ()
  done;
  complement ();
  Array.iter (Builder.free_ancilla b) (Array.init n (fun i -> t.(n - 1 - i)))

let compare b ~x ~y ~target = compare_gen b ~x ~y ~target ()
let compare_controlled b ~ctrl ~x ~y ~target = compare_gen b ~ctrl ~x ~y ~target ()

(* Equal-length addition modulo 2^m (no overflow qubit). *)
let add_mod b ~x ~y =
  let m = Register.length x in
  if Register.length y <> m then invalid_arg "Adder_gidney.add_mod: unequal lengths";
  if m = 0 then invalid_arg "Adder_gidney.add_mod: empty register";
  let xq = Register.get x and yq = Register.get y in
  if m = 1 then Builder.cnot b ~control:(xq 0) ~target:(yq 0)
  else begin
    let t = Array.init (m - 1) (fun _ -> Builder.alloc_ancilla b) in
    let c i = if i = 0 then None else Some t.(i - 1) in
    for i = 0 to m - 2 do
      compute_block b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i)
    done;
    Builder.cnot b ~control:t.(m - 2) ~target:(yq (m - 1));
    Builder.cnot b ~control:(xq (m - 1)) ~target:(yq (m - 1));
    for i = m - 2 downto 0 do
      erase_carry b ~c_in:(c i) ~x:(xq i) ~y:(yq i) ~t:t.(i);
      (match c i with
      | Some cq -> Builder.cnot b ~control:cq ~target:(xq i)
      | None -> ());
      Builder.cnot b ~control:(xq i) ~target:(yq i)
    done;
    Array.iter (Builder.free_ancilla b) (Array.init (m - 1) (fun i -> t.(m - 2 - i)))
  end
