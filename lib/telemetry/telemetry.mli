(** Process-wide metrics registry: monotonic counters, gauges with
    high-water tracking, and fixed-bucket log2-scale latency histograms.

    All instruments are safe to update concurrently from shot-runner
    domains on OCaml 5 — counter and histogram cells are striped by domain
    id and merged on read ({!Shard.stripes} stripes; one on the 4.14
    sequential fallback), gauges use a single atomic cell plus a CAS-max
    high-water mark. Registration is idempotent: asking for an existing
    name returns the existing instrument; asking for it as a different
    kind raises [Invalid_argument]. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the time source every
    instrumented site uses, so tests can reason about one clock. *)

(** {1 Counters} *)

type counter

val counter : ?help:string -> string -> counter
val incr : counter -> unit

val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment: counters are
    monotonic by contract. *)

val counter_value : counter -> int
(** Merged total across all stripes. *)

(** {1 Gauges} *)

type gauge

val gauge : ?help:string -> string -> gauge

val set_gauge : gauge -> int -> unit
(** Set the current value; the high-water mark tracks the maximum ever
    set. *)

val add_gauge : gauge -> int -> unit
(** Add a (possibly negative) delta to the current value. *)

val observe_max : gauge -> int -> unit
(** Raise the high-water mark without touching the current value — for
    peaks sampled externally (e.g. sparse-state support size). *)

val gauge_value : gauge -> int
val gauge_highwater : gauge -> int

(** {1 Histograms} *)

type histogram

val histogram : ?help:string -> ?base:float -> ?buckets:int -> string -> histogram
(** Log2-scale buckets: bucket 0 covers everything [<= base], bucket [i]
    covers [(base*2^(i-1), base*2^i]], the last bucket is the +Inf
    overflow. Defaults ([base = 1e-6], [buckets = 28]) span 1 µs to ~67 s
    — the full range of per-shot and per-campaign-run latencies. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration in seconds, even if
    it raises. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Snapshots and exposition} *)

type sample =
  | Counter_sample of { name : string; help : string; value : int }
  | Gauge_sample of { name : string; help : string; value : int; highwater : int }
  | Histogram_sample of {
      name : string;
      help : string;
      count : int;
      sum : float;
      buckets : (float * int) array;
          (** [(le, cumulative count)] pairs; the last [le] is
              [infinity]. *)
    }

val snapshot : unit -> sample list
(** All registered instruments, sorted by name. Races benignly with
    concurrent updates. *)

val reset : unit -> unit
(** Zero every registered instrument (values, high-water marks, buckets).
    Instruments stay registered. Intended for tests and for giving each
    CLI invocation a clean slate. *)

val to_openmetrics : unit -> string
(** OpenMetrics text exposition: counters as [name_total], histograms as
    cumulative [name_bucket{le="..."}] plus [name_sum]/[name_count],
    gauges as [name] plus a separate [name_highwater] gauge family;
    terminated by [# EOF]. *)

val to_json : unit -> string
(** The same snapshot as a self-contained JSON document
    [{"metrics": [...]}]. *)

val counters_alist : unit -> (string * float) list
(** Flattened [(name, value)] view of the snapshot — counters as
    [name_total], gauges as [name] and [name_highwater], histograms as
    [name_count] and [name_sum]. The shape Chrome trace counter events
    want. *)

val parse_openmetrics : string -> (string * float) list
(** Minimal OpenMetrics parser for round-trip tests: returns each sample
    line as [(name-with-labels, value)] in exposition order. Fails on
    malformed lines or unknown comment forms. *)
