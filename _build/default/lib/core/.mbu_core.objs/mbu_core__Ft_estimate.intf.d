lib/core/ft_estimate.mli: Format Resources
