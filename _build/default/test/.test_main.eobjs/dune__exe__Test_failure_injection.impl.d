test/test_failure_injection.ml: Adder Adder_cdkpm Alcotest Array Builder Complex Helpers List Mbu Mbu_circuit Mbu_core Mbu_simulator Random Register Sim State
