(** Fault-injection campaigns over adaptive circuits.

    A {!spec} packages a circuit with the ground truth a run is judged
    against: the classical oracle values of its output registers, the
    registers allowed to be non-zero at the end (everything else must be a
    |0> ancilla), and optional custom detectors (e.g. fidelity against a
    known superposed state — the only way to see a pure phase fault on a
    basis-input run is to feed a superposition).

    Each faulty run is classified:
    - [Detected] — the run raised a clean error ([Mbu_error], including
      forced zero-probability outcomes and resource limits), a detector
      fired, or an ancilla was left dirty: the fault is visible to checks
      an error-corrected machine (or this test harness) actually performs.
    - [Correct] — all output registers match the oracle and every ancilla
      is clean: the fault was absorbed (e.g. a Z on a wire in a basis
      state, or an X in a branch that never ran).
    - [Silent_corrupt] — the run finished, ancillas clean, but an output
      register is wrong or superposed: the dangerous case the campaign
      exists to measure.

    Campaigns are deterministic: run [i] derives its fault plan and its
    measurement RNG from [(seed, i)] only, so results are independent of
    [jobs] (shots fan out across domains exactly like [Sim.run_shots]). *)

open Mbu_circuit
open Mbu_simulator

type spec = {
  name : string;
  circuit : Circuit.t;
  init : State.t;
  keep : Register.t list;  (** registers allowed non-zero at the end *)
  expect : (Register.t * int) list;  (** classical oracle for the outputs *)
  detectors : (string * (Sim.run -> bool)) list;
      (** extra checks; returning [true] classifies the run [Detected] *)
}

val spec_of_builder :
  name:string -> ?detectors:(string * (Sim.run -> bool)) list ->
  keep:Register.t list -> expect:(Register.t * int) list ->
  Builder.t -> inits:(Register.t * int) list -> spec

type outcome = Correct | Detected | Silent_corrupt

val outcome_name : outcome -> string

val classify_run : spec -> Sim.run -> outcome
(** Judge a finished run (detectors, then ancilla check, then oracle). *)

val classify :
  ?engine:Sim.engine -> ?force:(int -> bool option) -> ?max_terms:int ->
  rng:Random.State.t -> faults:Fault.t list -> spec -> outcome
(** One faulty run, never raises: [Mbu_error] / [Invalid_argument] during
    execution classify as [Detected]. *)

val oracle_outputs :
  ?engine:Sim.engine -> spec -> Register.t list -> (Register.t * int) list
(** Reference oracle from a fault-free run: the registers' final values.
    Valid because a healthy adaptive circuit's outputs are
    outcome-independent; raises [Mbu_error] if an output is superposed or
    an ancilla dirty (the spec itself is broken). *)

(** {1 Campaigns} *)

type plan =
  | Exhaustive of { paulis : Fault.pauli list }
      (** One run per fault site: every listed Pauli on every (gate, wire)
          site, one outcome flip per measurement site, one skip per branch
          site. *)
  | Random of { runs : int; faults_per_run : int }
      (** [runs] runs, each injecting [faults_per_run] distinct
          uniformly-drawn sites (gate sites get a uniform Pauli). *)

type result = {
  spec_name : string;
  sites : int;  (** fault sites in the circuit *)
  runs : int;
  correct : int;
  detected : int;
  silent : int;
  silent_examples : Fault.t list list;  (** plans of up to 8 silent runs *)
}

val run_campaign :
  ?seed:int -> ?jobs:int -> ?engine:Sim.engine ->
  ?force:(int -> bool option) -> ?max_terms:int ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  plan:plan -> spec -> result
(** Checks first that the fault-free baseline classifies [Correct] (raising
    [Mbu_error] otherwise — a broken spec would classify everything), then
    runs the campaign in parallel. [on_progress] fires after every
    completed run with a monotone completion count; under parallel jobs it
    may be called from any worker domain, so it must be thread-safe. *)

val detection_rate : result -> float
(** [detected / (detected + silent)] — of the faults that {e mattered}, the
    fraction the checks caught. 1.0 when nothing was silently corrupted. *)

val silent_rate : result -> float
(** [silent / runs]. *)

(** {1 Forced-branch execution} *)

val force_all : bool -> int -> bool option
(** [force_all v] pins every measurement outcome to [v] — with [true] every
    MBU correction block runs, with [false] none does. *)

val branch_arms : Circuit.t -> (int * bool) list
(** The distinct [(bit, value)] guards of every [If_bit] in the circuit,
    in program order. *)

type coverage = {
  arms : (int * bool) list;
  uncovered : (int * bool * bool) list;
      (** [(bit, value, taken)] combinations never driven *)
  correct_on_true : bool;  (** all-outcomes-1 run classified [Correct] *)
  correct_on_false : bool;  (** all-outcomes-0 run classified [Correct] *)
  correct_on_targeted : bool;
      (** every targeted run for a nested arm classified [Correct] *)
}

val check_forced_branches : ?engine:Sim.engine -> spec -> coverage
(** Run the spec twice — all outcomes forced to 1, then to 0 — recording
    which [(bit, value, taken)] combinations fire. For every top-level
    guard one run takes the block and the other skips it; arms nested
    inside another conditional's body are then chased with targeted runs
    (the arm's bit overridden against a uniform base) until coverage stops
    growing. [uncovered = []] means both arms of every conditional were
    driven; the [correct_*] flags assert the oracle held on every forced
    run that drove an arm. *)

val covered : coverage -> bool
(** [uncovered = []] and every forced run was [Correct]. *)
