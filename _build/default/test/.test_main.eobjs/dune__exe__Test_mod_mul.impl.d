test/test_mod_mul.ml: Alcotest Array Builder Circuit Complex Counts Helpers List Mbu_circuit Mbu_core Mbu_simulator Mod_add Mod_mul Printf Register Sim State
