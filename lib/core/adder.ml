open Mbu_circuit

type style = Vbe | Cdkpm | Gidney | Draper

let all_styles = [ Vbe; Cdkpm; Gidney; Draper ]

let style_name = function
  | Vbe -> "vbe"
  | Cdkpm -> "cdkpm"
  | Gidney -> "gidney"
  | Draper -> "draper"

(* Wrap an emission in a shared span named after the subroutine and the
   adder style, e.g. "adder.add[gidney]" — the unit of attribution that
   [Trace.profile] reports on. Sharing means a loop that emits the same op
   on the same wires (the LIFO ancilla pool keeps wire numbers stable
   across iterations, and constant addends enter through X/CNOT load
   layers outside the inner add) interns the block once and every later
   iteration is an O(1) reference. *)
let spanned b name style f =
  Builder.with_shared b (Printf.sprintf "%s[%s]" name (style_name style)) f

(* All four plain adders implement y <- (x + y) mod 2^(n+1) even when the
   most significant qubit of y starts dirty: the top carry is XORed into y_n
   rather than assumed zero. The subtraction and comparator constructions
   below rely on this. *)
let add style b ~x ~y =
  spanned b "adder.add" style @@ fun () ->
  match style with
  | Vbe -> Adder_vbe.add b ~x ~y
  | Cdkpm -> Adder_cdkpm.add b ~x ~y
  | Gidney -> Adder_gidney.add b ~x ~y
  | Draper -> Adder_draper.add b ~x ~y

let is_unitary_style = function Vbe | Cdkpm | Draper -> true | Gidney -> false

let complement_register b y =
  Array.iter (fun q -> Builder.x b q) (Register.qubits y)

(* Theorem 2.22, circuit (8): y - x = NOT (NOT y + x). *)
let sub_via_complement style b ~x ~y =
  complement_register b y;
  add style b ~x ~y;
  complement_register b y

let sub style b ~x ~y =
  spanned b "adder.sub" style @@ fun () ->
  if is_unitary_style style then Builder.emit_adjoint b (fun () -> add style b ~x ~y)
  else sub_via_complement style b ~x ~y

(* ------------------------------------------------------------------ *)
(* Constant loading *)

let check_const name ~a reg =
  let n = Register.length reg in
  if a < 0 || (n < 62 && a lsr n <> 0) then
    invalid_arg (Printf.sprintf "%s: constant %d does not fit %d qubits" name a n)

(* Load layers are anonymous shared blocks: every constant op emits its
   load twice (loads are self-inverse X/CNOT layers), and a product loop's
   add/compare pair loads the same addend four times onto pool-stable
   wires, so interning collapses them to one node each. *)
let load_const b ~a reg =
  check_const "Adder.load_const" ~a reg;
  Builder.shared b @@ fun () ->
  for i = 0 to Register.length reg - 1 do
    if (a lsr i) land 1 = 1 then Builder.x b (Register.get reg i)
  done

let load_const_controlled b ~ctrl ~a reg =
  check_const "Adder.load_const_controlled" ~a reg;
  Builder.shared b @@ fun () ->
  for i = 0 to Register.length reg - 1 do
    if (a lsr i) land 1 = 1 then
      Builder.cnot b ~control:ctrl ~target:(Register.get reg i)
  done

(* ------------------------------------------------------------------ *)
(* Controlled addition *)

type controlled_impl = Native | Load_toffoli | Load_and_mbu

let with_loaded_addend b ~load ~unload n f =
  Builder.with_ancilla_register b "cx" n (fun cx ->
      load cx;
      f cx;
      unload cx)

let add_controlled_load_toffoli style b ~ctrl ~x ~y =
  let n = Register.length x in
  let load cx =
    for i = 0 to n - 1 do
      Builder.toffoli b ~c1:ctrl ~c2:(Register.get x i) ~target:(Register.get cx i)
    done
  in
  with_loaded_addend b ~load ~unload:load n (fun cx -> add style b ~x:cx ~y)

let add_controlled_load_and_mbu style b ~ctrl ~x ~y =
  let n = Register.length x in
  let load cx =
    for i = 0 to n - 1 do
      Logical_and.compute b ~c1:ctrl ~c2:(Register.get x i)
        ~target:(Register.get cx i)
    done
  and unload cx =
    for i = n - 1 downto 0 do
      Logical_and.uncompute b ~c1:ctrl ~c2:(Register.get x i)
        ~target:(Register.get cx i)
    done
  in
  with_loaded_addend b ~load ~unload n (fun cx -> add style b ~x:cx ~y)

let add_controlled ?(impl = Native) style b ~ctrl ~x ~y =
  spanned b "adder.cadd" style @@ fun () ->
  match impl, style with
  | Load_toffoli, _ -> add_controlled_load_toffoli style b ~ctrl ~x ~y
  | Load_and_mbu, _ -> add_controlled_load_and_mbu style b ~ctrl ~x ~y
  | Native, Cdkpm -> Adder_cdkpm.add_controlled b ~ctrl ~x ~y
  | Native, Gidney -> Adder_gidney.add_controlled b ~ctrl ~x ~y
  | Native, Draper -> Adder_draper.add_controlled b ~ctrl ~x ~y
  | Native, Vbe ->
      (* VBE has no bespoke controlled adder; corollary 2.10 is the cheapest
         generic construction. *)
      add_controlled_load_and_mbu Vbe b ~ctrl ~x ~y

(* The complement identity also inverts a controlled addition:
   NOT (NOT y + c.x) = y - c.x, and reduces to the identity when c = 0. *)
let sub_controlled style b ~ctrl ~x ~y =
  spanned b "adder.csub" style @@ fun () ->
  complement_register b y;
  add_controlled style b ~ctrl ~x ~y;
  complement_register b y

(* ------------------------------------------------------------------ *)
(* Constants *)

let add_const style b ~a ~y =
  spanned b "adder.add_const" style @@ fun () ->
  let n = Register.length y - 1 in
  match style with
  | Draper -> Adder_draper.add_const b ~a ~y
  | Vbe | Cdkpm | Gidney ->
      Builder.with_ancilla_register b "ka" n (fun ka ->
          check_const "Adder.add_const" ~a ka;
          load_const b ~a ka;
          add style b ~x:ka ~y;
          load_const b ~a ka)

let sub_const style b ~a ~y =
  spanned b "adder.sub_const" style @@ fun () ->
  let n = Register.length y - 1 in
  match style with
  | Draper ->
      Qft.apply b y;
      Adder_draper.phi_sub_const b ~a ~phi_y:y;
      Qft.apply_inverse b y
  | Vbe | Cdkpm ->
      Builder.with_ancilla_register b "ka" n (fun ka ->
          check_const "Adder.sub_const" ~a ka;
          load_const b ~a ka;
          sub style b ~x:ka ~y;
          load_const b ~a ka)
  | Gidney ->
      Builder.with_ancilla_register b "ka" n (fun ka ->
          check_const "Adder.sub_const" ~a ka;
          load_const b ~a ka;
          sub_via_complement Gidney b ~x:ka ~y;
          load_const b ~a ka)

let add_const_controlled style b ~ctrl ~a ~y =
  spanned b "adder.cadd_const" style @@ fun () ->
  let n = Register.length y - 1 in
  match style with
  | Draper -> Adder_draper.add_const_controlled b ~ctrl ~a ~y
  | Vbe | Cdkpm | Gidney ->
      Builder.with_ancilla_register b "ka" n (fun ka ->
          check_const "Adder.add_const_controlled" ~a ka;
          load_const_controlled b ~ctrl ~a ka;
          add style b ~x:ka ~y;
          load_const_controlled b ~ctrl ~a ka)

let sub_const_controlled style b ~ctrl ~a ~y =
  spanned b "adder.csub_const" style @@ fun () ->
  let n = Register.length y - 1 in
  match style with
  | Draper ->
      Qft.apply b y;
      Adder_draper.c_phi_sub_const b ~ctrl ~a ~phi_y:y;
      Qft.apply_inverse b y
  | Vbe | Cdkpm | Gidney ->
      Builder.with_ancilla_register b "ka" n (fun ka ->
          check_const "Adder.sub_const_controlled" ~a ka;
          load_const_controlled b ~ctrl ~a ka;
          (if is_unitary_style style then
             Builder.emit_adjoint b (fun () -> add style b ~x:ka ~y)
           else sub_via_complement style b ~x:ka ~y);
          load_const_controlled b ~ctrl ~a ka)

(* ------------------------------------------------------------------ *)
(* Comparators *)

let compare style b ~x ~y ~target =
  spanned b "adder.compare" style @@ fun () ->
  match style with
  | Vbe -> Adder_vbe.compare b ~x ~y ~target
  | Cdkpm -> Adder_cdkpm.compare b ~x ~y ~target
  | Gidney -> Adder_gidney.compare b ~x ~y ~target
  | Draper -> Adder_draper.compare b ~x ~y ~target

(* Proposition 2.25: subtract, read the sign, add back. *)
let compare_generic style b ~x ~y ~target =
  if Register.length x <> Register.length y then
    invalid_arg "Adder.compare_generic: unequal lengths";
  Builder.with_ancilla b (fun sign ->
      let ys = Register.extend y sign in
      sub style b ~x ~y:ys;
      Builder.cnot b ~control:sign ~target;
      add style b ~x ~y:ys)

let compare_controlled style b ~ctrl ~x ~y ~target =
  spanned b "adder.ccompare" style @@ fun () ->
  match style with
  | Cdkpm -> Adder_cdkpm.compare_controlled b ~ctrl ~x ~y ~target
  | Gidney -> Adder_gidney.compare_controlled b ~ctrl ~x ~y ~target
  | Vbe | Draper ->
      (* Generic fallback: compute the comparison into an ancilla, copy it
         out under the control with one Toffoli, then uncompute. *)
      Builder.with_ancilla b (fun t ->
          compare style b ~x ~y ~target:t;
          Builder.toffoli b ~c1:ctrl ~c2:t ~target;
          compare style b ~x ~y ~target:t)

let compare_const style b ~a ~x ~target =
  spanned b "adder.compare_const" style @@ fun () ->
  match style with
  | Draper -> Adder_draper.compare_const b ~a ~x ~target
  | Vbe | Cdkpm | Gidney ->
      (* Proposition 2.34: load a, then 1[x < a] = 1[a > x]. *)
      Builder.with_ancilla_register b "kc" (Register.length x) (fun ka ->
          check_const "Adder.compare_const" ~a ka;
          load_const b ~a ka;
          compare style b ~x:ka ~y:x ~target;
          load_const b ~a ka)

(* Theorem 2.35: sign of x - a is 1[x < a]. *)
let compare_const_via_sub style b ~a ~x ~target =
  Builder.with_ancilla b (fun sign ->
      let xs = Register.extend x sign in
      sub_const style b ~a ~y:xs;
      Builder.cnot b ~control:sign ~target;
      add_const style b ~a ~y:xs)

(* Definition 2.37 / theorem 2.38: 1[x < c.a] via a controlled load. *)
let compare_const_controlled style b ~ctrl ~a ~x ~target =
  spanned b "adder.ccompare_const" style @@ fun () ->
  Builder.with_ancilla_register b "kc" (Register.length x) (fun ka ->
      check_const "Adder.compare_const_controlled" ~a ka;
      load_const_controlled b ~ctrl ~a ka;
      compare style b ~x:ka ~y:x ~target;
      load_const_controlled b ~ctrl ~a ka)

let compare_ge_const style b ~a ~x ~target =
  compare_const style b ~a ~x ~target;
  Builder.x b target

let add_mod style b ~x ~y =
  spanned b "adder.add_mod" style @@ fun () ->
  match style with
  | Vbe -> Adder_vbe.add_mod b ~x ~y
  | Cdkpm -> Adder_cdkpm.add_mod b ~x ~y
  | Gidney -> Adder_gidney.add_mod b ~x ~y
  | Draper -> Adder_draper.add_mod b ~x ~y

let add_const_mod style b ~a ~y =
  spanned b "adder.add_const_mod" style @@ fun () ->
  let m = Register.length y in
  match style with
  | Draper ->
      Qft.apply b y;
      Adder_draper.phi_add_const b ~a ~phi_y:y;
      Qft.apply_inverse b y
  | Vbe | Cdkpm | Gidney ->
      Builder.with_ancilla_register b "km" m (fun ka ->
          check_const "Adder.add_const_mod" ~a ka;
          load_const b ~a ka;
          add_mod style b ~x:ka ~y;
          load_const b ~a ka)

let add_const_mod_controlled style b ~ctrl ~a ~y =
  spanned b "adder.cadd_const_mod" style @@ fun () ->
  let m = Register.length y in
  match style with
  | Draper ->
      Qft.apply b y;
      Adder_draper.c_phi_add_const b ~ctrl ~a ~phi_y:y;
      Qft.apply_inverse b y
  | Vbe | Cdkpm | Gidney ->
      Builder.with_ancilla_register b "km" m (fun ka ->
          check_const "Adder.add_const_mod_controlled" ~a ka;
          load_const_controlled b ~ctrl ~a ka;
          add_mod style b ~x:ka ~y;
          load_const_controlled b ~ctrl ~a ka)

(* Theorem 2.22, circuit (9): y + twos_complement(x) = y - x. The addend
   register is zero-extended so its 2's complement spans n+1 bits, then
   restored by the complementary decrement. *)
let sub_via_twos_complement style b ~x ~y =
  Builder.with_ancilla b (fun pad ->
      let xs = Register.extend x pad in
      complement_register b xs;
      Increment.apply b xs;
      add_mod style b ~x:xs ~y;
      Increment.apply_decrement b xs;
      complement_register b xs)

(* Remark 2.32: an (n+1)-bit y exceeds any n-bit x whenever its top bit is
   set, so the copy-out gains a NOT-y_top control — a controlled comparator
   on the low bits. *)
let compare_unequal style b ~x ~y ~target =
  let n = Register.length x in
  if Register.length y <> n + 1 then
    invalid_arg "Adder.compare_unequal: length y <> length x + 1";
  let y_low = Register.sub y ~pos:0 ~len:n in
  let y_top = Register.get y n in
  Builder.x b y_top;
  compare_controlled style b ~ctrl:y_top ~x ~y:y_low ~target;
  Builder.x b y_top
