(** Bench-regression gate: diff a fresh [BENCH_*.json] against a committed
    baseline with per-metric directional thresholds, render a delta table,
    and report regressions for the CLI to turn into a non-zero exit. *)

(** {1 Minimal JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse : string -> json
(** Raises {!Parse_error} on malformed input. *)

val parse_result : string -> (json, string) result
val member : string -> json -> json option

val workload : json -> string option
(** The top-level ["workload"] string, used to pair a result file with
    the experiment that regenerates it. *)

val flatten : json -> (string * float) list
(** Dotted-path numeric view of a bench document. Array elements carrying
    a ["row"]/["family"] field are keyed by that label (plus ["@<n>"]
    when an ["n"] field disambiguates repeats), so rows compare by
    identity rather than position. Booleans map to 0/1; strings are
    dropped. *)

(** {1 Threshold policy} *)

type direction =
  | Higher_worse
  | Lower_worse
  | Exact  (** deterministic metric: any change is a regression *)
  | Info  (** reported, never gates *)

type rule = { dir : direction; tol : float; abs_floor : float }

val rule_for : string -> rule
(** Policy keyed on the final path segment: [_ms] latencies gate
    higher-is-worse with a wide band and a 25 ms absolute floor,
    [_per_sec]/speedups gate lower-is-worse, fault classifications and
    gate counts gate exactly, everything else is informational. *)

(** {1 Comparison} *)

type status = Ok_within | Regressed | Improved | Informational | Missing

type delta = {
  key : string;
  baseline : float option;
  current : float option;
  rule : rule;
  status : status;
}

type report = {
  workload_name : string option;
  deltas : delta list;
  regressions : delta list;
      (** deltas with status {!Regressed} or {!Missing} — [Missing] means
          a gated baseline metric vanished from the current run. *)
}

val compare_json : baseline:json -> current:json -> report
val compare_strings : baseline:string -> current:string -> (report, string) result

val render : ?show_info:bool -> report -> string
(** Human-readable delta table plus a one-line verdict. Informational
    rows are hidden unless [show_info]. *)
