type t = { num_qubits : int; num_bits : int; instrs : Instr.t list }

let make ?(validate = true) ?num_qubits ?num_bits instrs =
  (* One fused traversal: gate validation (when requested) and the wire/bit
     maxima come out of the same pass, memoized across shared blocks. *)
  let s = Instr.scan ~validate instrs in
  let min_q = s.Instr.max_qubit + 1 and min_b = s.Instr.max_bit + 1 in
  let num_qubits = Option.value num_qubits ~default:min_q in
  let num_bits = Option.value num_bits ~default:min_b in
  if num_qubits < min_q || num_bits < min_b then
    invalid_arg "Circuit.make: declared width smaller than wires used";
  { num_qubits; num_bits; instrs }

let adjoint c = { c with instrs = Instr.adjoint c.instrs }
let counts ?(mode = Counts.Worst) c = Counts.of_instrs ~mode c.instrs
let num_gates c = Instr.count_instrs c.instrs
let is_unitary c = Instr.is_unitary c.instrs

let append a b =
  { num_qubits = max a.num_qubits b.num_qubits;
    num_bits = max a.num_bits b.num_bits;
    instrs = List.rev_append (List.rev a.instrs) b.instrs }

let pp fmt c =
  Format.fprintf fmt "@[<v>circuit: %d qubits, %d bits@,%a@]" c.num_qubits
    c.num_bits
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Instr.pp)
    c.instrs
