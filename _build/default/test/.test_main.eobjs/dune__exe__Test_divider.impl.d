test/test_divider.ml: Adder Adder_cdkpm Alcotest Builder Divider Helpers List Mbu_circuit Mbu_core Mbu_simulator Mod_add Mod_mul Printf Register Sim
