(* Approximate QFT and the approximate Draper adder: exactness at full
   cutoff, bounded error and reduced counts at logarithmic cutoff. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng

let test_full_cutoff_is_exact () =
  (* cutoff >= m: identical gate sequence to the exact QFT *)
  let m = 5 in
  let build f =
    let b = Builder.create () in
    let r = Builder.fresh_register b "r" m in
    f b r;
    Builder.to_circuit b
  in
  let exact = build (fun b r -> Qft.apply b r) in
  let approx = build (fun b r -> Qft.apply_approx b ~cutoff:m r) in
  Alcotest.(check int) "same gate count" (Circuit.num_gates exact)
    (Circuit.num_gates approx);
  (* and adder exactness *)
  let n = 4 in
  for x_val = 0 to 15 do
    let y_val = (x_val * 7 + 2) land 15 in
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" (n + 1) in
    Adder_draper.add_approx b ~cutoff:(n + 1) ~x ~y;
    let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
    Alcotest.(check int)
      (Printf.sprintf "exact at full cutoff x=%d y=%d" x_val y_val)
      (x_val + y_val)
      (Sim.register_value_exn r.Sim.state y)
  done

let test_truncation_reduces_counts () =
  let n = 24 in
  let cphases cutoff =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" (n + 1) in
    Adder_draper.add_approx b ~cutoff ~x ~y;
    (Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b)).Counts.cphase
  in
  let full = cphases (n + 1) and log_cut = cphases 6 in
  Alcotest.(check bool)
    (Printf.sprintf "O(n log n) vs O(n^2): %.0f < %.0f / 2" log_cut full)
    true
    (log_cut < full /. 2.)

let test_bounded_error () =
  (* at cutoff ~ log n + 3, the approximate adder output has fidelity close
     to 1 with the ideal sum state *)
  let n = 6 in
  let cutoff = 6 in
  let worst = ref 1.0 in
  for trial = 1 to 10 do
    let x_val = (trial * 11) land ((1 lsl n) - 1) in
    let y_val = (trial * 23) land ((1 lsl n) - 1) in
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" (n + 1) in
    Adder_draper.add_approx b ~cutoff ~x ~y;
    let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
    let expected =
      Sim.init_registers
        ~num_qubits:(State.num_qubits r.Sim.state)
        [ (x, x_val); (y, x_val + y_val) ]
    in
    let f = State.fidelity r.Sim.state expected in
    if f < !worst then worst := f
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst fidelity %.4f > 0.95" !worst)
    true (!worst > 0.95)

let test_error_grows_as_cutoff_shrinks () =
  let n = 6 in
  let fidelity_at cutoff =
    let x_val = 45 and y_val = 27 in
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" (n + 1) in
    Adder_draper.add_approx b ~cutoff ~x ~y;
    let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
    let expected =
      Sim.init_registers
        ~num_qubits:(State.num_qubits r.Sim.state)
        [ (x, x_val); (y, x_val + y_val) ]
    in
    State.fidelity r.Sim.state expected
  in
  let f_tight = fidelity_at 2 and f_loose = fidelity_at 6 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone-ish: f(2)=%.4f <= f(6)=%.4f" f_tight f_loose)
    true
    (f_tight <= f_loose +. 1e-9 && f_loose > 0.95)

let suite =
  ( "aqft",
    [ Alcotest.test_case "full cutoff is exact" `Quick test_full_cutoff_is_exact;
      Alcotest.test_case "truncation reduces counts" `Quick
        test_truncation_reduces_counts;
      Alcotest.test_case "bounded error at log cutoff" `Quick test_bounded_error;
      Alcotest.test_case "error vs cutoff" `Quick test_error_grows_as_cutoff_shrinks ] )
