(* Tests for the sparse state-vector simulator. *)

open Mbu_circuit
open Mbu_simulator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let rng () = Random.State.make [| 42 |]

let run_gates ~num_qubits ~init gates =
  let c = Circuit.make ~num_qubits (List.map (fun g -> Instr.Gate g) gates) in
  (Sim.run ~rng:(rng ()) c ~init:(State.basis ~num_qubits init)).Sim.state

let classical_exn st =
  match State.classical_value st with
  | Some v -> v
  | None -> Alcotest.fail "state not classical"

let test_x_cnot_toffoli () =
  let st = run_gates ~num_qubits:3 ~init:0b001 [ Gate.X 1 ] in
  check_int "X" 0b011 (classical_exn st);
  let st = run_gates ~num_qubits:3 ~init:0b001 [ Gate.Cnot { control = 0; target = 2 } ] in
  check_int "CNOT fires" 0b101 (classical_exn st);
  let st = run_gates ~num_qubits:3 ~init:0b010 [ Gate.Cnot { control = 0; target = 2 } ] in
  check_int "CNOT idle" 0b010 (classical_exn st);
  let st = run_gates ~num_qubits:3 ~init:0b011 [ Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ] in
  check_int "Toffoli fires" 0b111 (classical_exn st);
  let st = run_gates ~num_qubits:3 ~init:0b001 [ Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ] in
  check_int "Toffoli idle" 0b001 (classical_exn st)

let test_swap () =
  let st = run_gates ~num_qubits:2 ~init:0b01 [ Gate.Swap (0, 1) ] in
  check_int "swap" 0b10 (classical_exn st)

let test_h_creates_superposition () =
  let st = run_gates ~num_qubits:1 ~init:0 [ Gate.H 0 ] in
  check_int "two terms" 2 (State.num_terms st);
  check_float "balanced" 0.5 (State.prob_bit_one st 0)

let test_hh_is_identity () =
  let st = run_gates ~num_qubits:1 ~init:1 [ Gate.H 0; Gate.H 0 ] in
  check_int "HH = id" 1 (classical_exn st);
  check_float "norm" 1.0 (State.norm st)

let test_hzh_is_x () =
  let st = run_gates ~num_qubits:1 ~init:0 [ Gate.H 0; Gate.Z 0; Gate.H 0 ] in
  check_int "HZH = X" 1 (classical_exn st)

let test_phase_gate () =
  (* S gate twice = Z: |+> -> HZ|+> = |1> after H *)
  let st =
    run_gates ~num_qubits:1 ~init:0
      [ Gate.H 0; Gate.Phase (0, Phase.theta 2); Gate.Phase (0, Phase.theta 2); Gate.H 0 ]
  in
  check_int "H S S H = X" 1 (classical_exn st)

let test_cz_phase_kickback () =
  (* |+>|1> --CZ--> |->|1>; then H gives |1>|1> *)
  let st =
    run_gates ~num_qubits:2 ~init:0b10 [ Gate.H 0; Gate.Cz (0, 1); Gate.H 0 ]
  in
  check_int "cz kickback" 0b11 (classical_exn st)

let test_cphase_unitary () =
  (* Controlled-theta_1 = CZ. *)
  let via_cz = run_gates ~num_qubits:2 ~init:0b10 [ Gate.H 0; Gate.Cz (0, 1); Gate.H 0 ] in
  let via_cp =
    run_gates ~num_qubits:2 ~init:0b10
      [ Gate.H 0;
        Gate.Cphase { control = 0; target = 1; phase = Phase.theta 1 };
        Gate.H 0 ]
  in
  check_float "same state" 1.0 (State.fidelity via_cz via_cp)

let test_measure_deterministic () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Builder.x b q;
  let bit = Builder.measure b q in
  ignore bit;
  let r = Sim.run_builder ~rng:(rng ()) b ~inits:[] in
  check_bool "measured 1" true r.Sim.bits.(0)

let test_measure_statistics () =
  (* H then measure: outcome should be ~50/50 over many runs. *)
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Builder.h b q;
  ignore (Builder.measure b q);
  let c = Builder.to_circuit b in
  let rng = rng () in
  let ones = ref 0 in
  let shots = 2000 in
  for _ = 1 to shots do
    let r = Sim.run ~rng c ~init:(State.basis ~num_qubits:1 0) in
    if r.Sim.bits.(0) then incr ones
  done;
  let f = float_of_int !ones /. float_of_int shots in
  check_bool "roughly balanced" true (f > 0.45 && f < 0.55)

let test_measure_reset () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Builder.x b q;
  ignore (Builder.measure ~reset:true b q);
  let r = Sim.run_builder ~rng:(rng ()) b ~inits:[] in
  check_bool "outcome 1" true r.Sim.bits.(0);
  check_int "reset to zero" 0 (classical_exn r.Sim.state)

let test_conditional_execution () =
  let b = Builder.create () in
  let q0 = Builder.fresh_qubit b and q1 = Builder.fresh_qubit b in
  Builder.x b q0;
  let bit = Builder.measure b q0 in
  Builder.if_bit b bit (fun () -> Builder.x b q1);
  Builder.if_bit ~value:false b bit (fun () -> Builder.x b q0);
  let r = Sim.run_builder ~rng:(rng ()) b ~inits:[] in
  check_int "taken branch flipped q1, untaken skipped" 0b11
    (classical_exn r.Sim.state);
  (* executed counts include only the taken branch *)
  check_float "executed X" 2. r.Sim.executed.Counts.x

let test_register_io () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 4 in
  let y = Builder.fresh_register b "y" 4 in
  (* copy x into y with CNOTs *)
  for i = 0 to 3 do
    Builder.cnot b ~control:(Register.get x i) ~target:(Register.get y i)
  done;
  let r = Sim.run_builder ~rng:(rng ()) b ~inits:[ (x, 11) ] in
  check_int "x kept" 11 (Sim.register_value_exn r.Sim.state x);
  check_int "y copied" 11 (Sim.register_value_exn r.Sim.state y);
  check_bool "no stray wires" true (Sim.wires_zero r.Sim.state ~except:[ x; y ])

let test_wires_zero_detects_garbage () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 2 in
  let a = Builder.alloc_ancilla b in
  Builder.x b a;
  Builder.free_ancilla b a;
  let r = Sim.run_builder ~rng:(rng ()) b ~inits:[ (x, 0) ] in
  check_bool "garbage detected" false (Sim.wires_zero r.Sim.state ~except:[ x ])

let test_qft_period () =
  (* QFT_3 |0> = uniform superposition; all probabilities 1/8. *)
  let b = Builder.create () in
  let r = Builder.fresh_register b "r" 3 in
  (* textbook QFT: H + controlled rotations per qubit *)
  for i = 2 downto 0 do
    Builder.h b (Register.get r i);
    for j = i - 1 downto 0 do
      Builder.cphase b ~control:(Register.get r j) ~target:(Register.get r i)
        (Phase.theta (i - j + 1))
    done
  done;
  let res = Sim.run_builder ~rng:(rng ()) b ~inits:[ (r, 0) ] in
  check_int "8 terms" 8 (State.num_terms res.Sim.state);
  check_float "norm 1" 1.0 (State.norm res.Sim.state)

(* Regression: the seed's set_bit_zero routed the non-bijective clear-bit
   map through [permute], whose Hashtbl.replace silently dropped one of two
   colliding amplitudes on a superposed, un-projected state. The linear map
   |x> -> |x land ~bit> must accumulate them instead. *)
let test_set_bit_zero_accumulates () =
  let a = 1.0 /. sqrt 2.0 in
  let amp re : Complex.t = { re; im = 0. } in
  let s =
    State.of_alist ~num_qubits:2 [ (0b01, amp a); (0b11, amp a) ]
  in
  let cleared = State.set_bit_zero s ~qubit:1 in
  (match State.to_alist cleared with
  | [ (0b01, v) ] ->
      Alcotest.(check (float 1e-9)) "amplitudes accumulated" (2. *. a) v.re
  | l -> Alcotest.failf "expected one term at |01>, got %d terms" (List.length l));
  (* the pure operation must not mutate its argument *)
  check_int "original untouched" 2 (State.num_terms s)

let test_set_bit_zero_classical_track () =
  let s = State.basis ~num_qubits:3 0b101 in
  let cleared = State.set_bit_zero s ~qubit:2 in
  check_int "cleared" 0b001 (classical_exn cleared);
  check_bool "still classical" true (State.is_classical cleared)

(* Regression: Sim.run without ?rng used to draw from one shared lazy
   global, so results depended on how many unseeded runs happened before.
   Now every unseeded run gets its own freshly seeded generator. *)
let test_default_rng_isolation () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Builder.h b q;
  ignore (Builder.measure b q);
  let c = Builder.to_circuit b in
  let init = State.basis ~num_qubits:1 0 in
  let r1 = Sim.run c ~init in
  (* interleave other unseeded work that would have perturbed the global *)
  for _ = 1 to 5 do
    ignore (Sim.run c ~init)
  done;
  let r2 = Sim.run c ~init in
  check_bool "unseeded runs reproducible" true (r1.Sim.bits = r2.Sim.bits)

(* Regression: init_registers skipped the value-fits-register check for
   n >= 62 because [1 lsl n] would overflow; the shift-based guard validates
   wide registers too. *)
let test_init_registers_wide_guard () =
  let b = Builder.create () in
  let r = Builder.fresh_register b "r" 62 in
  let st = Sim.init_registers ~num_qubits:62 [ (r, max_int) ] in
  check_int "62-bit round trip" max_int (Sim.register_value_exn st r);
  let check_rejected name ~register f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Mbu_error.Error")
    | exception Mbu_error.Error e ->
        Alcotest.(check string) (name ^ " subsystem") "Sim.init_registers"
          e.Mbu_error.subsystem;
        Alcotest.(check (option string)) (name ^ " register") (Some register)
          e.Mbu_error.register
  in
  check_rejected "negative rejected (wide)" ~register:"r" (fun () ->
      ignore (Sim.init_registers ~num_qubits:62 [ (r, -1) ]));
  let b2 = Builder.create () in
  let s = Builder.fresh_register b2 "s" 3 in
  check_rejected "oversize rejected (narrow)" ~register:"s" (fun () ->
      ignore (Sim.init_registers ~num_qubits:3 [ (s, 8) ]))

(* The classical track: permutation and diagonal gates keep a basis state
   on the int representation; H promotes to sparse and recombination
   demotes back; force_sparse pins the sparse kernel. *)
let test_classical_track_promotion () =
  let s = State.basis ~num_qubits:3 0b001 in
  check_bool "basis is classical" true (State.is_classical s);
  let s =
    List.fold_left State.apply_gate s
      [ Gate.X 1; Gate.Cnot { control = 0; target = 2 };
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 }; Gate.Swap (0, 1);
        Gate.Z 1; Gate.Phase (1, Phase.theta 2) ]
  in
  check_bool "permutation/diagonal stay classical" true (State.is_classical s);
  let s = State.apply_gate s (Gate.H 0) in
  check_bool "H promotes to sparse" false (State.is_classical s);
  check_int "two terms" 2 (State.num_terms s);
  let s = State.apply_gate s (Gate.H 0) in
  check_bool "HH demotes back to classical" true (State.is_classical s);
  let pinned = State.copy s in
  State.force_sparse pinned;
  let pinned = State.apply_gate (State.apply_gate pinned (Gate.H 0)) (Gate.H 0) in
  check_bool "pinned state never demotes" false (State.is_classical pinned);
  check_float "pinned state still exact" 1.0 (State.fidelity s pinned)

let test_run_does_not_mutate_init () =
  let c = Circuit.make ~num_qubits:2 [ Instr.Gate (Gate.X 0) ] in
  let init = State.basis ~num_qubits:2 0 in
  let r = Sim.run ~rng:(rng ()) c ~init in
  check_int "run output" 1 (classical_exn r.Sim.state);
  check_int "init untouched" 0 (classical_exn init)

let test_fidelity_global_phase () =
  let plus = run_gates ~num_qubits:1 ~init:0 [ Gate.H 0 ] in
  let minus_global =
    run_gates ~num_qubits:1 ~init:0 [ Gate.X 0; Gate.Z 0; Gate.X 0; Gate.H 0 ]
  in
  (* X Z X = -Z applied to |0> gives -|0>; global phase only *)
  check_float "global phase ignored" 1.0 (State.fidelity plus minus_global)

let suite =
  ( "simulator",
    [ Alcotest.test_case "x/cnot/toffoli" `Quick test_x_cnot_toffoli;
      Alcotest.test_case "swap" `Quick test_swap;
      Alcotest.test_case "h superposition" `Quick test_h_creates_superposition;
      Alcotest.test_case "hh identity" `Quick test_hh_is_identity;
      Alcotest.test_case "hzh = x" `Quick test_hzh_is_x;
      Alcotest.test_case "phase gate" `Quick test_phase_gate;
      Alcotest.test_case "cz kickback" `Quick test_cz_phase_kickback;
      Alcotest.test_case "cphase theta1 = cz" `Quick test_cphase_unitary;
      Alcotest.test_case "deterministic measurement" `Quick test_measure_deterministic;
      Alcotest.test_case "measurement statistics" `Quick test_measure_statistics;
      Alcotest.test_case "measure and reset" `Quick test_measure_reset;
      Alcotest.test_case "conditional execution" `Quick test_conditional_execution;
      Alcotest.test_case "register io" `Quick test_register_io;
      Alcotest.test_case "wires_zero detects garbage" `Quick
        test_wires_zero_detects_garbage;
      Alcotest.test_case "qft uniform" `Quick test_qft_period;
      Alcotest.test_case "set_bit_zero accumulates collisions" `Quick
        test_set_bit_zero_accumulates;
      Alcotest.test_case "set_bit_zero on classical track" `Quick
        test_set_bit_zero_classical_track;
      Alcotest.test_case "default rng isolated per run" `Quick
        test_default_rng_isolation;
      Alcotest.test_case "init_registers validates wide registers" `Quick
        test_init_registers_wide_guard;
      Alcotest.test_case "classical track promotion/demotion" `Quick
        test_classical_track_promotion;
      Alcotest.test_case "run copies its init" `Quick
        test_run_does_not_mutate_init;
      Alcotest.test_case "fidelity ignores global phase" `Quick
        test_fidelity_global_phase ] )
