lib/core/formulas.mli:
