(* Failure injection: deliberately break the MBU phase corrections and
   check that the superposition-fidelity harness catches each break. This
   guards the guards — a test suite whose phase checks silently passed on
   broken circuits would be worthless. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

(* A sabotaged logical-AND erasure: measures but never applies the
   conditional CZ. On a superposed input this leaves a random relative
   phase. *)
let broken_and_uncompute b ~target =
  Builder.h b target;
  ignore (Builder.measure ~reset:true b target)

(* Gidney-style adder block with the sabotage: x+y still computes in the
   computational basis, but phases are wrong on superpositions. *)
let sabotaged_gidney_add b ~x ~y =
  let n = Register.length x in
  let xq = Register.get x and yq = Register.get y in
  if n < 2 then invalid_arg "sabotage needs n >= 2";
  let t = Array.init (n - 1) (fun _ -> Builder.alloc_ancilla b) in
  let c i = if i = 0 then None else Some t.(i - 1) in
  let cnot_opt c q = match c with Some w -> Builder.cnot b ~control:w ~target:q | None -> () in
  for i = 0 to n - 2 do
    cnot_opt (c i) (xq i);
    cnot_opt (c i) (yq i);
    Builder.toffoli b ~c1:(xq i) ~c2:(yq i) ~target:t.(i);
    cnot_opt (c i) t.(i)
  done;
  cnot_opt (c (n - 1)) (xq (n - 1));
  cnot_opt (c (n - 1)) (yq (n - 1));
  Builder.toffoli b ~c1:(xq (n - 1)) ~c2:(yq (n - 1)) ~target:(yq n);
  cnot_opt (c (n - 1)) (yq n);
  cnot_opt (c (n - 1)) (xq (n - 1));
  Builder.cnot b ~control:(xq (n - 1)) ~target:(yq (n - 1));
  for i = n - 2 downto 0 do
    cnot_opt (c i) t.(i);
    broken_and_uncompute b ~target:t.(i);
    (* <- sabotage: no CZ *)
    cnot_opt (c i) (xq i);
    Builder.cnot b ~control:(xq i) ~target:(yq i)
  done;
  Array.iter (Builder.free_ancilla b) (Array.init (n - 1) (fun i -> t.(n - 2 - i)))

(* Probability that one run of the sabotaged adder on a superposed input
   produces the phase-perfect state. Each skipped CZ flips a coin; we just
   need to observe at least one bad run. *)
let test_sabotaged_adder_caught () =
  let n = 3 in
  (* classical correctness still holds — the sabotage is invisible to
     basis-state tests, which is the whole point *)
  Helpers.check_adder_exhaustive ~reps:2 ~name:"sabotaged-classical"
    (fun b ~x ~y -> sabotaged_gidney_add b ~x ~y)
    n;
  (* but the superposition check must fail for some run *)
  let bad_run_found = ref false in
  (for trial = 1 to 12 do
     if not !bad_run_found then begin
       let b = Builder.create () in
       let x = Builder.fresh_register b "x" n in
       let y = Builder.fresh_register b "y" (n + 1) in
       Array.iter (fun q -> Builder.h b q) (Register.qubits x);
       sabotaged_gidney_add b ~x ~y;
       (* y starts at 3, so the carries (and hence the AND values whose
          phases the sabotage corrupts) differ across the x branches *)
       let init =
         Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (y, 3) ]
       in
       let r =
         Sim.run ~rng:(Random.State.make [| trial; 99 |]) (Builder.to_circuit b)
           ~init
       in
       let amp : Complex.t = { re = 1.0 /. sqrt 8.0; im = 0.0 } in
       let expected =
         State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
           (List.init 8 (fun v ->
                let idx = ref 0 in
                for k = 0 to n - 1 do
                  if (v lsr k) land 1 = 1 then
                    idx := !idx lor (1 lsl Register.get x k)
                done;
                let s = v + 3 in
                for k = 0 to n do
                  if (s lsr k) land 1 = 1 then
                    idx := !idx lor (1 lsl Register.get y k)
                done;
                (!idx, amp)))
       in
       if State.fidelity r.Sim.state expected < 1. -. 1e-9 then
         bad_run_found := true
     end
   done);
  Alcotest.(check bool) "phase corruption detected" true !bad_run_found

(* Sabotage the MBU lemma itself: drop the U_g call in the outcome-1 branch
   of a modular adder's comparator erasure. *)
let test_sabotaged_mbu_lemma_caught () =
  let n = 3 and p = 7 in
  let build ~sabotage b ~x ~y =
    let open Mbu_circuit in
    Builder.with_ancilla b (fun high ->
        let ys = Register.extend y high in
        Adder_cdkpm.add b ~x ~y:ys;
        Builder.with_ancilla b (fun t ->
            Adder.compare_const Adder.Cdkpm b ~a:p ~x:ys ~target:t;
            Builder.x b t;
            Adder.sub_const_controlled Adder.Cdkpm b ~ctrl:t ~a:p ~y:ys;
            let ug () = Adder_cdkpm.compare b ~x ~y ~target:t in
            if sabotage then begin
              (* broken figure 24: measure, but never run U_g *)
              Builder.h b t;
              let bit = Builder.measure b t in
              Builder.if_bit b bit (fun () ->
                  Builder.h b t;
                  (* ug () missing *)
                  Builder.h b t;
                  Builder.x b t)
            end
            else Mbu.uncompute_bit b ~garbage:t ~ug))
  in
  (* the broken version leaves the comparator bit entangled or the phase
     wrong; detect via a 2-term superposition *)
  let run ~sabotage seed =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    (* superpose x over {1, 5} (bit 2) with bit 0 set *)
    Builder.x b (Register.get x 0);
    Builder.h b (Register.get x 2);
    build ~sabotage b ~x ~y;
    let init = Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (y, 4) ] in
    let r = Sim.run ~rng:(Random.State.make [| seed |]) (Builder.to_circuit b) ~init in
    let amp : Complex.t = { re = 1.0 /. sqrt 2.0; im = 0.0 } in
    let idx x_val y_val =
      let i = ref 0 in
      for k = 0 to n - 1 do
        if (x_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get x k);
        if (y_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get y k)
      done;
      !i
    in
    let expected =
      State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
        [ (idx 1 ((1 + 4) mod p), amp); (idx 5 ((5 + 4) mod p), amp) ]
    in
    State.fidelity r.Sim.state expected
  in
  (* healthy MBU: perfect on every seed *)
  for seed = 1 to 6 do
    Alcotest.(check bool) "healthy mbu exact" true (run ~sabotage:false seed > 1. -. 1e-9)
  done;
  (* sabotaged: at least one seed shows the corruption *)
  let bad = ref false in
  for seed = 1 to 12 do
    if run ~sabotage:true seed < 1. -. 1e-9 then bad := true
  done;
  Alcotest.(check bool) "sabotaged mbu detected" true !bad

let suite =
  ( "failure-injection",
    [ Alcotest.test_case "missing CZ in AND erasure is caught" `Quick
        test_sabotaged_adder_caught;
      Alcotest.test_case "missing U_g in MBU lemma is caught" `Quick
        test_sabotaged_mbu_lemma_caught ] )
