test/helpers.ml: Alcotest Array Builder Complex List Mbu_circuit Mbu_simulator Printf Random Register Sim State
