(** ASCII rendering of small circuits.

    Produces a wire-per-row diagram with ASAP-packed columns, in the spirit
    of the paper's circuit figures. Intended for the examples and the CLI;
    readable up to a couple dozen qubits. Gates inside measurement-
    conditioned blocks are drawn in a column flagged with [?] on the header
    row. *)

val render : ?labels:(int -> string) -> Circuit.t -> string
(** [labels] maps a wire index to a row label (default ["q<i>"]). *)

val render_registers : Register.t list -> Circuit.t -> string
(** Convenience: label wires by register name and bit index. *)
