(** Measurement-based uncomputation (section 4).

    The MBU lemma (lemma 4.1, figure 24): a single-qubit garbage register
    holding [g(x)] entangled with data [sum_x a_x |x>|g(x)>] can be returned
    to |0> by measuring it in the X basis. With probability 1/2 the outcome
    is 0 and nothing more is needed; otherwise a phase [(-1)^{g(x)}] has been
    kicked onto the data and is repaired by one invocation of a self-adjoint
    oracle [U_g] (plus two Hadamards and a NOT). The expensive uncomputation
    circuit therefore runs only half the time, in expectation halving its
    cost. *)

open Mbu_circuit

val uncompute_bit : Builder.t -> garbage:Gate.qubit -> ug:(unit -> unit) -> unit
(** [uncompute_bit b ~garbage ~ug] implements figure 24. [garbage] must hold
    [g(x)]; [ug] must emit a self-adjoint circuit realizing
    [|x>|b> -> |x>|b XOR g(x)>] with [garbage] as the target wire. Afterwards
    [garbage] is |0>. The emitted program is adaptive: [ug] runs inside a
    measurement-conditioned block, so [Counts.Expected 0.5] accounts it at
    half cost, exactly the paper's "in expectation" bookkeeping. *)

val uncompute_bit_direct : Builder.t -> garbage:Gate.qubit -> ug:(unit -> unit) -> unit
(** The non-MBU baseline: just run [ug] (deterministic uncomputation). Kept
    so benchmarks can toggle MBU with one argument. *)

val in_range :
  ?mbu:bool ->
  Adder.style ->
  Builder.t ->
  x:Register.t -> y:Register.t -> z:Register.t -> target:Gate.qubit -> unit
(** Theorem 4.13 (two-sided comparator):
    [target XOR= 1\[y < x AND x < z\]] with all three registers restored.
    With [mbu] (default true) the intermediate [1\[y < x\]] bit is erased by
    MBU, saving a quarter of the comparator cost in expectation. *)
