(* Resource accounting against the paper's formulas: leading coefficients of
   the Toffoli counts (table 1, tables 2-6 already spot-checked in
   test_adders), the MBU savings, and Monte-Carlo validation that the
   "in expectation" numbers are the true mean over measurement outcomes. *)

open Mbu_circuit
open Mbu_core

let check_float = Alcotest.(check (float 1e-6))

(* Toffoli count of a modular adder at width n under expected accounting. *)
let modadd_toffoli ~mbu build n =
  let r =
    Resources.measure ~n
      ~build:(fun b ->
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        build ~mbu b ~p:((1 lsl n) - 1) ~x ~y)
      ()
  in
  r.Resources.toffoli

(* Leading coefficient via a two-point fit. *)
let slope f n1 n2 = (f n2 -. f n1) /. float_of_int (n2 - n1)

let test_table1_toffoli_slopes () =
  let cases =
    [ ("cdkpm", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_cdkpm b ~p ~x ~y), 8., 7.);
      ("gidney", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_gidney b ~p ~x ~y), 4., 3.5);
      ("mixed", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_mixed b ~p ~x ~y), 6., 5.5);
      ("vbe5", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_vbe_5adder ~mbu b ~p ~x ~y), 20., 16.);
      ("vbe4", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_vbe_4adder ~mbu b ~p ~x ~y), 16., 14.) ]
  in
  List.iter
    (fun (name, build, plain_slope, mbu_slope) ->
      let f mbu n = modadd_toffoli ~mbu (fun ~mbu b ~p ~x ~y -> build ~mbu b ~p ~x ~y) n in
      check_float (name ^ " toffoli/n without mbu") plain_slope (slope (f false) 8 16);
      check_float (name ^ " toffoli/n with mbu") mbu_slope (slope (f true) 8 16))
    cases

let test_controlled_modadd_slopes () =
  let ctrl_toffoli ~mbu spec n =
    let r =
      Resources.measure ~n
        ~build:(fun b ->
          let c = Builder.fresh_register b "c" 1 in
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" n in
          Mod_add.modadd_controlled ~mbu spec b ~ctrl:(Register.get c 0)
            ~p:((1 lsl n) - 1) ~x ~y)
        ()
    in
    r.Resources.toffoli
  in
  (* props 3.10/3.11, thms 4.8/4.9: 9n+1 -> 8n+0.5 and 5n+1 -> 4.5n+0.5 *)
  check_float "cdkpm controlled slope" 9. (slope (ctrl_toffoli ~mbu:false Mod_add.spec_cdkpm) 8 16);
  check_float "cdkpm controlled+mbu slope" 8. (slope (ctrl_toffoli ~mbu:true Mod_add.spec_cdkpm) 8 16);
  check_float "gidney controlled slope" 5. (slope (ctrl_toffoli ~mbu:false Mod_add.spec_gidney) 8 16);
  check_float "gidney controlled+mbu slope" 4.5 (slope (ctrl_toffoli ~mbu:true Mod_add.spec_gidney) 8 16)

let test_takahashi_slopes () =
  (* prop 3.15 / thm 4.11 with CDKPM subroutines: 6n -> 5n. *)
  let tak ~mbu n =
    let r =
      Resources.measure ~n
        ~build:(fun b ->
          let x = Builder.fresh_register b "x" n in
          Mod_add.modadd_const_takahashi ~mbu Mod_add.spec_cdkpm b
            ~p:((1 lsl n) - 1)
            ~a:((1 lsl (n - 1)) + 1)
            ~x)
        ()
    in
    r.Resources.toffoli
  in
  check_float "takahashi slope" 6. (slope (tak ~mbu:false) 8 16);
  check_float "takahashi+mbu slope" 5. (slope (tak ~mbu:true) 8 16)

let test_mbu_savings_headline () =
  (* The abstract's headline: MBU saves 10-15% Toffoli for VBE-architecture
     modular adders, ~25% for the two-sided comparator. *)
  let n = 16 in
  let saving without with_mbu = (without -. with_mbu) /. without in
  List.iter
    (fun (name, build, lo, hi) ->
      let s =
        saving (modadd_toffoli ~mbu:false build n) (modadd_toffoli ~mbu:true build n)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s saving %.3f in [%.2f, %.2f]" name s lo hi)
        true
        (s >= lo && s <= hi))
    [ ("cdkpm", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_cdkpm b ~p ~x ~y), 0.10, 0.15);
      ("gidney", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_gidney b ~p ~x ~y), 0.10, 0.15);
      ("vbe5", (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_vbe_5adder ~mbu b ~p ~x ~y), 0.15, 0.25) ];
  (* two-sided comparator: 2r+r' = 6n+1 -> 1.5r+r' = 5n+1: ~16% Toffoli, but
     the paper's "almost 25%" counts the savable share of the comparator
     cost; check both the Toffoli saving and the savable-share ratio. *)
  let in_range_toffoli mbu =
    let r =
      Resources.measure ~n
        ~build:(fun b ->
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" n in
          let z = Builder.fresh_register b "z" n in
          let t = Builder.fresh_register b "t" 1 in
          Mbu.in_range ~mbu Adder.Cdkpm b ~x ~y ~z ~target:(Register.get t 0))
        ()
    in
    r.Resources.toffoli
  in
  let s = saving (in_range_toffoli false) (in_range_toffoli true) in
  Alcotest.(check bool)
    (Printf.sprintf "two-sided comparator saving %.3f ~ 1/6" s)
    true
    (s > 0.13 && s < 0.20)

let test_draper_qft_units () =
  let n = 24 in
  let units mbu =
    let r =
      Resources.measure ~n
        ~build:(fun b ->
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" n in
          Mod_add.modadd_draper ~mbu b ~p:((1 lsl n) - 1) ~x ~y)
        ()
    in
    r.Resources.qft_units
  in
  let without = units false and with_mbu = units true in
  (* The paper counts 10 blocks without MBU and 8 with; measured gate
     content is slightly below the block count because the constant-rotation
     blocks are thinner than a full QFT. *)
  Alcotest.(check bool)
    (Printf.sprintf "draper units %.2f in [8.5, 10.5]" without)
    true
    (without > 8.5 && without < 10.5);
  Alcotest.(check bool)
    (Printf.sprintf "draper+mbu units %.2f in [6.5, 8.5]" with_mbu)
    true
    (with_mbu > 6.5 && with_mbu < 8.5);
  let s = (without -. with_mbu) /. without in
  Alcotest.(check bool)
    (Printf.sprintf "draper saving %.3f in [0.15, 0.30]" s)
    true
    (s > 0.15 && s < 0.30)

let test_mbu_reduces_toffoli_depth () =
  let n = 12 in
  let depth mbu =
    let r =
      Resources.measure ~n
        ~build:(fun b ->
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" n in
          Mod_add.modadd ~mbu Mod_add.spec_cdkpm b ~p:((1 lsl n) - 1) ~x ~y)
        ()
    in
    r.Resources.toffoli_depth
  in
  let without = depth false and with_mbu = depth true in
  let s = (without -. with_mbu) /. without in
  Alcotest.(check bool)
    (Printf.sprintf "toffoli depth saving %.3f in [0.05, 0.25]" s)
    true
    (s > 0.05 && s < 0.25)

(* Monte-Carlo: the analytic Expected(1/2) Toffoli count must match the
   empirical mean of executed Toffolis over simulator shots. *)
let test_monte_carlo_matches_expectation () =
  let n = 4 and p = 13 in
  let analytic =
    (Resources.measure ~n
       ~build:(fun b ->
         let x = Builder.fresh_register b "x" n in
         let y = Builder.fresh_register b "y" n in
         Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y)
       ())
      .Resources.toffoli
  in
  let empirical =
    Resources.monte_carlo_toffoli ~shots:1500
      ~build:(fun b ->
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y;
        [ (x, 7); (y, 11) ])
      ()
  in
  let rel = Float.abs (empirical -. analytic) /. analytic in
  Alcotest.(check bool)
    (Printf.sprintf "monte-carlo %.2f vs analytic %.2f (rel %.3f)" empirical
       analytic rel)
    true (rel < 0.05)

(* Formula module self-consistency. *)
let test_formula_table1_consistency () =
  let params = Formulas.{ n = 16; hp = 8; ha = 4 } in
  List.iter
    (fun row ->
      let plain = row.Formulas.t1_cost ~mbu:false params in
      let mbu = row.Formulas.t1_cost ~mbu:true params in
      let le a b = Float.is_nan a || Float.is_nan b || a <= b in
      Alcotest.(check bool)
        (row.Formulas.t1_name ^ ": mbu never costs more")
        true
        (le mbu.Formulas.toffoli plain.Formulas.toffoli
        && le mbu.Formulas.qft_units plain.Formulas.qft_units
        && mbu.Formulas.qubits = plain.Formulas.qubits))
    Formulas.table1

let test_formula_vs_measured_gap () =
  (* Exact O(1) gaps: measured CDKPM modadd = paper formula within 8 gates. *)
  let n = 16 in
  let params = Formulas.{ n; hp = Mbu_bitstring.Bitstring.hamming_weight_int ((1 lsl n) - 1); ha = 0 } in
  List.iter
    (fun mbu ->
      let paper = (Formulas.modadd_cdkpm ~mbu params).Formulas.toffoli in
      let measured =
        modadd_toffoli ~mbu
          (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_cdkpm b ~p ~x ~y)
          n
      in
      Alcotest.(check bool)
        (Printf.sprintf "cdkpm mbu=%b paper %.1f vs measured %.1f" mbu paper measured)
        true
        (Float.abs (paper -. measured) <= 8.))
    [ false; true ]

let suite =
  ( "resources",
    [ Alcotest.test_case "table 1 toffoli slopes" `Quick test_table1_toffoli_slopes;
      Alcotest.test_case "controlled modadd slopes (thms 4.8/4.9)" `Quick
        test_controlled_modadd_slopes;
      Alcotest.test_case "takahashi slopes (thm 4.11)" `Quick test_takahashi_slopes;
      Alcotest.test_case "headline mbu savings" `Quick test_mbu_savings_headline;
      Alcotest.test_case "draper qft units (table 1)" `Quick test_draper_qft_units;
      Alcotest.test_case "mbu reduces toffoli depth" `Quick
        test_mbu_reduces_toffoli_depth;
      Alcotest.test_case "monte-carlo matches expectation" `Quick
        test_monte_carlo_matches_expectation;
      Alcotest.test_case "formula table 1 consistency" `Quick
        test_formula_table1_consistency;
      Alcotest.test_case "formula vs measured gap" `Quick test_formula_vs_measured_gap ] )
