(* Restoring division by a constant, plus the new squaring / windowed
   exponentiation / doubly-controlled constant adder constructions. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let test_divmod_exhaustive () =
  let n = 5 and k = 3 in
  List.iter
    (fun style ->
      List.iter
        (fun d ->
          if d lsl (k - 1) < 1 lsl n then
            for x_val = 0 to (1 lsl n) - 1 do
              if x_val / d < 1 lsl k then begin
                let b = Builder.create () in
                let x = Builder.fresh_register b "x" n in
                let q = Builder.fresh_register b "q" k in
                Divider.divmod_const style b ~d ~x ~quotient:q;
                let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (q, 0) ] in
                let msg =
                  Printf.sprintf "%s d=%d x=%d" (Adder.style_name style) d x_val
                in
                Alcotest.(check int) (msg ^ " rem") (x_val mod d) (value r.Sim.state x);
                Alcotest.(check int) (msg ^ " quot") (x_val / d) (value r.Sim.state q);
                Alcotest.(check bool) (msg ^ " clean") true
                  (Sim.wires_zero r.Sim.state ~except:[ x; q ])
              end
            done)
        [ 1; 3; 5; 7 ])
    [ Adder.Cdkpm; Adder.Gidney ]

let test_divmod_rejects_bad_shapes () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 4 in
  let q = Builder.fresh_register b "q" 4 in
  Alcotest.check_raises "subtrahend overflow"
    (Invalid_argument "Divider.divmod_const: d.2^(k-1) must fit the dividend")
    (fun () -> Divider.divmod_const Adder.Cdkpm b ~d:3 ~x ~quotient:q)

let test_square_register () =
  let n = 3 and p = 7 in
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm in
  for x_val = 0 to p - 1 do
    for t_val = 0 to p - 1 do
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let t = Builder.fresh_register b "t" n in
      Mod_mul.square_register engine b ~x ~p ~target:t;
      let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (t, t_val) ] in
      let msg = Printf.sprintf "x=%d t=%d" x_val t_val in
      Alcotest.(check int) msg
        ((t_val + (x_val * x_val)) mod p)
        (value r.Sim.state t);
      Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x);
      Alcotest.(check bool) (msg ^ " clean") true
        (Sim.wires_zero r.Sim.state ~except:[ x; t ])
    done
  done

let test_modexp_windowed () =
  let n = 3 and p = 7 and a = 3 in
  for e_val = 0 to 3 do
    for x_val = 1 to p - 1 do
      let b = Builder.create () in
      let e = Builder.fresh_register b "e" 2 in
      let x = Builder.fresh_register b "x" n in
      Mod_mul.modexp_windowed ~window:2 Mod_add.spec_cdkpm b ~a ~p ~e ~x;
      let r = Sim.run_builder ~rng b ~inits:[ (e, e_val); (x, x_val) ] in
      let rec pow acc k = if k = 0 then acc else pow (acc * a mod p) (k - 1) in
      let msg = Printf.sprintf "e=%d x=%d" e_val x_val in
      Alcotest.(check int) msg (pow x_val e_val) (value r.Sim.state x);
      Alcotest.(check bool) (msg ^ " clean") true
        (Sim.wires_zero r.Sim.state ~except:[ e; x ])
    done
  done

let test_fig23_double_controlled () =
  let n = 3 and p = 7 in
  for c1v = 0 to 1 do
    for c2v = 0 to 1 do
      for a = 0 to p - 1 do
        let x_val = (a * 2 + 1) mod p in
        let b = Builder.create () in
        let c1 = Builder.fresh_register b "c1" 1 in
        let c2 = Builder.fresh_register b "c2" 1 in
        let x = Builder.fresh_register b "x" n in
        Mod_add.modadd_const_double_controlled_draper ~mbu:true b
          ~ctrl1:(Register.get c1 0) ~ctrl2:(Register.get c2 0) ~p ~a ~x;
        let r =
          Sim.run_builder ~rng b ~inits:[ (c1, c1v); (c2, c2v); (x, x_val) ]
        in
        let msg = Printf.sprintf "c1=%d c2=%d a=%d x=%d" c1v c2v a x_val in
        Alcotest.(check int) msg
          ((x_val + (c1v * c2v * a)) mod p)
          (value r.Sim.state x);
        Alcotest.(check bool) (msg ^ " clean") true
          (Sim.wires_zero r.Sim.state ~except:[ c1; c2; x ])
      done
    done
  done

let test_add_3cnot_variant () =
  List.iter
    (fun n ->
      Helpers.check_adder_exhaustive ~name:"cdkpm-3cnot"
        (fun b ~x ~y -> Adder_cdkpm.add_3cnot b ~x ~y)
        n)
    [ 1; 2; 3 ];
  Helpers.check_adder_superposition ~name:"cdkpm-3cnot"
    (fun b ~x ~y -> Adder_cdkpm.add_3cnot b ~x ~y)
    3 5

let suite =
  ( "divider-extras",
    [ Alcotest.test_case "divmod exhaustive" `Quick test_divmod_exhaustive;
      Alcotest.test_case "divmod rejects bad shapes" `Quick
        test_divmod_rejects_bad_shapes;
      Alcotest.test_case "modular squaring" `Quick test_square_register;
      Alcotest.test_case "windowed modexp" `Quick test_modexp_windowed;
      Alcotest.test_case "fig 23 doubly controlled" `Quick
        test_fig23_double_controlled;
      Alcotest.test_case "3-cnot UMA adder" `Quick test_add_3cnot_variant ] )
