lib/core/adder.mli: Builder Gate Mbu_circuit Register
