(* Peephole optimizer: algebraic unit tests, semantic preservation on random
   adaptive circuits, and the mechanical reproduction of proposition 3.7's
   hand cancellation of adjacent QFT/IQFT pairs. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let gates gs = List.map (fun g -> Instr.Gate g) gs
let count_gates instrs = Instr.count_instrs (Optimize.instrs instrs)

let test_basic_cancellations () =
  Alcotest.(check int) "X X" 0 (count_gates (gates [ Gate.X 0; Gate.X 0 ]));
  Alcotest.(check int) "H H" 0 (count_gates (gates [ Gate.H 0; Gate.H 0 ]));
  Alcotest.(check int) "CNOT CNOT" 0
    (count_gates
       (gates
          [ Gate.Cnot { control = 0; target = 1 };
            Gate.Cnot { control = 0; target = 1 } ]));
  Alcotest.(check int) "Toffoli pair with swapped controls" 0
    (count_gates
       (gates
          [ Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
            Gate.Toffoli { c1 = 1; c2 = 0; target = 2 } ]));
  Alcotest.(check int) "X X with disjoint gate between" 1
    (count_gates (gates [ Gate.X 0; Gate.Z 3; Gate.X 0 ]));
  Alcotest.(check int) "no cancel across shared wire" 3
    (count_gates
       (gates [ Gate.X 0; Gate.Cnot { control = 0; target = 1 }; Gate.X 0 ]))

let test_phase_merging () =
  let p = Phase.theta 3 in
  (match Optimize.instrs (gates [ Gate.Phase (0, p); Gate.Phase (0, p) ]) with
  | [ Instr.Gate (Gate.Phase (0, q)) ] ->
      Alcotest.(check bool) "angles added" true (Phase.equal q (Phase.theta 2))
  | _ -> Alcotest.fail "expected a single merged rotation");
  Alcotest.(check int) "opposite rotations vanish" 0
    (count_gates (gates [ Gate.Phase (0, p); Gate.Phase (0, Phase.neg p) ]));
  Alcotest.(check int) "cphase merge symmetric in wires" 1
    (count_gates
       (gates
          [ Gate.Cphase { control = 0; target = 1; phase = p };
            Gate.Cphase { control = 1; target = 0; phase = p } ]))

let test_qft_iqft_cancels () =
  (* the interleaved-wire sliding must erase the whole pair *)
  let b = Builder.create () in
  let r = Builder.fresh_register b "r" 6 in
  Qft.apply b r;
  Qft.apply_inverse b r;
  let c = Builder.to_circuit b in
  Alcotest.(check int) "QFT IQFT = identity" 0
    (Circuit.num_gates (Optimize.circuit c))

let test_barriers () =
  (* gates must not cancel across a measurement *)
  let instrs =
    [ Instr.Gate (Gate.H 0);
      Instr.Measure { qubit = 0; bit = 0; reset = false };
      Instr.Gate (Gate.H 0) ]
  in
  Alcotest.(check int) "measure is a barrier" 3
    (Instr.count_instrs (Optimize.instrs instrs));
  (* but bodies of conditionals are optimized recursively *)
  let instrs =
    [ Instr.Measure { qubit = 0; bit = 0; reset = false };
      Instr.If_bit
        { bit = 0; value = true;
          body = gates [ Gate.X 1; Gate.X 1; Gate.Z 1 ] } ]
  in
  match Optimize.instrs instrs with
  | [ Instr.Measure _; Instr.If_bit { body = [ Instr.Gate (Gate.Z 1) ]; _ } ] -> ()
  | _ -> Alcotest.fail "conditional body not simplified"

let test_idempotent () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 3 in
  let y = Builder.fresh_register b "y" 3 in
  Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p:7 ~x ~y;
  let c = Builder.to_circuit b in
  let once = Optimize.circuit c in
  let twice = Optimize.circuit once in
  Alcotest.(check int) "idempotent" (Circuit.num_gates once) (Circuit.num_gates twice)

(* Random adaptive circuits: optimization must preserve observable
   behaviour exactly (same measurement outcomes under the same RNG stream,
   same final state up to global phase). *)
let random_circuit rng ~num_qubits ~len =
  let b = Builder.create () in
  let regs = Builder.fresh_register b "q" num_qubits in
  let q () = Register.get regs (Random.State.int rng num_qubits) in
  let distinct2 () =
    let a = q () in
    let rec other () =
      let c = q () in
      if c = a then other () else c
    in
    (a, other ())
  in
  let bits = ref [] in
  for _ = 1 to len do
    match Random.State.int rng 12 with
    | 0 -> Builder.x b (q ())
    | 1 -> Builder.z b (q ())
    | 2 -> Builder.h b (q ())
    | 3 ->
        Builder.phase b (q ())
          (Phase.make ~num:(1 + Random.State.int rng 7) ~log2_den:3)
    | 4 ->
        let c, t = distinct2 () in
        Builder.cnot b ~control:c ~target:t
    | 5 ->
        let a, c = distinct2 () in
        Builder.cz b a c
    | 6 ->
        let a, c = distinct2 () in
        Builder.swap b a c
    | 7 ->
        let c1, c2 = distinct2 () in
        let rec t () =
          let x = q () in
          if x = c1 || x = c2 then t () else x
        in
        if num_qubits >= 3 then Builder.toffoli b ~c1 ~c2 ~target:(t ())
    | 8 ->
        let c, t = distinct2 () in
        Builder.cphase b ~control:c ~target:t
          (Phase.make ~num:(1 + Random.State.int rng 7) ~log2_den:3)
    | 9 -> bits := Builder.measure b (q ()) :: !bits
    | 10 | 11 -> (
        match !bits with
        | [] -> Builder.h b (q ())
        | bit :: _ ->
            Builder.if_bit b bit (fun () ->
                Builder.x b (q ());
                Builder.z b (q ())))
    | _ -> assert false
  done;
  (Builder.to_circuit b, regs)

let test_random_semantic_preservation () =
  let rng = Random.State.make [| 0x09; 0x71 |] in
  for trial = 1 to 60 do
    let num_qubits = 2 + Random.State.int rng 3 in
    let c, _ = random_circuit rng ~num_qubits ~len:(5 + Random.State.int rng 40) in
    let opt = Optimize.circuit c in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: no growth" trial)
      true
      (Circuit.num_gates opt <= Circuit.num_gates c);
    let init = State.basis ~num_qubits (Random.State.int rng (1 lsl num_qubits)) in
    let seed = Random.State.int rng 10000 in
    let run circ = Sim.run ~rng:(Random.State.make [| seed |]) circ ~init in
    let a = run c and b = run opt in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: same outcomes" trial)
      true (a.Sim.bits = b.Sim.bits);
    let f = State.fidelity a.Sim.state b.Sim.state in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: fidelity %.6f" trial f)
      true
      (f > 1. -. 1e-9)
  done

(* Proposition 3.7 mechanically: composing the four Draper-style subroutines
   generically and letting the optimizer cancel adjacent IQFT/QFT pairs must
   approach the hand-fused modadd_draper circuit. *)
let test_prop_3_7_cancellation () =
  let n = 6 and p = 61 in
  let spec_draper =
    Mod_add.{ q_add = Adder.Draper; q_comp_const = Adder.Draper;
              c_q_sub_const = Adder.Draper; q_comp = Adder.Draper }
  in
  let build f =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    f b ~x ~y;
    Builder.to_circuit b
  in
  let generic = build (fun b ~x ~y -> Mod_add.modadd ~mbu:false spec_draper b ~p ~x ~y) in
  let fused = build (fun b ~x ~y -> Mod_add.modadd_draper ~mbu:false b ~p ~x ~y) in
  let units c =
    Counts.qft_units ~m:(n + 1) (Circuit.counts ~mode:Counts.Worst c)
  in
  let before = units generic in
  let after = units (Optimize.circuit generic) in
  let fused_units = units fused in
  Alcotest.(check bool)
    (Printf.sprintf "optimizer cancels QFT pairs: %.2f -> %.2f (fused %.2f)"
       before after fused_units)
    true
    (after < before -. 1.5 && after < fused_units +. 4.);
  (* and the optimized circuit still computes modular addition *)
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  Mod_add.modadd ~mbu:false spec_draper b ~p ~x ~y;
  let opt = Optimize.circuit (Builder.to_circuit b) in
  let init = Sim.init_registers ~num_qubits:opt.Circuit.num_qubits [ (x, 44); (y, 37) ] in
  let r = Sim.run ~rng:(Random.State.make [| 5 |]) opt ~init in
  Alcotest.(check int) "optimized circuit still correct" ((44 + 37) mod p)
    (Sim.register_value_exn r.Sim.state y)

let test_optimizer_on_ripple_adders () =
  (* ripple adders are already irredundant: the optimizer must not break
     them and should find little to remove *)
  List.iter
    (fun style ->
      let n = 4 in
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder.add style b ~x ~y;
      let opt = Optimize.circuit (Builder.to_circuit b) in
      let init = Sim.init_registers ~num_qubits:opt.Circuit.num_qubits [ (x, 11); (y, 13) ] in
      let r = Sim.run ~rng:(Random.State.make [| 3 |]) opt ~init in
      Alcotest.(check int)
        (Adder.style_name style ^ " optimized still adds")
        24
        (Sim.register_value_exn r.Sim.state y))
    Adder.all_styles

let suite =
  ( "optimize",
    [ Alcotest.test_case "basic cancellations" `Quick test_basic_cancellations;
      Alcotest.test_case "phase merging" `Quick test_phase_merging;
      Alcotest.test_case "qft iqft cancels" `Quick test_qft_iqft_cancels;
      Alcotest.test_case "measurement barriers" `Quick test_barriers;
      Alcotest.test_case "idempotent" `Quick test_idempotent;
      Alcotest.test_case "random semantic preservation" `Quick
        test_random_semantic_preservation;
      Alcotest.test_case "prop 3.7 qft cancellation" `Quick
        test_prop_3_7_cancellation;
      Alcotest.test_case "ripple adders survive" `Quick
        test_optimizer_on_ripple_adders ] )
