test/test_pebble.ml: Alcotest Array Builder Circuit Complex Gate Instr List Mbu_circuit Mbu_core Mbu_simulator Pebble Printf Random Register Sim State
