(* Spooky pebble games: legality, cost envelopes, the spooky space-time
   point, and circuit realizations in which ghosts are provably exorcised
   (simulator check on superposed inputs). *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let ok_or_fail name = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let test_strategies_are_legal () =
  List.iter
    (fun m ->
      ok_or_fail "naive" (Pebble.validate ~chain_length:m (Pebble.naive ~chain_length:m));
      ok_or_fail "bennett"
        (Pebble.validate ~chain_length:m (Pebble.bennett ~chain_length:m));
      ok_or_fail "spooky"
        (Pebble.validate ~chain_length:m (Pebble.spooky ~chain_length:m ()));
      ok_or_fail "spooky stride 2"
        (Pebble.validate ~chain_length:m (Pebble.spooky ~stride:2 ~chain_length:m ())))
    [ 1; 2; 3; 5; 8; 16; 33; 64 ]

let test_illegal_strategies_rejected () =
  let reject name strategy =
    match Pebble.validate ~chain_length:4 strategy with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (name ^ " accepted")
  in
  reject "skipping a node" [ Pebble.Pebble 2 ];
  reject "leftover pebble" [ Pebble.Pebble 1; Pebble.Pebble 2; Pebble.Pebble 3; Pebble.Pebble 4 ];
  reject "missing final pebble" [ Pebble.Pebble 1; Pebble.Unpebble 1 ];
  reject "unghost without ghost" [ Pebble.Pebble 1; Pebble.Unghost 1 ];
  reject "unghost without repebble"
    [ Pebble.Pebble 1; Pebble.Pebble 2; Pebble.Measure 1; Pebble.Unghost 1 ];
  reject "leftover ghost"
    [ Pebble.Pebble 1; Pebble.Pebble 2; Pebble.Pebble 3; Pebble.Pebble 4;
      Pebble.Measure 1; Pebble.Unpebble 3; Pebble.Unpebble 2 ]

let test_cost_envelopes () =
  let m = 64 in
  let naive = Pebble.cost ~chain_length:m (Pebble.naive ~chain_length:m) in
  let bennett = Pebble.cost ~chain_length:m (Pebble.bennett ~chain_length:m) in
  let spooky = Pebble.cost ~chain_length:m (Pebble.spooky ~chain_length:m ()) in
  Alcotest.(check int) "naive applications" ((2 * m) - 1) naive.Pebble.applications;
  Alcotest.(check int) "naive space" m naive.Pebble.space;
  (* bennett: 3^log2(m) applications, log2(m)+1 pebbles *)
  Alcotest.(check int) "bennett applications" 729 bennett.Pebble.applications;
  Alcotest.(check bool) "bennett space logarithmic" true (bennett.Pebble.space <= 8);
  (* spooky: linear time at ~2 sqrt(m) space *)
  Alcotest.(check bool)
    (Printf.sprintf "spooky linear time (%d <= 6m)" spooky.Pebble.applications)
    true
    (spooky.Pebble.applications <= 6 * m);
  Alcotest.(check bool)
    (Printf.sprintf "spooky sublinear space (%d <= 2 sqrt m + 3)" spooky.Pebble.space)
    true
    (spooky.Pebble.space <= (2 * 8) + 3);
  Alcotest.(check bool) "spooky beats bennett time" true
    (spooky.Pebble.applications < bennett.Pebble.applications);
  Alcotest.(check bool) "spooky beats naive space" true
    (spooky.Pebble.space < naive.Pebble.space);
  Alcotest.(check bool) "spooky measured something" true
    (spooky.Pebble.measurements > 0 && spooky.Pebble.expected_fixups > 0.)

let test_chain_value () =
  (* f1 = NOT, f2 = id of prev XOR 1? chain entries (a, c): f(v) = a.v XOR c *)
  let chain = [| (true, true); (true, false); (false, true) |] in
  (* x1 = NOT x0; x2 = x1; x3 = 1 *)
  Alcotest.(check bool) "x1(0)" true (Pebble.chain_value chain ~input:false 1);
  Alcotest.(check bool) "x2(0)" true (Pebble.chain_value chain ~input:false 2);
  Alcotest.(check bool) "x3(0)" true (Pebble.chain_value chain ~input:false 3);
  Alcotest.(check bool) "x1(1)" false (Pebble.chain_value chain ~input:true 1);
  Alcotest.(check bool) "x0" true (Pebble.chain_value chain ~input:true 0)

(* Run a compiled strategy on |+> input and check the exact final state:
   sum_v |v>|0...0>|x_m(v)> with flat phases. A missed ghost shows up as a
   relative minus sign and kills the fidelity. *)
let check_strategy_circuit ~name chain strategy =
  let m = Array.length chain in
  let b = Builder.create () in
  let inp = Builder.fresh_register b "in" 1 in
  Builder.h b (Register.get inp 0);
  let nodes = Pebble.compile b ~chain ~input:(Register.get inp 0) strategy in
  let c = Builder.to_circuit b in
  for seed = 1 to 6 do
    let r =
      Sim.run ~rng:(Random.State.make [| seed |]) c
        ~init:(State.basis ~num_qubits:c.Circuit.num_qubits 0)
    in
    let amp : Complex.t = { re = 1.0 /. sqrt 2.0; im = 0.0 } in
    let entry v =
      let idx = ref 0 in
      if v then idx := !idx lor (1 lsl Register.get inp 0);
      if Pebble.chain_value chain ~input:v m then
        idx := !idx lor (1 lsl Register.get nodes (m - 1));
      (!idx, amp)
    in
    let expected =
      State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
        [ entry false; entry true ]
    in
    let f = State.fidelity r.Sim.state expected in
    Alcotest.(check bool)
      (Printf.sprintf "%s seed %d fidelity %.6f" name seed f)
      true
      (f > 1. -. 1e-9)
  done

let test_compiled_strategies () =
  let rng = Random.State.make [| 0x9eb; 0b101 |] in
  for trial = 1 to 8 do
    let m = 2 + Random.State.int rng 7 in
    let chain =
      Array.init m (fun _ -> (Random.State.bool rng, Random.State.bool rng))
    in
    check_strategy_circuit
      ~name:(Printf.sprintf "naive m=%d trial=%d" m trial)
      chain (Pebble.naive ~chain_length:m);
    check_strategy_circuit
      ~name:(Printf.sprintf "bennett m=%d trial=%d" m trial)
      chain (Pebble.bennett ~chain_length:m);
    check_strategy_circuit
      ~name:(Printf.sprintf "spooky m=%d trial=%d" m trial)
      chain
      (Pebble.spooky ~stride:2 ~chain_length:m ())
  done

let test_spooky_phase_actually_matters () =
  (* Sanity check of the test itself: dropping the Unghost fixes must break
     the fidelity for some measurement outcome. We emulate it by compiling a
     strategy whose Unghosts we strip and checking the game rejects it, then
     by verifying the compiled spooky circuit contains conditional Z's. *)
  let m = 4 in
  let spooky = Pebble.spooky ~stride:2 ~chain_length:m () in
  let stripped =
    List.filter (function Pebble.Unghost _ -> false | _ -> true) spooky
  in
  (match Pebble.validate ~chain_length:m stripped with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ghost-stripped strategy accepted");
  let b = Builder.create () in
  let inp = Builder.fresh_register b "in" 1 in
  let chain = Array.init m (fun i -> (true, i mod 2 = 0)) in
  ignore (Pebble.compile b ~chain ~input:(Register.get inp 0) spooky);
  let c = Builder.to_circuit b in
  let conditional_z = ref 0 in
  let rec scan = function
    | [] -> ()
    | Instr.If_bit { body; _ } :: rest ->
        List.iter
          (function Instr.Gate (Gate.Z _) -> incr conditional_z | _ -> ())
          body;
        scan rest
    | _ :: rest -> scan rest
  in
  scan c.Circuit.instrs;
  Alcotest.(check bool) "conditional Z fixups present" true (!conditional_z > 0)

let suite =
  ( "pebble",
    [ Alcotest.test_case "strategies are legal" `Quick test_strategies_are_legal;
      Alcotest.test_case "illegal strategies rejected" `Quick
        test_illegal_strategies_rejected;
      Alcotest.test_case "cost envelopes" `Quick test_cost_envelopes;
      Alcotest.test_case "chain semantics" `Quick test_chain_value;
      Alcotest.test_case "compiled strategies exorcise ghosts" `Quick
        test_compiled_strategies;
      Alcotest.test_case "ghost fixups are real" `Quick
        test_spooky_phase_actually_matters ] )
