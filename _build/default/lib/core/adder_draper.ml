open Mbu_circuit

let phi_add b ~x ~phi_y =
  let n = Register.length x in
  if Register.length phi_y <> n + 1 then
    invalid_arg "Adder_draper.phi_add: length phi_y <> length x + 1";
  for i = 0 to n do
    for j = 0 to min i (n - 1) do
      Builder.cphase b ~control:(Register.get x j) ~target:(Register.get phi_y i)
        (Phase.theta (i - j + 1))
    done
  done

(* Equation (7): qubit i turns by (a mod 2^{i+1}) / 2^{i+1} of a turn. *)
let phi_add_const b ~a ~phi_y =
  let m = Register.length phi_y in
  if m > 61 then invalid_arg "Adder_draper.phi_add_const: register too wide";
  for i = 0 to m - 1 do
    let p = Phase.make ~num:a ~log2_den:(i + 1) in
    if not (Phase.is_zero p) then Builder.phase b (Register.get phi_y i) p
  done

let phi_sub_const b ~a ~phi_y = phi_add_const b ~a:(-a) ~phi_y

let c_phi_add_const b ~ctrl ~a ~phi_y =
  let m = Register.length phi_y in
  if m > 61 then invalid_arg "Adder_draper.c_phi_add_const: register too wide";
  for i = 0 to m - 1 do
    let p = Phase.make ~num:a ~log2_den:(i + 1) in
    if not (Phase.is_zero p) then
      Builder.cphase b ~control:ctrl ~target:(Register.get phi_y i) p
  done

let c_phi_sub_const b ~ctrl ~a ~phi_y = c_phi_add_const b ~ctrl ~a:(-a) ~phi_y

(* Theorem 2.14: all rotations of Phi_ADD commute, so group the ones
   controlled by x_j, replace their control with AND(ctrl, x_j) held in one
   reusable ancilla, and erase it by MBU after the group. *)
let c_phi_add b ~ctrl ~x ~phi_y =
  let n = Register.length x in
  if Register.length phi_y <> n + 1 then
    invalid_arg "Adder_draper.c_phi_add: length phi_y <> length x + 1";
  Builder.with_ancilla b (fun t ->
      for j = 0 to n - 1 do
        let xj = Register.get x j in
        Logical_and.compute b ~c1:ctrl ~c2:xj ~target:t;
        for i = j to n do
          Builder.cphase b ~control:t ~target:(Register.get phi_y i)
            (Phase.theta (i - j + 1))
        done;
        Logical_and.uncompute b ~c1:ctrl ~c2:xj ~target:t
      done)

let check_add_regs name ~x ~y =
  let n = Register.length x in
  if n = 0 then invalid_arg (name ^ ": empty addend");
  if Register.length y <> n + 1 then invalid_arg (name ^ ": length y <> length x + 1")

let add b ~x ~y =
  check_add_regs "Adder_draper.add" ~x ~y;
  Qft.apply b y;
  phi_add b ~x ~phi_y:y;
  Qft.apply_inverse b y

let add_controlled b ~ctrl ~x ~y =
  check_add_regs "Adder_draper.add_controlled" ~x ~y;
  Qft.apply b y;
  c_phi_add b ~ctrl ~x ~phi_y:y;
  Qft.apply_inverse b y

let add_const b ~a ~y =
  Qft.apply b y;
  phi_add_const b ~a ~phi_y:y;
  Qft.apply_inverse b y

let add_const_controlled b ~ctrl ~a ~y =
  Qft.apply b y;
  c_phi_add_const b ~ctrl ~a ~phi_y:y;
  Qft.apply_inverse b y

(* Proposition 2.26: subtract x from (y padded with a |0> sign qubit) in the
   Fourier basis, read the sign bit, then add x back. *)
let compare b ~x ~y ~target =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Adder_draper.compare: unequal lengths";
  Builder.with_ancilla b (fun sign ->
      let ys = Register.extend y sign in
      Qft.apply b ys;
      Builder.emit_adjoint b (fun () -> phi_add b ~x ~phi_y:ys);
      Qft.apply_inverse b ys;
      Builder.cnot b ~control:sign ~target;
      Qft.apply b ys;
      phi_add b ~x ~phi_y:ys;
      Qft.apply_inverse b ys)

(* Proposition 2.36: the sign bit of x - a is 1[x < a]. *)
let compare_const b ~a ~x ~target =
  Builder.with_ancilla b (fun sign ->
      let xs = Register.extend x sign in
      Qft.apply b xs;
      phi_sub_const b ~a ~phi_y:xs;
      Qft.apply_inverse b xs;
      Builder.cnot b ~control:sign ~target;
      Qft.apply b xs;
      phi_add_const b ~a ~phi_y:xs;
      Qft.apply_inverse b xs)

(* Equal-length Phi addition: y and x both m qubits, mod 2^m. *)
let phi_add_equal b ~x ~phi_y =
  let m = Register.length x in
  if Register.length phi_y <> m then
    invalid_arg "Adder_draper.phi_add_equal: unequal lengths";
  for i = 0 to m - 1 do
    for j = 0 to i do
      Builder.cphase b ~control:(Register.get x j) ~target:(Register.get phi_y i)
        (Phase.theta (i - j + 1))
    done
  done

let add_mod b ~x ~y =
  Qft.apply b y;
  phi_add_equal b ~x ~phi_y:y;
  Qft.apply_inverse b y

(* Comparator by constant reading the register's own sign bit. *)
let compare_const_msb b ~a ~x ~target =
  let m = Register.length x in
  Qft.apply b x;
  phi_sub_const b ~a ~phi_y:x;
  Qft.apply_inverse b x;
  Builder.cnot b ~control:(Register.get x (m - 1)) ~target;
  Qft.apply b x;
  phi_add_const b ~a ~phi_y:x;
  Qft.apply_inverse b x

let phi_add_approx b ~cutoff ~x ~phi_y =
  let n = Register.length x in
  if Register.length phi_y <> n + 1 then
    invalid_arg "Adder_draper.phi_add_approx: length phi_y <> length x + 1";
  for i = 0 to n do
    for j = max 0 (i + 1 - cutoff) to min i (n - 1) do
      Builder.cphase b ~control:(Register.get x j) ~target:(Register.get phi_y i)
        (Phase.theta (i - j + 1))
    done
  done

let add_approx b ~cutoff ~x ~y =
  check_add_regs "Adder_draper.add_approx" ~x ~y;
  Qft.apply_approx b ~cutoff y;
  phi_add_approx b ~cutoff ~x ~phi_y:y;
  Qft.apply_approx_inverse b ~cutoff y
