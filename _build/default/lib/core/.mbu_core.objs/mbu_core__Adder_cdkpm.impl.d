lib/core/adder_cdkpm.ml: Array Builder Instr Mbu_circuit Register
