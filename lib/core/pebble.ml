open Mbu_circuit

type move = Pebble of int | Unpebble of int | Measure of int | Unghost of int
type strategy = move list

type cost = {
  applications : int;
  space : int;
  measurements : int;
  expected_fixups : float;
}

(* Shared game engine: step the configuration, reporting the first illegal
   move. [on_move] lets the compiler emit gates alongside the bookkeeping. *)
let play ~chain_length ~on_move strategy =
  let m = chain_length in
  if m < 1 then invalid_arg "Pebble: chain_length must be positive";
  let pebbled = Array.make (m + 1) false in
  pebbled.(0) <- true;
  (* node 0 is the input *)
  let ghost = Array.make (m + 1) false in
  let apps = ref 0 and measures = ref 0 and unghosts = ref 0 in
  let peak = ref 0 in
  let count_pebbles () =
    let c = ref 0 in
    for i = 1 to m do
      if pebbled.(i) then incr c
    done;
    !c
  in
  let check cond msg = if cond then Ok () else Error msg in
  let step mv =
    let r =
      match mv with
      | Pebble i ->
          Result.bind
            (check (i >= 1 && i <= m) (Printf.sprintf "pebble %d out of range" i))
            (fun () ->
              Result.bind
                (check pebbled.(i - 1)
                   (Printf.sprintf "pebble %d: predecessor bare" i))
                (fun () ->
                  Result.bind
                    (check (not pebbled.(i)) (Printf.sprintf "pebble %d: occupied" i))
                    (fun () ->
                      pebbled.(i) <- true;
                      incr apps;
                      Ok ())))
      | Unpebble i ->
          Result.bind
            (check (i >= 1 && i <= m) (Printf.sprintf "unpebble %d out of range" i))
            (fun () ->
              Result.bind
                (check pebbled.(i - 1)
                   (Printf.sprintf "unpebble %d: predecessor bare" i))
                (fun () ->
                  Result.bind
                    (check pebbled.(i) (Printf.sprintf "unpebble %d: empty" i))
                    (fun () ->
                      pebbled.(i) <- false;
                      incr apps;
                      Ok ())))
      | Measure i ->
          Result.bind
            (check (i >= 1 && i <= m) (Printf.sprintf "measure %d out of range" i))
            (fun () ->
              Result.bind
                (check pebbled.(i) (Printf.sprintf "measure %d: empty" i))
                (fun () ->
                  Result.bind
                    (check (not ghost.(i))
                       (Printf.sprintf "measure %d: ghost already present" i))
                    (fun () ->
                      pebbled.(i) <- false;
                      ghost.(i) <- true;
                      incr measures;
                      Ok ())))
      | Unghost i ->
          Result.bind
            (check (i >= 1 && i <= m) (Printf.sprintf "unghost %d out of range" i))
            (fun () ->
              Result.bind
                (check ghost.(i) (Printf.sprintf "unghost %d: no ghost" i))
                (fun () ->
                  Result.bind
                    (check pebbled.(i)
                       (Printf.sprintf "unghost %d: node not re-pebbled" i))
                    (fun () ->
                      ghost.(i) <- false;
                      incr unghosts;
                      Ok ())))
    in
    Result.bind r (fun () ->
        on_move mv;
        peak := max !peak (count_pebbles ());
        Ok ())
  in
  let rec run = function
    | [] -> Ok ()
    | mv :: rest -> Result.bind (step mv) (fun () -> run rest)
  in
  Result.bind (run strategy) (fun () ->
      let final_ok =
        pebbled.(m)
        && (not (Array.exists Fun.id ghost))
        &&
        let rec inner i = i >= m || ((not pebbled.(i)) && inner (i + 1)) in
        inner 1
      in
      if final_ok then
        Ok
          { applications = !apps; space = !peak; measurements = !measures;
            expected_fixups = float_of_int !unghosts /. 2. }
      else Error "final configuration is not {node m}, or ghosts remain")

let validate ~chain_length strategy =
  Result.map (fun _ -> ()) (play ~chain_length ~on_move:ignore strategy)

let cost ~chain_length strategy =
  match play ~chain_length ~on_move:ignore strategy with
  | Ok c -> c
  | Error msg -> invalid_arg ("Pebble.cost: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Strategies *)

let naive ~chain_length =
  let m = chain_length in
  List.init m (fun i -> Pebble (i + 1))
  @ List.init (m - 1) (fun i -> Unpebble (m - 1 - i))

(* Recursive checkpointing over the segment (lo, hi]: pebble hi using the
   nodes strictly between, leaving only hi pebbled in the segment. *)
let bennett ~chain_length =
  let rec seg lo hi =
    if hi = lo + 1 then [ Pebble hi ]
    else begin
      let mid = (lo + hi) / 2 in
      seg lo mid @ seg mid hi @ unseg lo mid
    end
  and unseg lo hi =
    (* exact reverse with Pebble <-> Unpebble *)
    List.rev_map
      (function
        | Pebble i -> Unpebble i
        | Unpebble i -> Pebble i
        | (Measure _ | Unghost _) as mv -> mv)
      (seg lo hi)
  in
  seg 0 chain_length

(* Measure-as-you-go with checkpoints every [stride]: linear time, sqrt-ish
   space — the regime the classical game cannot reach cheaply. *)
let spooky ?stride ~chain_length () =
  let m = chain_length in
  let stride =
    match stride with
    | Some s ->
        if s < 1 then invalid_arg "Pebble.spooky: stride must be positive";
        s
    | None -> max 1 (int_of_float (sqrt (float_of_int m)))
  in
  let is_checkpoint i = i = m || (i mod stride = 0 && i > 0) in
  let moves = ref [] in
  let emit mv = moves := mv :: !moves in
  (* forward sweep: measure every non-checkpoint node once its successor
     exists *)
  for i = 1 to m do
    emit (Pebble i);
    if i >= 2 && not (is_checkpoint (i - 1)) then emit (Measure (i - 1))
  done;
  (* exorcise each segment's ghosts from its left checkpoint *)
  let checkpoints =
    List.filter is_checkpoint (List.init m (fun i -> i + 1))
  in
  let segments =
    let rec pair lo = function
      | [] -> []
      | c :: rest -> (lo, c) :: pair c rest
    in
    pair 0 checkpoints
  in
  List.iter
    (fun (lo, hi) ->
      for i = lo + 1 to hi - 1 do
        emit (Pebble i);
        emit (Unghost i)
      done;
      for i = hi - 1 downto lo + 1 do
        emit (Unpebble i)
      done)
    segments;
  (* dismantle the interior checkpoints from the right *)
  let interior = List.rev (List.filter (fun c -> c <> m) checkpoints) in
  List.iter
    (fun c ->
      let lo = ((c - 1) / stride) * stride in
      (* lo is the previous checkpoint (or 0) *)
      for i = lo + 1 to c - 1 do
        emit (Pebble i)
      done;
      emit (Unpebble c);
      for i = c - 1 downto lo + 1 do
        emit (Unpebble i)
      done)
    interior;
  List.rev !moves

(* ------------------------------------------------------------------ *)
(* Circuit realization over affine boolean chains *)

type chain = (bool * bool) array

let chain_value chain ~input i =
  let rec go v j =
    if j > i then v
    else
      let a, c = chain.(j - 1) in
      go ((a && v) <> c) (j + 1)
  in
  if i = 0 then input else go input 1

let compile b ~chain ~input strategy =
  let m = Array.length chain in
  let nodes = Builder.fresh_register b "node" m in
  let node i = Register.get nodes (i - 1) in
  let prev i = if i = 1 then input else node (i - 1) in
  let last_bit = Array.make (m + 1) (-1) in
  let apply_f i =
    (* Shared per node: spooky strategies re-pebble interior nodes several
       times, and every (un)pebble of node i is the same 1-2 gates. *)
    Builder.with_shared b "pebble.apply_f" @@ fun () ->
    let a, c = chain.(i - 1) in
    if a then Builder.cnot b ~control:(prev i) ~target:(node i);
    if c then Builder.x b (node i)
  in
  let on_move = function
    | Pebble i | Unpebble i -> apply_f i
    | Measure i ->
        Builder.h b (node i);
        last_bit.(i) <- Builder.measure ~reset:true b (node i)
    | Unghost i ->
        (* The ghost phase is (-1)^{x_i}, present exactly when the X-basis
           measurement returned 1; the re-pebbled node holds x_i, so an
           outcome-conditioned Z cancels it. *)
        Builder.if_bit b last_bit.(i) (fun () -> Builder.z b (node i))
  in
  match play ~chain_length:m ~on_move strategy with
  | Ok _ -> nodes
  | Error msg -> invalid_arg ("Pebble.compile: " ^ msg)
