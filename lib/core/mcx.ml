open Mbu_circuit

(* Conjunction ladder: fold the controls pairwise into fresh AND ancillas,
   erased in reverse by MBU. *)
let rec with_conjunction b ~controls f =
  match controls with
  | [] ->
      (* empty conjunction is true: use a borrowed |1> wire *)
      Builder.with_ancilla b (fun w ->
          Builder.x b w;
          f w;
          Builder.x b w)
  | [ c ] -> f c
  | c1 :: c2 :: rest ->
      Builder.with_ancilla b (fun t ->
          Logical_and.compute b ~c1 ~c2 ~target:t;
          with_conjunction b ~controls:(t :: rest) f;
          Logical_and.uncompute b ~c1 ~c2 ~target:t)

let apply b ~controls ~target =
  match controls with
  | [] -> Builder.x b target
  | [ c ] -> Builder.cnot b ~control:c ~target
  | controls ->
      Builder.with_span b "mcx" (fun () ->
          with_conjunction b ~controls (fun w -> Builder.cnot b ~control:w ~target))

let apply_z b ~controls ~target =
  match controls with
  | [] -> Builder.z b target
  | [ c ] -> Builder.cz b c target
  | controls ->
      Builder.with_span b "mcz" (fun () ->
          with_conjunction b ~controls (fun w -> Builder.cz b w target))
