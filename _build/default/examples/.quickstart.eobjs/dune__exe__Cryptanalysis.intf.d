examples/cryptanalysis.mli:
