(** Campaign specs for the paper's Table-1 modular-adder catalogue.

    One entry per modular-adder family — the five ripple rows and the
    Draper row of table 1, plus the two narrow-width constant modular
    adders (Oumarou–Paler–Basmadjian) whose ancilla discipline is the
    tightest. All entries are built with [~mbu:true], so every spec
    contains live MBU conditionals for the fault and forced-branch
    machinery to exercise, and carry an independently computed classical
    oracle ((x + y) mod p resp. (x + a) mod p). *)

open Mbu_circuit

type entry = {
  name : string;  (** CLI-friendly id, e.g. ["vbe5"] *)
  title : string;  (** table row label, e.g. ["(5 adder) VBE"] *)
  make : n:int -> p:int -> Engine.spec;
}

val table1 : entry list
(** [vbe5], [vbe4], [cdkpm], [gidney], [mixed], [draper]. *)

val const_adders : entry list
(** [modadd-const] (CDKPM architecture), [takahashi]. *)

val all : entry list

val find : string -> entry option

val default_inputs : p:int -> int * int
(** The deterministic in-range [(x, y)] every spec initializes with;
    chosen so x + y >= p, exercising the conditional-subtract path. *)

val default_constant : p:int -> int
(** The classical addend of the constant-adder entries. *)

val lint : Engine.spec -> Lint.report
(** Lint a catalogue spec's circuit ([input_qubits] recovered from the
    entry's register widths). *)
