type kind =
  | Invalid
  | Resource_limit of { limit : int; actual : int }

type t = {
  kind : kind;
  subsystem : string;
  message : string;
  qubit : int option;
  bit : int option;
  register : string option;
  path : string list;
}

exception Error of t

let make ?qubit ?bit ?register ?(path = []) kind ~subsystem message =
  { kind; subsystem; message; qubit; bit; register; path }

let invalid ?qubit ?bit ?register ?path ~subsystem message =
  raise (Error (make ?qubit ?bit ?register ?path Invalid ~subsystem message))

let resource_limit ?qubit ?bit ?register ?path ~limit ~actual ~subsystem message
    =
  raise
    (Error
       (make ?qubit ?bit ?register ?path
          (Resource_limit { limit; actual })
          ~subsystem message))

let to_string e =
  let b = Buffer.create 80 in
  Buffer.add_string b e.subsystem;
  Buffer.add_string b ": ";
  Buffer.add_string b e.message;
  (match e.kind with
  | Invalid -> ()
  | Resource_limit { limit; actual } ->
      Buffer.add_string b (Printf.sprintf " (limit %d, actual %d)" limit actual));
  let ctx = Buffer.create 32 in
  let add s = if Buffer.length ctx > 0 then Buffer.add_string ctx ", ";
              Buffer.add_string ctx s in
  Option.iter (fun q -> add (Printf.sprintf "qubit %d" q)) e.qubit;
  Option.iter (fun c -> add (Printf.sprintf "bit %d" c)) e.bit;
  Option.iter (fun r -> add (Printf.sprintf "register %s" r)) e.register;
  if e.path <> [] then add ("at " ^ String.concat " > " e.path);
  if Buffer.length ctx > 0 then begin
    Buffer.add_string b " [";
    Buffer.add_buffer b ctx;
    Buffer.add_string b "]"
  end;
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Mbu_error: " ^ to_string e)
    | _ -> None)
