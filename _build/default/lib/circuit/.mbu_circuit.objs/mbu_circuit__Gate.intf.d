lib/circuit/gate.mli: Format Phase
