test/test_adder_generic.ml: Adder Alcotest Builder Circuit Counts Helpers List Mbu_circuit Mbu_core Mbu_simulator Printf Register Sim
