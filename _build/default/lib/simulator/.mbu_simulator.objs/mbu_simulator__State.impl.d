lib/simulator/state.ml: Complex Format Gate Hashtbl List Mbu_circuit Phase Stdlib String
