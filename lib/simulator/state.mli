(** Sparse state vectors with a classical fast track.

    A state over [num_qubits] wires (at most 62) is a finite map from basis
    indices to complex amplitudes; basis index bit [i] is the value of wire
    [i]. Sparsity is what makes simulating the ripple-carry circuits cheap:
    a computational-basis input stays a single basis state under X / CNOT /
    Toffoli, and the measurement-based blocks only ever put one ancilla at a
    time into superposition.

    Internally a state rides one of two tracks. The {e classical} track
    stores a single basis vector as a plain [int] (plus its global-phase
    amplitude) and applies permutation gates in O(1) with zero allocation.
    H promotes to the {e sparse} track — a hash table mutated in place for
    permutation and diagonal gates, double-buffered only for H — and the
    state demotes back to classical as soon as the support collapses to one
    term. Dense states (QFT circuits) are still exact, just limited to
    small wire counts.

    The [*_inplace] operations mutate the state; the same-named pure
    functions copy first and are safe to use on shared states. *)

open Mbu_circuit

type t

val num_qubits : t -> int

val basis : num_qubits:int -> int -> t
(** [basis ~num_qubits idx]: the computational basis state |idx>. *)

val of_alist : num_qubits:int -> (int * Complex.t) list -> t
(** Not normalized automatically; raises [Invalid_argument] on repeated
    indices or indices out of range. *)

val to_alist : t -> (int * Complex.t) list
(** Entries with non-negligible amplitude, sorted by basis index. *)

val num_terms : t -> int

val support_size : t -> int
(** Number of stored amplitude entries — 1 on the classical track, the raw
    hash-table size on the sparse track (negligible amplitudes included,
    unlike {!num_terms}). O(1); this is the memory-cost figure the
    [Sim.run ?max_terms] budget compares against. *)

val norm : t -> float
val normalize : t -> t

val copy : t -> t
(** Independent deep copy; in-place operations on the copy do not affect
    the original. *)

val is_classical : t -> bool
(** True while the state is on the classical (single basis vector) track. *)

val force_sparse : t -> unit
(** Move the state to the sparse track and pin it there: it will not demote
    back to the classical track even when the support is a single term.
    Used by tests and benchmarks to exercise the sparse kernel on circuits
    that would otherwise stay classical. Copies inherit the pin. *)

val apply_gate : t -> Gate.t -> t
val apply_gate_inplace : t -> Gate.t -> unit

val prob_bit_one : t -> int -> float
(** Probability that measuring the given wire yields 1. *)

val project : t -> qubit:int -> value:bool -> t
(** Project onto the subspace where [qubit] = [value] and renormalize.
    Raises [Invalid_argument] if the outcome has zero probability. *)

val project_inplace : t -> qubit:int -> value:bool -> unit

val set_bit_zero : t -> qubit:int -> t
(** Clear the given wire in every basis index (used by measure-and-reset
    after projecting onto 1). The map is linear but not bijective: basis
    indices that collide once the wire is cleared have their amplitudes
    {e accumulated}. *)

val set_bit_zero_inplace : t -> qubit:int -> unit

val fidelity : t -> t -> float
(** |<a|b>| — 1 for states equal up to global phase. *)

val classical_value : t -> int option
(** [Some idx] when the state is a single basis vector (up to global phase),
    [None] otherwise. *)

val bit_value : t -> int -> bool option
(** The definite value of a wire across the whole support, if any. *)

(** The seed simulator's pure rebuild-per-gate algorithms, kept verbatim
    (modulo the [set_bit_zero] collision fix) as the oracle for the
    backend-equivalence property tests and the "before" baseline of the
    simulator benchmark. Results are always on the sparse track. *)
module Reference : sig
  val apply_gate : t -> Gate.t -> t
  val project : t -> qubit:int -> value:bool -> t
  val set_bit_zero : t -> qubit:int -> t
end

val pp : Format.formatter -> t -> unit
