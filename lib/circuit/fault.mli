(** Fault sites and injectable faults over the hash-consed circuit DAG.

    A fault-injection campaign needs a stable way to name "the place in the
    program where the fault strikes". Runtime gate ordinals will not do:
    which gates execute depends on the measurement outcomes (every MBU
    correction block is conditional). Instead, sites are addressed by the
    {e static expanded position} of their instruction — the index the
    instruction has in [Instr.count_instrs] order, where [Gate] / [Measure]
    / [If_bit] each occupy one slot, an [If_bit]'s body follows its slot,
    spans are weightless, and a [Call] counts as its inline expansion. The
    simulator tracks the same numbering during execution (taken or not), so
    a site is hit at most once per run regardless of which branches fire.

    Enumeration respects the sharing: per-node site counts are memoized by
    node id, so finding the [k]-th site of a circuit whose body is a deep
    DAG descends one path instead of expanding the program. (The site
    {e space} still covers every occurrence: a block called twice
    contributes its sites twice, at different positions.)

    Three fault models, matching what can actually go wrong in the paper's
    measurement-based circuits:
    - a Pauli X / Y / Z inserted after a gate, on one of its wires — the
      standard circuit-level depolarizing model;
    - a misread measurement: the projection happens according to the true
      outcome but the {e recorded} classical bit is flipped, so every
      conditional correction keyed on it (MBU lemma 4.1, Gidney's AND
      erasure) fires wrongly;
    - a skipped conditional block: the classical controller fails to apply
      a correction that should have fired. *)

type pauli = X | Y | Z

type site =
  | Gate_site of { pos : int; gate : Gate.t; qubit : Gate.qubit }
      (** One site per (gate, touched wire) pair: position [pos], wire
          [qubit]. A Toffoli therefore contributes three sites. *)
  | Measure_site of { pos : int; qubit : Gate.qubit; bit : int }
  | Branch_site of { pos : int; bit : int; value : bool }

type t =
  | Pauli_after of { pos : int; qubit : Gate.qubit; pauli : pauli }
      (** Apply the Pauli to [qubit] immediately after the instruction at
          [pos] executes (no effect if [pos] sits in a branch not taken). *)
  | Flip_outcome of { bit : int }
      (** Record the opposite of the true outcome into classical [bit]
          (misread model: the projection itself is faithful). *)
  | Skip_block of { pos : int }
      (** Do not execute the [If_bit] at [pos] even when its guard holds. *)

val num_sites : Instr.t list -> int
(** Memoized per shared node; O(program) the first time, O(top level)
    after. *)

val site : Instr.t list -> int -> site
(** [site instrs k] is the [k]-th site in program order, found by counted
    descent (no expansion). Raises [Invalid_argument] when [k] is out of
    [0 .. num_sites - 1]. *)

val sites : Instr.t list -> site list
(** All sites in program order — the expanded enumeration; prefer
    {!site} + {!num_sites} for sampling large circuits. *)

val of_site : ?pauli:pauli -> site -> t
(** The canonical fault for a site: [Pauli_after] (default pauli [X]) for a
    gate site, [Flip_outcome] for a measurement, [Skip_block] for a
    branch. *)

val pauli_gates : pauli -> Gate.qubit -> Gate.t list
(** The gate-set realization of the Pauli, in application order ([Y] is
    [Z] then [X], equal to Y up to global phase). *)

val pauli_name : pauli -> string
val to_string : t -> string
