lib/simulator/state.mli: Complex Format Gate Mbu_circuit
