(* Modular adders (section 3) and their MBU variants (section 4), validated
   exhaustively against integer arithmetic for several moduli, with and
   without measurement-based uncomputation, including on superposed inputs
   (which is where a wrong MBU phase correction would show up). *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let specs =
  [ ("cdkpm", Mod_add.spec_cdkpm); ("gidney", Mod_add.spec_gidney);
    ("mixed", Mod_add.spec_mixed) ]

(* Exhaustive check of y <- (x+y) mod p over all 0 <= x, y < p. *)
let check_modadd ~name build n p ~reps =
  for x_val = 0 to p - 1 do
    for y_val = 0 to p - 1 do
      for _ = 1 to reps do
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        build b ~p ~x ~y;
        let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
        let msg tag =
          Printf.sprintf "%s n=%d p=%d %s (x=%d y=%d)" name n p tag x_val y_val
        in
        Alcotest.(check int) (msg "sum") ((x_val + y_val) mod p)
          (value r.Sim.state y);
        Alcotest.(check int) (msg "x kept") x_val (value r.Sim.state x);
        Alcotest.(check bool) (msg "clean") true
          (Sim.wires_zero r.Sim.state ~except:[ x; y ])
      done
    done
  done

let moduli n = [ (1 lsl n) - 1; (1 lsl n) - 3; (1 lsl (n - 1)) + 1 ]

let test_modadd_specs () =
  List.iter
    (fun (sname, spec) ->
      List.iter
        (fun mbu ->
          let name = Printf.sprintf "modadd-%s%s" sname (if mbu then "+mbu" else "") in
          List.iter
            (fun p -> check_modadd ~name (Mod_add.modadd ~mbu spec) 3 p ~reps:2)
            (moduli 3))
        [ false; true ])
    specs

let test_modadd_vbe_variants () =
  List.iter
    (fun (name, build) ->
      List.iter
        (fun mbu ->
          let nm = Printf.sprintf "%s%s" name (if mbu then "+mbu" else "") in
          List.iter (fun p -> check_modadd ~name:nm (build ~mbu) 3 p ~reps:2) (moduli 3))
        [ false; true ])
    [ ("vbe5", fun ~mbu -> Mod_add.modadd_vbe_5adder ~mbu);
      ("vbe4", fun ~mbu -> Mod_add.modadd_vbe_4adder ~mbu) ]

let test_modadd_draper () =
  List.iter
    (fun mbu ->
      let nm = Printf.sprintf "modadd-draper%s" (if mbu then "+mbu" else "") in
      List.iter
        (fun p -> check_modadd ~name:nm (Mod_add.modadd_draper ~mbu) 3 p ~reps:2)
        (moduli 3))
    [ false; true ]

(* Superposition: x uniform over [0, 2^n) is not valid modular input (needs
   x < p), so superpose y over [0, p) by hand instead... simpler: prepare a
   two-term superposition of valid inputs with an H on a low qubit when
   p > 2, and check exact final state. *)
let test_modadd_superposition () =
  let n = 3 and p = 7 in
  List.iter
    (fun (sname, build) ->
      (* input: x = 5, y in (|2> + |3>)/sqrt2 -> output y in (|0> + |1>)/sqrt2 *)
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" n in
      build b ~p ~x ~y;
      let init =
        let base = Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (x, 5) ] in
        ignore base;
        (* y = 2 (010) and y = 3 (011): superpose the lowest y qubit with
           y_1 = 1 *)
        let idx_of y_val =
          let i = ref 0 in
          for k = 0 to n - 1 do
            if (5 lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get x k);
            if (y_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get y k)
          done;
          !i
        in
        let a : Complex.t = { re = 1.0 /. sqrt 2.0; im = 0.0 } in
        State.of_alist ~num_qubits:(Builder.num_qubits b)
          [ (idx_of 2, a); (idx_of 3, a) ]
      in
      let c = Builder.to_circuit b in
      let r = Sim.run ~rng c ~init in
      let idx_out y_val =
        let i = ref 0 in
        for k = 0 to n - 1 do
          if (5 lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get x k);
          if (y_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get y k)
        done;
        !i
      in
      let a : Complex.t = { re = 1.0 /. sqrt 2.0; im = 0.0 } in
      let expected =
        State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
          [ (idx_out 0, a); (idx_out 1, a) ]
      in
      let f = State.fidelity r.Sim.state expected in
      Alcotest.(check bool)
        (Printf.sprintf "%s superposition fidelity %.6f" sname f)
        true (f > 1. -. 1e-9))
    [ ("cdkpm+mbu", Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm);
      ("gidney+mbu", Mod_add.modadd ~mbu:true Mod_add.spec_gidney);
      ("mixed+mbu", Mod_add.modadd ~mbu:true Mod_add.spec_mixed);
      ("draper+mbu", Mod_add.modadd_draper ~mbu:true);
      ("vbe5+mbu", Mod_add.modadd_vbe_5adder ~mbu:true) ]

(* Controlled modular addition. *)
let test_modadd_controlled () =
  let n = 3 in
  List.iter
    (fun (sname, spec) ->
      List.iter
        (fun mbu ->
          let p = 7 in
          for ctrl_val = 0 to 1 do
            for x_val = 0 to p - 1 do
              for y_val = 0 to p - 1 do
                let b = Builder.create () in
                let c = Builder.fresh_register b "c" 1 in
                let x = Builder.fresh_register b "x" n in
                let y = Builder.fresh_register b "y" n in
                Mod_add.modadd_controlled ~mbu spec b ~ctrl:(Register.get c 0) ~p ~x ~y;
                let r =
                  Sim.run_builder ~rng b
                    ~inits:[ (c, ctrl_val); (x, x_val); (y, y_val) ]
                in
                let msg =
                  Printf.sprintf "cmodadd-%s%s c=%d x=%d y=%d" sname
                    (if mbu then "+mbu" else "") ctrl_val x_val y_val
                in
                Alcotest.(check int) msg
                  ((y_val + (ctrl_val * x_val)) mod p)
                  (value r.Sim.state y);
                Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x);
                Alcotest.(check bool) (msg ^ " clean") true
                  (Sim.wires_zero r.Sim.state ~except:[ c; x; y ])
              done
            done
          done)
        [ false; true ])
    specs

(* Constant modular addition: VBE architecture, Takahashi, via-load, Draper. *)
let check_modadd_const ~name build n p ~reps =
  for a = 0 to p - 1 do
    for x_val = 0 to p - 1 do
      for _ = 1 to reps do
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        build b ~p ~a ~x;
        let r = Sim.run_builder ~rng b ~inits:[ (x, x_val) ] in
        let msg = Printf.sprintf "%s p=%d a=%d x=%d" name p a x_val in
        Alcotest.(check int) msg ((x_val + a) mod p) (value r.Sim.state x);
        Alcotest.(check bool) (msg ^ " clean") true
          (Sim.wires_zero r.Sim.state ~except:[ x ])
      done
    done
  done

let test_modadd_const_architectures () =
  let spec = Mod_add.spec_cdkpm in
  List.iter
    (fun mbu ->
      let sfx = if mbu then "+mbu" else "" in
      List.iter
        (fun p ->
          check_modadd_const ~name:("constVBE" ^ sfx)
            (Mod_add.modadd_const ~mbu spec) 3 p ~reps:2;
          check_modadd_const ~name:("takahashi" ^ sfx)
            (Mod_add.modadd_const_takahashi ~mbu spec) 3 p ~reps:2;
          check_modadd_const ~name:("via-load" ^ sfx)
            (Mod_add.modadd_const_via_load ~mbu spec) 3 p ~reps:2;
          check_modadd_const ~name:("draper-const" ^ sfx)
            (Mod_add.modadd_const_draper ~mbu) 3 p ~reps:2)
        (moduli 3))
    [ false; true ]

let test_modadd_const_other_specs () =
  (* Takahashi with Gidney and mixed subroutines, plus a Draper-subroutine
     VBE architecture. *)
  List.iter
    (fun (sname, spec) ->
      check_modadd_const
        ~name:("takahashi-" ^ sname)
        (Mod_add.modadd_const_takahashi ~mbu:true spec)
        3 5 ~reps:2)
    specs;
  let spec_draper =
    Mod_add.{ q_add = Adder.Draper; q_comp_const = Adder.Draper;
              c_q_sub_const = Adder.Draper; q_comp = Adder.Draper }
  in
  check_modadd_const ~name:"constVBE-draper-sub"
    (Mod_add.modadd_const ~mbu:false spec_draper) 3 5 ~reps:1

let test_modadd_const_controlled () =
  let n = 3 and p = 7 in
  List.iter
    (fun (name, build) ->
      for ctrl_val = 0 to 1 do
        for a = 0 to p - 1 do
          for x_val = 0 to p - 1 do
            let b = Builder.create () in
            let c = Builder.fresh_register b "c" 1 in
            let x = Builder.fresh_register b "x" n in
            build b ~ctrl:(Register.get c 0) ~p ~a ~x;
            let r = Sim.run_builder ~rng b ~inits:[ (c, ctrl_val); (x, x_val) ] in
            let msg = Printf.sprintf "%s c=%d a=%d x=%d" name ctrl_val a x_val in
            Alcotest.(check int) msg
              ((x_val + (ctrl_val * a)) mod p)
              (value r.Sim.state x);
            Alcotest.(check bool) (msg ^ " clean") true
              (Sim.wires_zero r.Sim.state ~except:[ c; x ])
          done
        done
      done)
    [ ("c-const-cdkpm", Mod_add.modadd_const_controlled ~mbu:false Mod_add.spec_cdkpm);
      ("c-const-cdkpm+mbu", Mod_add.modadd_const_controlled ~mbu:true Mod_add.spec_cdkpm);
      ("c-const-draper", Mod_add.modadd_const_controlled_draper ~mbu:false);
      ("c-const-draper+mbu", Mod_add.modadd_const_controlled_draper ~mbu:true) ]

(* Two-sided comparator (theorem 4.13). *)
let test_in_range () =
  let n = 2 in
  List.iter
    (fun (name, mbu, style) ->
      for x_val = 0 to 3 do
        for y_val = 0 to 3 do
          for z_val = 0 to 3 do
            let b = Builder.create () in
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" n in
            let z = Builder.fresh_register b "z" n in
            let t = Builder.fresh_register b "t" 1 in
            Mbu.in_range ~mbu style b ~x ~y ~z ~target:(Register.get t 0);
            let r =
              Sim.run_builder ~rng b
                ~inits:[ (x, x_val); (y, y_val); (z, z_val); (t, 0) ]
            in
            let expect = if y_val < x_val && x_val < z_val then 1 else 0 in
            let msg = Printf.sprintf "%s x=%d y=%d z=%d" name x_val y_val z_val in
            Alcotest.(check int) msg expect (value r.Sim.state t);
            Alcotest.(check bool) (msg ^ " clean") true
              (Sim.wires_zero r.Sim.state ~except:[ x; y; z; t ])
          done
        done
      done)
    [ ("in-range-cdkpm", false, Adder.Cdkpm);
      ("in-range-cdkpm+mbu", true, Adder.Cdkpm);
      ("in-range-gidney+mbu", true, Adder.Gidney) ]

(* Wider randomized runs: n = 6, sparse sampling. *)
let test_modadd_wide () =
  let n = 6 and p = 61 in
  List.iter
    (fun (sname, spec) ->
      for _ = 1 to 8 do
        let x_val = Random.State.int rng p and y_val = Random.State.int rng p in
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        Mod_add.modadd ~mbu:true spec b ~p ~x ~y;
        let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
        Alcotest.(check int)
          (Printf.sprintf "wide %s x=%d y=%d" sname x_val y_val)
          ((x_val + y_val) mod p)
          (value r.Sim.state y)
      done)
    specs

(* Builder scalability: wide circuits must build quickly with the exact
   slope-predicted Toffoli count (no simulation). Classical constants are
   OCaml ints, so moduli cap at 61 bits; the plain adder has no constant
   and scales to kilobit registers. *)
let test_builder_scales_wide () =
  List.iter
    (fun n ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" n in
      Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p:((1 lsl n) - 1) ~x ~y;
      let c = Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b) in
      Alcotest.(check (float 0.))
        (Printf.sprintf "7n+2 at n=%d" n)
        ((7. *. float_of_int n) +. 2.)
        c.Counts.toffoli)
    [ 24; 48 ];
  List.iter
    (fun n ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder_cdkpm.add b ~x ~y;
      let c = Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b) in
      Alcotest.(check (float 0.))
        (Printf.sprintf "2n at n=%d" n)
        (2. *. float_of_int n) c.Counts.toffoli)
    [ 512; 2048 ]

(* The VBE-subroutine spec (not in the paper's table 1 but expressible). *)
let test_modadd_exhaustive_n4 () =
  (* one deeper exhaustive sweep: n = 4, prime modulus, MBU on *)
  check_modadd ~name:"modadd-cdkpm-n4" (Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm)
    4 13 ~reps:1;
  check_modadd ~name:"modadd-mixed-n4" (Mod_add.modadd ~mbu:true Mod_add.spec_mixed)
    4 11 ~reps:1

let test_spec_names () =
  Alcotest.(check string) "cdkpm" "cdkpm" (Mod_add.spec_name Mod_add.spec_cdkpm);
  Alcotest.(check string) "gidney" "gidney" (Mod_add.spec_name Mod_add.spec_gidney);
  Alcotest.(check string) "mixed" "gidney+cdkpm" (Mod_add.spec_name Mod_add.spec_mixed);
  let custom =
    Mod_add.{ q_add = Adder.Vbe; q_comp_const = Adder.Draper;
              c_q_sub_const = Adder.Cdkpm; q_comp = Adder.Gidney }
  in
  Alcotest.(check string) "custom" "vbe/draper/cdkpm/gidney"
    (Mod_add.spec_name custom)

let test_modadd_all_vbe_spec () =
  let spec_vbe =
    Mod_add.{ q_add = Adder.Vbe; q_comp_const = Adder.Vbe;
              c_q_sub_const = Adder.Vbe; q_comp = Adder.Vbe }
  in
  List.iter
    (fun mbu -> check_modadd ~name:"modadd-vbe-spec" (Mod_add.modadd ~mbu spec_vbe) 3 7 ~reps:1)
    [ false; true ]

(* Stress: the sparse simulator tracks a 58-wire modular adder without
   blowing up, because computational-basis inputs stay nearly classical. *)
let test_modadd_near_simulator_limit () =
  let n = 18 in
  let p = (1 lsl n) - 5 in
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y;
  Alcotest.(check bool) "close to the 62-wire cap" true
    (Builder.num_qubits b > 50 && Builder.num_qubits b <= 62);
  let x_val = p - 3 and y_val = p - 9 in
  let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
  Alcotest.(check int) "wide modadd" ((x_val + y_val) mod p)
    (value r.Sim.state y)

let suite =
  ( "mod-add",
    [ Alcotest.test_case "modadd all specs (props 3.4-3.6, thms 4.3-4.5)" `Quick
        test_modadd_specs;
      Alcotest.test_case "vbe 5/4-adder variants (table 1)" `Quick
        test_modadd_vbe_variants;
      Alcotest.test_case "draper modular adder (prop 3.7, thm 4.6)" `Quick
        test_modadd_draper;
      Alcotest.test_case "mbu preserves superpositions" `Quick
        test_modadd_superposition;
      Alcotest.test_case "controlled modadd (props 3.9-3.11)" `Quick
        test_modadd_controlled;
      Alcotest.test_case "constant modadd architectures (thm 3.14, prop 3.15)"
        `Quick test_modadd_const_architectures;
      Alcotest.test_case "constant modadd other specs" `Quick
        test_modadd_const_other_specs;
      Alcotest.test_case "controlled constant modadd (props 3.18/3.19)" `Quick
        test_modadd_const_controlled;
      Alcotest.test_case "two-sided comparator (thm 4.13)" `Quick test_in_range;
      Alcotest.test_case "wide randomized modadd" `Quick test_modadd_wide;
      Alcotest.test_case "near simulator limit (58 wires)" `Quick
        test_modadd_near_simulator_limit;
      Alcotest.test_case "builder scales wide" `Quick test_builder_scales_wide;
      Alcotest.test_case "all-VBE subroutine spec" `Quick
        test_modadd_all_vbe_spec;
      Alcotest.test_case "exhaustive n=4 sweep" `Quick test_modadd_exhaustive_n4;
      Alcotest.test_case "spec names" `Quick test_spec_names ] )
