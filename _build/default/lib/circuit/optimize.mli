(** Peephole circuit optimization.

    The paper repeatedly composes Fourier-basis blocks and cancels the
    adjacent IQFT/QFT pairs by hand ("The IQFT of Q_ADD cancels with the QFT
    of Q_COMP(p)...", proposition 3.7). This pass performs the same
    simplification mechanically on any circuit:

    - adjacent inverse gates cancel (X-X, H-H, CNOT-CNOT, Toffoli-Toffoli,
      SWAP-SWAP, CZ-CZ, and phase rotations with opposite angles), where
      "adjacent" means separated only by gates acting on disjoint wires;
    - rotations on the same wire(s) merge ([R(a) R(b) -> R(a+b)]) and vanish
      when the angle reduces to zero.

    Measurements and classically controlled blocks are optimization
    barriers: gates never move across them, and conditional bodies are
    optimized recursively in isolation, so the transformation commutes with
    every measurement outcome — optimized and original circuits are
    observationally identical (this is property-tested against the
    simulator). *)

val instrs : Instr.t list -> Instr.t list
(** Run the rewriting to a fixed point. *)

val circuit : Circuit.t -> Circuit.t
