lib/core/mbu.mli: Adder Builder Gate Mbu_circuit Register
