(* Tests for the circuit IR substrate: phases, gates, instructions, builder,
   counting, depth. *)

open Mbu_circuit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Phase *)

let test_phase_normalization () =
  check_bool "2/4 = 1/2" true Phase.(equal (make ~num:2 ~log2_den:2) (make ~num:1 ~log2_den:1));
  check_bool "full turn is zero" true Phase.(is_zero (make ~num:8 ~log2_den:3));
  check_bool "zero" true (Phase.is_zero Phase.zero);
  check_int "reduced denominator" 3 Phase.(log2_den (make ~num:2 ~log2_den:4));
  check_int "reduced numerator" 1 Phase.(num (make ~num:2 ~log2_den:4))

let test_phase_arith () =
  let open Phase in
  check_bool "theta2+theta2 = theta1" true (equal (add (theta 2) (theta 2)) (theta 1));
  check_bool "p + (-p) = 0" true (is_zero (add (theta 5) (neg (theta 5))));
  check_float "theta1 = pi" Float.pi (to_radians (theta 1));
  check_float "theta2 = pi/2" (Float.pi /. 2.) (to_radians (theta 2))

let prop_phase_add_assoc =
  let gen = QCheck.Gen.(pair (int_bound 63) (int_range 0 6)) in
  let arb =
    QCheck.make
      QCheck.Gen.(triple gen gen gen)
      ~print:(fun ((a, b), (c, d), (e, f)) ->
        Printf.sprintf "%d/2^%d %d/2^%d %d/2^%d" a b c d e f)
  in
  QCheck.Test.make ~name:"phase addition associative" ~count:200 arb
    (fun ((a, b), (c, d), (e, f)) ->
      let p = Phase.make ~num:a ~log2_den:b
      and q = Phase.make ~num:c ~log2_den:d
      and r = Phase.make ~num:e ~log2_den:f in
      Phase.(equal (add (add p q) r) (add p (add q r))))

(* ------------------------------------------------------------------ *)
(* Gate *)

let test_gate_adjoint () =
  let g = Gate.Cphase { control = 0; target = 1; phase = Phase.theta 3 } in
  check_bool "cphase adjoint adjoint = id" true Gate.(equal g (adjoint (adjoint g)));
  check_bool "toffoli self-adjoint" true
    Gate.(
      equal
        (Toffoli { c1 = 0; c2 = 1; target = 2 })
        (adjoint (Toffoli { c1 = 0; c2 = 1; target = 2 })))

let test_gate_validate () =
  Alcotest.check_raises "cnot same wire" (Invalid_argument "Gate: repeated wire")
    (fun () -> Gate.validate (Gate.Cnot { control = 3; target = 3 }));
  Alcotest.check_raises "negative wire" (Invalid_argument "Gate: negative wire")
    (fun () -> Gate.validate (Gate.X (-1)))

let test_gate_symmetry () =
  check_bool "cz symmetric" true Gate.(equal (Cz (0, 1)) (Cz (1, 0)));
  check_bool "toffoli control symmetric" true
    Gate.(
      equal
        (Toffoli { c1 = 0; c2 = 1; target = 2 })
        (Toffoli { c1 = 1; c2 = 0; target = 2 }))

(* ------------------------------------------------------------------ *)
(* Instr / Circuit *)

let test_instr_adjoint_reverses () =
  let instrs =
    [ Instr.Gate (Gate.X 0); Instr.Gate (Gate.Cnot { control = 0; target = 1 });
      Instr.Gate (Gate.Phase (1, Phase.theta 2)) ]
  in
  match Instr.adjoint instrs with
  | [ Instr.Gate (Gate.Phase (1, p)); Instr.Gate (Gate.Cnot _); Instr.Gate (Gate.X 0) ] ->
      check_bool "phase negated" true (Phase.equal p (Phase.neg (Phase.theta 2)))
  | _ -> Alcotest.fail "unexpected adjoint shape"

let test_instr_adjoint_rejects_measure () =
  Alcotest.check_raises "measurement not invertible"
    (Invalid_argument "Instr.adjoint: circuit contains a measurement")
    (fun () ->
      ignore (Instr.adjoint [ Instr.Measure { qubit = 0; bit = 0; reset = false } ]))

let test_circuit_widths () =
  let c = Circuit.make [ Instr.Gate (Gate.Cnot { control = 0; target = 5 }) ] in
  check_int "inferred qubits" 6 c.Circuit.num_qubits;
  Alcotest.check_raises "declared too narrow"
    (Invalid_argument "Circuit.make: declared width smaller than wires used")
    (fun () ->
      ignore (Circuit.make ~num_qubits:3 [ Instr.Gate (Gate.X 4) ]))

(* ------------------------------------------------------------------ *)
(* Builder *)

let test_builder_ancilla_reuse () =
  let b = Builder.create () in
  let r = Builder.fresh_register b "x" 3 in
  ignore r;
  let a1 = Builder.alloc_ancilla b in
  Builder.free_ancilla b a1;
  let a2 = Builder.alloc_ancilla b in
  check_int "ancilla reused" a1 a2;
  Builder.free_ancilla b a2;
  check_int "high-water mark" 4 (Builder.num_qubits b);
  check_int "inputs" 3 (Builder.input_qubits b);
  check_int "peak ancillas" 1 (Builder.ancilla_qubits b)

let test_builder_capture () =
  let b = Builder.create () in
  let q0 = Builder.fresh_qubit b and q1 = Builder.fresh_qubit b in
  Builder.x b q0;
  let (), captured = Builder.capture b (fun () -> Builder.cnot b ~control:q0 ~target:q1) in
  check_int "captured one instr" 1 (List.length captured);
  let c = Builder.to_circuit b in
  check_int "capture did not emit" 1 (Circuit.num_gates c)

let test_builder_emit_adjoint () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Builder.emit_adjoint b (fun () ->
      Builder.phase b q (Phase.theta 4);
      Builder.h b q);
  match (Builder.to_circuit b).Circuit.instrs with
  | [ Instr.Gate (Gate.H _); Instr.Gate (Gate.Phase (_, p)) ] ->
      check_bool "negated" true (Phase.equal p (Phase.neg (Phase.theta 4)))
  | _ -> Alcotest.fail "unexpected adjoint emission"

let test_builder_if_nesting () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  let bit = Builder.measure b q in
  Builder.if_bit b bit (fun () ->
      Builder.x b q;
      Builder.x b q);
  let c = Builder.to_circuit b in
  let worst = Circuit.counts ~mode:Counts.Worst c in
  let best = Circuit.counts ~mode:Counts.Best c in
  let expected = Circuit.counts ~mode:(Counts.Expected 0.5) c in
  check_float "worst X" 2. worst.Counts.x;
  check_float "best X" 0. best.Counts.x;
  check_float "expected X" 1. expected.Counts.x;
  check_float "measure counted" 1. worst.Counts.measure

(* ------------------------------------------------------------------ *)
(* Counts *)

let test_counts_nested_expectation () =
  (* An If inside an If weights by p^2. *)
  let body_inner = [ Instr.Gate (Gate.X 0) ] in
  let body_outer =
    [ Instr.Gate (Gate.Z 0); Instr.If_bit { bit = 1; value = true; body = body_inner } ]
  in
  let instrs =
    [ Instr.Measure { qubit = 0; bit = 0; reset = false };
      Instr.Measure { qubit = 0; bit = 1; reset = false };
      Instr.If_bit { bit = 0; value = true; body = body_outer } ]
  in
  let c = Counts.of_instrs ~mode:(Counts.Expected 0.5) instrs in
  check_float "z weighted 1/2" 0.5 c.Counts.z;
  check_float "x weighted 1/4" 0.25 c.Counts.x

let test_counts_qft_units () =
  let c = Counts.qft_gates 5 in
  check_float "qft_5 h" 5. c.Counts.h;
  check_float "qft_5 crot" 10. c.Counts.cphase;
  check_float "one qft unit" 1. (Counts.qft_units ~m:5 c)

(* ------------------------------------------------------------------ *)
(* Depth *)

let test_depth_serial_vs_parallel () =
  let serial =
    [ Instr.Gate (Gate.X 0); Instr.Gate (Gate.X 0); Instr.Gate (Gate.X 0) ]
  in
  let parallel =
    [ Instr.Gate (Gate.X 0); Instr.Gate (Gate.X 1); Instr.Gate (Gate.X 2) ]
  in
  check_float "serial depth" 3. (Depth.of_instrs ~mode:`Worst serial).Depth.total;
  check_float "parallel depth" 1. (Depth.of_instrs ~mode:`Worst parallel).Depth.total

let test_toffoli_depth () =
  let instrs =
    [ Instr.Gate (Gate.Toffoli { c1 = 0; c2 = 1; target = 2 });
      Instr.Gate (Gate.Cnot { control = 2; target = 3 });
      Instr.Gate (Gate.Toffoli { c1 = 3; c2 = 4; target = 5 });
      (* independent toffoli on fresh wires shares a layer with the first *)
      Instr.Gate (Gate.Toffoli { c1 = 6; c2 = 7; target = 8 }) ]
  in
  let d = Depth.of_instrs ~mode:`Worst instrs in
  check_float "toffoli depth chains through cnot" 2. d.Depth.toffoli;
  check_float "total depth" 3. d.Depth.total

let test_depth_conditional () =
  let instrs =
    [ Instr.Measure { qubit = 0; bit = 0; reset = false };
      Instr.If_bit
        { bit = 0; value = true; body = [ Instr.Gate (Gate.Z 1) ] } ]
  in
  let worst = Depth.of_instrs ~mode:`Worst instrs in
  let expected = Depth.of_instrs ~mode:(`Expected 0.5) instrs in
  check_float "worst: measure then z" 2. worst.Depth.total;
  check_float "expected: measure then half z" 1.5 expected.Depth.total

(* ------------------------------------------------------------------ *)

let suite =
  ( "circuit",
    [ Alcotest.test_case "phase normalization" `Quick test_phase_normalization;
      Alcotest.test_case "phase arithmetic" `Quick test_phase_arith;
      QCheck_alcotest.to_alcotest prop_phase_add_assoc;
      Alcotest.test_case "gate adjoint" `Quick test_gate_adjoint;
      Alcotest.test_case "gate validation" `Quick test_gate_validate;
      Alcotest.test_case "gate symmetry" `Quick test_gate_symmetry;
      Alcotest.test_case "instr adjoint reverses" `Quick test_instr_adjoint_reverses;
      Alcotest.test_case "instr adjoint rejects measure" `Quick
        test_instr_adjoint_rejects_measure;
      Alcotest.test_case "circuit widths" `Quick test_circuit_widths;
      Alcotest.test_case "builder ancilla reuse" `Quick test_builder_ancilla_reuse;
      Alcotest.test_case "builder capture" `Quick test_builder_capture;
      Alcotest.test_case "builder emit_adjoint" `Quick test_builder_emit_adjoint;
      Alcotest.test_case "builder if + count modes" `Quick test_builder_if_nesting;
      Alcotest.test_case "nested conditional expectation" `Quick
        test_counts_nested_expectation;
      Alcotest.test_case "qft units" `Quick test_counts_qft_units;
      Alcotest.test_case "depth serial vs parallel" `Quick
        test_depth_serial_vs_parallel;
      Alcotest.test_case "toffoli depth" `Quick test_toffoli_depth;
      Alcotest.test_case "conditional depth" `Quick test_depth_conditional ] )
