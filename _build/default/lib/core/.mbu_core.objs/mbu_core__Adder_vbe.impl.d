lib/core/adder_vbe.ml: Array Builder Mbu_circuit Register
