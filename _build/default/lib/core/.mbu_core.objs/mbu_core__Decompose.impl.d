lib/core/decompose.ml: Circuit Counts Gate Instr List Mbu_circuit Phase
