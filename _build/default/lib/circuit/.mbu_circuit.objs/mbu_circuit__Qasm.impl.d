lib/circuit/qasm.ml: Buffer Circuit Gate Instr List Phase Printf String
