(* End-to-end Shor factoring on the simulator.

   Everything the paper's circuits exist for, assembled: Hadamards on the
   exponent register, the modular-exponentiation ladder built from MBU-
   optimized controlled constant modular adders, the inverse QFT readout,
   and the classical continued-fraction post-processing. Runs the complete
   algorithm for N = 15 and N = 21 on the sparse simulator.

     dune exec examples/shor.exe *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

(* continued-fraction expansion of m / 2^t; returns the convergent
   denominators k_i (k_i = a_i k_{i-1} + k_{i-2}) *)
let convergent_denominators m t_bits =
  let rec go num den k_prev k_curr acc =
    if den = 0 || List.length acc > 12 then List.rev acc
    else
      let q = num / den in
      let k_next = (q * k_curr) + k_prev in
      go den (num mod den) k_curr k_next (k_next :: acc)
  in
  if m = 0 then [] else go m (1 lsl t_bits) 1 0 [] |> List.filter (fun d -> d > 0)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let pow_mod a e n =
  let rec go acc a e =
    if e = 0 then acc
    else go (if e land 1 = 1 then acc * a mod n else acc) (a * a mod n) (e lsr 1)
  in
  go 1 (a mod n) e

let order a n =
  let rec go r v = if v = 1 then r else go (r + 1) (v * a mod n) in
  go 1 (a mod n)

(* One Shor shot: returns the measured value of the exponent register. *)
let shor_circuit ~a ~n_val ~n_bits ~t_bits =
  let b = Builder.create () in
  let e = Builder.fresh_register b "e" t_bits in
  let x = Builder.fresh_register b "x" n_bits in
  Array.iter (fun q -> Builder.h b q) (Register.qubits e);
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_mixed in
  Mod_mul.modexp engine b ~a ~p:n_val ~e ~x;
  Qft.apply_inverse b e;
  let bits = Array.map (fun q -> Builder.measure b q) (Register.qubits e) in
  (b, e, x, bits)

let run_shor ~a ~n_val ~n_bits ~t_bits ~shots =
  Printf.printf "Factoring N = %d with a = %d (%d exponent qubits)\n" n_val a
    t_bits;
  let b, _, x, bits = shor_circuit ~a ~n_val ~n_bits ~t_bits in
  let circuit = Builder.to_circuit b in
  let init = Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (x, 1) ] in
  Printf.printf "  circuit: %d qubits, %d instructions\n"
    circuit.Circuit.num_qubits (Circuit.num_gates circuit);
  let found = Hashtbl.create 8 in
  let successes = ref 0 in
  for shot = 1 to shots do
    let r = Sim.run ~rng:(Random.State.make [| shot; 0x5407 |]) circuit ~init in
    (* the library QFT is the DFT composed with a bit reversal, so the
       standard Fourier outcome is read MSB-at-wire-0 *)
    let m =
      let v = ref 0 in
      for i = 0 to Array.length bits - 1 do
        v := (!v lsl 1) lor (if r.Sim.bits.(bits.(i)) then 1 else 0)
      done;
      !v
    in
    (* try every convergent denominator (and its double) as the period *)
    let candidates =
      List.concat_map (fun d -> [ d; 2 * d ]) (convergent_denominators m t_bits)
    in
    let hit =
      List.find_opt
        (fun r -> r > 0 && r <= n_val && pow_mod a r n_val = 1)
        candidates
    in
    match hit with
    | Some r when r mod 2 = 0 && pow_mod a (r / 2) n_val <> n_val - 1 ->
        let h = pow_mod a (r / 2) n_val in
        let f1 = gcd (h - 1) n_val and f2 = gcd (h + 1) n_val in
        if f1 > 1 && f1 < n_val then begin
          incr successes;
          Hashtbl.replace found (min f1 f2, max f1 f2) ()
        end
    | _ -> ()
  done;
  Printf.printf "  true order of %d mod %d: %d\n" a n_val (order a n_val);
  Printf.printf "  %d / %d shots produced a nontrivial factorization:\n"
    !successes shots;
  Hashtbl.iter
    (fun (f1, f2) () -> Printf.printf "    %d = %d x %d\n" n_val f1 f2)
    found;
  print_newline ()

let () =
  print_endline "=== Shor's algorithm, end to end on the sparse simulator ===\n";
  run_shor ~a:7 ~n_val:15 ~n_bits:4 ~t_bits:5 ~shots:20;
  run_shor ~a:2 ~n_val:21 ~n_bits:5 ~t_bits:6 ~shots:20;
  print_endline
    "Every modular multiplication above ran through the paper's controlled\n\
     constant modular adders with measurement-based uncomputation: the\n\
     comparator that erases each reduction flag executed, in expectation,\n\
     half the time."
