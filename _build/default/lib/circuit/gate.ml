type qubit = int

type t =
  | X of qubit
  | Z of qubit
  | H of qubit
  | Phase of qubit * Phase.t
  | Cnot of { control : qubit; target : qubit }
  | Cz of qubit * qubit
  | Swap of qubit * qubit
  | Toffoli of { c1 : qubit; c2 : qubit; target : qubit }
  | Cphase of { control : qubit; target : qubit; phase : Phase.t }

let qubits = function
  | X q | Z q | H q | Phase (q, _) -> [ q ]
  | Cnot { control; target } -> [ control; target ]
  | Cz (a, b) | Swap (a, b) -> [ a; b ]
  | Toffoli { c1; c2; target } -> [ c1; c2; target ]
  | Cphase { control; target; _ } -> [ control; target ]

let adjoint = function
  | (X _ | Z _ | H _ | Cnot _ | Cz _ | Swap _ | Toffoli _) as g -> g
  | Phase (q, p) -> Phase (q, Phase.neg p)
  | Cphase { control; target; phase } ->
      Cphase { control; target; phase = Phase.neg phase }

let map_qubits f = function
  | X q -> X (f q)
  | Z q -> Z (f q)
  | H q -> H (f q)
  | Phase (q, p) -> Phase (f q, p)
  | Cnot { control; target } -> Cnot { control = f control; target = f target }
  | Cz (a, b) -> Cz (f a, f b)
  | Swap (a, b) -> Swap (f a, f b)
  | Toffoli { c1; c2; target } -> Toffoli { c1 = f c1; c2 = f c2; target = f target }
  | Cphase { control; target; phase } ->
      Cphase { control = f control; target = f target; phase }

let validate g =
  let qs = qubits g in
  if List.exists (fun q -> q < 0) qs then invalid_arg "Gate: negative wire";
  let sorted = List.sort_uniq Stdlib.compare qs in
  if List.length sorted <> List.length qs then invalid_arg "Gate: repeated wire"

let is_toffoli = function Toffoli _ -> true | _ -> false

let equal a b =
  match a, b with
  | Cz (x, y), Cz (x', y') | Swap (x, y), Swap (x', y') ->
      (x = x' && y = y') || (x = y' && y = x')
  | Cphase { control = x; target = y; phase }, Cphase { control = x'; target = y'; phase = phase' } ->
      Phase.equal phase phase' && ((x = x' && y = y') || (x = y' && y = x'))
  | Toffoli { c1; c2; target }, Toffoli { c1 = c1'; c2 = c2'; target = t' } ->
      target = t' && ((c1 = c1' && c2 = c2') || (c1 = c2' && c2 = c1'))
  | _ -> a = b

let pp fmt = function
  | X q -> Format.fprintf fmt "X %d" q
  | Z q -> Format.fprintf fmt "Z %d" q
  | H q -> Format.fprintf fmt "H %d" q
  | Phase (q, p) -> Format.fprintf fmt "R(%a) %d" Phase.pp p q
  | Cnot { control; target } -> Format.fprintf fmt "CNOT %d -> %d" control target
  | Cz (a, b) -> Format.fprintf fmt "CZ %d %d" a b
  | Swap (a, b) -> Format.fprintf fmt "SWAP %d %d" a b
  | Toffoli { c1; c2; target } -> Format.fprintf fmt "TOF %d %d -> %d" c1 c2 target
  | Cphase { control; target; phase } ->
      Format.fprintf fmt "C-R(%a) %d -> %d" Phase.pp phase control target
