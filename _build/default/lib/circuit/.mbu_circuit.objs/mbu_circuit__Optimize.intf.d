lib/circuit/optimize.mli: Circuit Instr
