type t = {
  x : float;
  z : float;
  h : float;
  phase : float;
  cnot : float;
  cz : float;
  swap : float;
  toffoli : float;
  cphase : float;
  measure : float;
}

type mode = Worst | Best | Expected of float

let zero =
  { x = 0.; z = 0.; h = 0.; phase = 0.; cnot = 0.; cz = 0.; swap = 0.;
    toffoli = 0.; cphase = 0.; measure = 0. }

let add a b =
  { x = a.x +. b.x; z = a.z +. b.z; h = a.h +. b.h; phase = a.phase +. b.phase;
    cnot = a.cnot +. b.cnot; cz = a.cz +. b.cz; swap = a.swap +. b.swap;
    toffoli = a.toffoli +. b.toffoli; cphase = a.cphase +. b.cphase;
    measure = a.measure +. b.measure }

let scale k a =
  { x = k *. a.x; z = k *. a.z; h = k *. a.h; phase = k *. a.phase;
    cnot = k *. a.cnot; cz = k *. a.cz; swap = k *. a.swap;
    toffoli = k *. a.toffoli; cphase = k *. a.cphase; measure = k *. a.measure }

let of_gate = function
  | Gate.X _ -> { zero with x = 1. }
  | Gate.Z _ -> { zero with z = 1. }
  | Gate.H _ -> { zero with h = 1. }
  | Gate.Phase _ -> { zero with phase = 1. }
  | Gate.Cnot _ -> { zero with cnot = 1. }
  | Gate.Cz _ -> { zero with cz = 1. }
  | Gate.Swap _ -> { zero with swap = 1. }
  | Gate.Toffoli _ -> { zero with toffoli = 1. }
  | Gate.Cphase _ -> { zero with cphase = 1. }

let of_instrs ~mode instrs =
  let branch_weight =
    match mode with Worst -> 1. | Best -> 0. | Expected p -> p
  in
  (* Per-invocation memo for shared blocks: a node's counts are evaluated
     once at weight 1 and every reference scales that total by its own
     enclosing weight. When the weight is a power of two (always the case
     for Worst/Best and the canonical Expected 0.5 — nested If_bit
     halvings) and the per-gate unit contributions are integers, all
     intermediate sums are dyadic rationals far below 2^53 — float
     arithmetic is exact in any association and the memoized result is
     bit-identical to the inline tree walk. A non-dyadic branch weight
     (e.g. Expected 0.3) pollutes every accumulator with rounding, making
     w*k differ from k additions of w in the last ulp, so those modes fall
     back to the inline walk throughout. *)
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let use_memo = branch_weight = 0. || fst (Float.frexp branch_weight) = 0.5 in
  let rec count weight acc = function
    | [] -> acc
    | Instr.Gate g :: rest -> count weight (add acc (scale weight (of_gate g))) rest
    | Instr.Measure _ :: rest ->
        count weight (add acc (scale weight { zero with measure = 1. })) rest
    | Instr.If_bit { body; _ } :: rest ->
        let acc = count (weight *. branch_weight) acc body in
        count weight acc rest
    | Instr.Span { body; _ } :: rest ->
        let acc = count weight acc body in
        count weight acc rest
    | Instr.Call node :: rest ->
        if use_memo then
          let c =
            match Hashtbl.find_opt memo node.Instr.id with
            | Some c -> c
            | None ->
                let c = count 1. zero node.Instr.body in
                Hashtbl.add memo node.Instr.id c;
                c
          in
          let c = if weight = 1. then c else scale weight c in
          count weight (add acc c) rest
        else
          let acc = count weight acc node.Instr.body in
          count weight acc rest
  in
  count 1. zero instrs

let cnot_cz c = c.cnot +. c.cz
let two_qubit c = c.cnot +. c.cz +. c.swap +. c.cphase
let total_gates c = c.x +. c.z +. c.h +. c.phase +. two_qubit c +. c.toffoli

let qft_gates m =
  { zero with h = float_of_int m; cphase = float_of_int (m * (m - 1) / 2) }

let qft_units ~m c =
  let rot c = c.h +. c.phase +. c.cphase in
  rot c /. rot (qft_gates m)

let approx_equal ?(eps = 1e-9) a b =
  let close x y = Float.abs (x -. y) <= eps in
  close a.x b.x && close a.z b.z && close a.h b.h && close a.phase b.phase
  && close a.cnot b.cnot && close a.cz b.cz && close a.swap b.swap
  && close a.toffoli b.toffoli && close a.cphase b.cphase
  && close a.measure b.measure

let pp fmt c =
  let field name v =
    if v <> 0. then Some (Printf.sprintf "%s=%g" name v) else None
  in
  let fields =
    List.filter_map Fun.id
      [ field "Tof" c.toffoli; field "CNOT" c.cnot; field "CZ" c.cz;
        field "X" c.x; field "Z" c.z; field "H" c.h; field "R" c.phase;
        field "C-R" c.cphase; field "SWAP" c.swap; field "M" c.measure ]
  in
  Format.fprintf fmt "{%s}" (String.concat "; " fields)
