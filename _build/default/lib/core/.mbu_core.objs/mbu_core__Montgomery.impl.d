lib/core/montgomery.ml: Adder Array Builder Mbu_circuit Register
