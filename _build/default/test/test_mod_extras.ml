(* Remark 2.32 (unequal-width comparator), remark 3.3 (modular reduction
   with explicit flag), and modular subtraction. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let test_compare_unequal () =
  let n = 3 in
  List.iter
    (fun style ->
      for x_val = 0 to (1 lsl n) - 1 do
        for y_val = 0 to (1 lsl (n + 1)) - 1 do
          let b = Builder.create () in
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" (n + 1) in
          let t = Builder.fresh_register b "t" 1 in
          Adder.compare_unequal style b ~x ~y ~target:(Register.get t 0);
          let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val); (t, 0) ] in
          let msg =
            Printf.sprintf "%s x=%d y=%d" (Adder.style_name style) x_val y_val
          in
          Alcotest.(check int) msg
            (if x_val > y_val then 1 else 0)
            (value r.Sim.state t);
          Alcotest.(check int) (msg ^ " y kept") y_val (value r.Sim.state y);
          Alcotest.(check bool) (msg ^ " clean") true
            (Sim.wires_zero r.Sim.state ~except:[ x; y; t ])
        done
      done)
    [ Adder.Cdkpm; Adder.Gidney ]

let test_compare_unequal_single_extra_toffoli () =
  (* remark 2.32's cost claim: one Toffoli more than the controlled
     comparator baseline which itself is one more than the plain one *)
  let n = 16 in
  let tof build =
    let b = Builder.create () in
    build b;
    (Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b)).Counts.toffoli
  in
  let plain =
    tof (fun b ->
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        let t = Builder.fresh_register b "t" 1 in
        Adder.compare Adder.Cdkpm b ~x ~y ~target:(Register.get t 0))
  in
  let unequal =
    tof (fun b ->
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" (n + 1) in
        let t = Builder.fresh_register b "t" 1 in
        Adder.compare_unequal Adder.Cdkpm b ~x ~y ~target:(Register.get t 0))
  in
  Alcotest.(check (float 0.)) "exactly one extra toffoli" (plain +. 1.) unequal

let test_reduce () =
  let n = 3 in
  List.iter
    (fun (sname, spec) ->
      List.iter
        (fun p ->
          for x_val = 0 to (2 * p) - 1 do
            let b = Builder.create () in
            let x = Builder.fresh_register b "x" (n + 1) in
            let f = Builder.fresh_register b "f" 1 in
            Mod_add.reduce spec b ~p ~x ~flag:(Register.get f 0);
            let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (f, 0) ] in
            let msg = Printf.sprintf "%s p=%d x=%d" sname p x_val in
            Alcotest.(check int) msg (x_val mod p) (value r.Sim.state x);
            Alcotest.(check int) (msg ^ " flag")
              (if x_val >= p then 1 else 0)
              (value r.Sim.state f);
            Alcotest.(check bool) (msg ^ " clean") true
              (Sim.wires_zero r.Sim.state ~except:[ x; f ])
          done)
        [ 5; 7 ])
    [ ("cdkpm", Mod_add.spec_cdkpm); ("gidney", Mod_add.spec_gidney) ]

let test_modsub () =
  let n = 3 in
  List.iter
    (fun (sname, spec) ->
      List.iter
        (fun mbu ->
          List.iter
            (fun p ->
              for x_val = 0 to p - 1 do
                for y_val = 0 to p - 1 do
                  let b = Builder.create () in
                  let x = Builder.fresh_register b "x" n in
                  let y = Builder.fresh_register b "y" n in
                  Mod_add.modsub ~mbu spec b ~p ~x ~y;
                  let r =
                    Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ]
                  in
                  let msg =
                    Printf.sprintf "%s%s p=%d x=%d y=%d" sname
                      (if mbu then "+mbu" else "") p x_val y_val
                  in
                  Alcotest.(check int) msg
                    (((y_val - x_val) mod p + p) mod p)
                    (value r.Sim.state y);
                  Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x);
                  Alcotest.(check bool) (msg ^ " clean") true
                    (Sim.wires_zero r.Sim.state ~except:[ x; y ])
                done
              done)
            [ 5; 7 ])
        [ false; true ])
    [ ("cdkpm", Mod_add.spec_cdkpm); ("mixed", Mod_add.spec_mixed) ]

let test_modadd_modsub_roundtrip () =
  let n = 4 and p = 13 in
  for trial = 1 to 15 do
    let x_val = Random.State.int rng p and y_val = Random.State.int rng p in
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    Mod_add.modadd ~mbu:true Mod_add.spec_mixed b ~p ~x ~y;
    Mod_add.modsub ~mbu:true Mod_add.spec_mixed b ~p ~x ~y;
    let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
    Alcotest.(check int)
      (Printf.sprintf "trial %d" trial)
      y_val (value r.Sim.state y)
  done

let test_modsub_const () =
  let n = 3 and p = 7 in
  for a = 0 to p - 1 do
    for x_val = 0 to p - 1 do
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      Mod_add.modsub_const ~mbu:true Mod_add.spec_cdkpm b ~p ~a ~x;
      let r = Sim.run_builder ~rng b ~inits:[ (x, x_val) ] in
      Alcotest.(check int)
        (Printf.sprintf "a=%d x=%d" a x_val)
        (((x_val - a) mod p + p) mod p)
        (value r.Sim.state x)
    done
  done

let suite =
  ( "mod-extras",
    [ Alcotest.test_case "unequal comparator (remark 2.32)" `Quick
        test_compare_unequal;
      Alcotest.test_case "unequal comparator cost" `Quick
        test_compare_unequal_single_extra_toffoli;
      Alcotest.test_case "reduction with flag (remark 3.3)" `Quick test_reduce;
      Alcotest.test_case "modular subtraction" `Quick test_modsub;
      Alcotest.test_case "modadd/modsub roundtrip" `Quick
        test_modadd_modsub_roundtrip;
      Alcotest.test_case "constant modular subtraction" `Quick test_modsub_const ] )
