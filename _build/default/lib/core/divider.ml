open Mbu_circuit

let divmod_const style b ~d ~x ~quotient =
  let n = Register.length x in
  let k = Register.length quotient in
  if d < 1 then invalid_arg "Divider.divmod_const: divisor must be positive";
  if k < 1 then invalid_arg "Divider.divmod_const: empty quotient register";
  if n >= 62 || d lsl (k - 1) >= 1 lsl n then
    invalid_arg "Divider.divmod_const: d.2^(k-1) must fit the dividend";
  Builder.with_ancilla b (fun pad ->
      let xs = Register.extend x pad in
      for i = k - 1 downto 0 do
        let s = d lsl i in
        let qi = Register.get quotient i in
        (* q_i = [remainder >= s]; then subtract q_i . s — by construction
           the subtraction never underflows, so the pad stays |0>. *)
        Adder.compare_ge_const style b ~a:s ~x ~target:qi;
        Adder.sub_const_controlled style b ~ctrl:qi ~a:s ~y:xs
      done)
