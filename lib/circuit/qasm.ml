(* Serialization: one statement per line; conditional blocks use explicit
   braces on their own lines, so the parser can be a simple recursive
   line-reader. *)

let angle_to_string p =
  (* theta = 2 pi num / 2^k = pi * num / 2^(k-1) *)
  let num = Phase.num p and k = Phase.log2_den p in
  if num = 0 then "0"
  else if k = 0 then "pi*0/1"
  else Printf.sprintf "pi*%d/%d" num (1 lsl (k - 1))

let gate_to_string = function
  | Gate.X q -> Printf.sprintf "x q[%d];" q
  | Gate.Z q -> Printf.sprintf "z q[%d];" q
  | Gate.H q -> Printf.sprintf "h q[%d];" q
  | Gate.Phase (q, p) -> Printf.sprintf "p(%s) q[%d];" (angle_to_string p) q
  | Gate.Cnot { control; target } -> Printf.sprintf "cx q[%d], q[%d];" control target
  | Gate.Cz (a, b) -> Printf.sprintf "cz q[%d], q[%d];" a b
  | Gate.Swap (a, b) -> Printf.sprintf "swap q[%d], q[%d];" a b
  | Gate.Toffoli { c1; c2; target } ->
      Printf.sprintf "ccx q[%d], q[%d], q[%d];" c1 c2 target
  | Gate.Cphase { control; target; phase } ->
      Printf.sprintf "cp(%s) q[%d], q[%d];" (angle_to_string phase) control target

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  let line indent s =
    Buffer.add_string buf (String.make (2 * indent) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  line 0 "OPENQASM 3.0;";
  line 0 "include \"stdgates.inc\";";
  line 0 (Printf.sprintf "qubit[%d] q;" (max c.Circuit.num_qubits 1));
  line 0 (Printf.sprintf "bit[%d] c;" (max c.Circuit.num_bits 1));
  let rec emit indent = function
    | Instr.Gate g -> line indent (gate_to_string g)
    | Instr.Measure { qubit; bit; reset } ->
        line indent (Printf.sprintf "c[%d] = measure q[%d];" bit qubit);
        if reset then line indent (Printf.sprintf "reset q[%d];" qubit)
    | Instr.If_bit { bit; value; body } ->
        line indent
          (Printf.sprintf "if (c[%d] == %d) {" bit (if value then 1 else 0));
        List.iter (emit (indent + 1)) body;
        line indent "}"
    | Instr.Span { label; peak_ancillas; body } ->
        (* Spans ride along as structured comments: any OpenQASM 3 consumer
           skips them, while [of_string] reconstructs the span tree. *)
        line indent (Printf.sprintf "// span begin: %s (anc=%d)" label peak_ancillas);
        List.iter (emit (indent + 1)) body;
        line indent "// span end"
    | Instr.Call { body; _ } ->
        (* Serialization expands references: the text is the denoted
           program, byte-identical to the unshared build. *)
        List.iter (emit indent) body
  in
  List.iter (emit 0) c.Circuit.instrs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing the emitted subset *)

let fail_at lineno msg = failwith (Printf.sprintf "Qasm.of_string: line %d: %s" lineno msg)

let parse_angle lineno s =
  if s = "0" then Phase.zero
  else
    match String.split_on_char '*' s with
    | [ "pi"; frac ] -> (
        match String.split_on_char '/' frac with
        | [ num; den ] -> (
            match int_of_string_opt num, int_of_string_opt den with
            | Some num, Some den when den > 0 && den land (den - 1) = 0 ->
                let rec log2 d acc = if d = 1 then acc else log2 (d lsr 1) (acc + 1) in
                Phase.make ~num ~log2_den:(log2 den 0 + 1)
            | _ -> fail_at lineno ("bad angle " ^ s))
        | _ -> fail_at lineno ("bad angle " ^ s))
    | _ -> fail_at lineno ("bad angle " ^ s)

(* Extract all bracketed integers, e.g. "cx q[0], q[3];" -> [0; 3]. *)
let indices lineno s =
  let out = ref [] in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '[' ->
        let j = try String.index_from s !i ']' with Not_found -> fail_at lineno "unclosed [" in
        let num = String.sub s (!i + 1) (j - !i - 1) in
        (match int_of_string_opt num with
        | Some v -> out := v :: !out
        | None -> fail_at lineno ("bad index " ^ num));
        i := j
    | _ -> ());
    incr i
  done;
  List.rev !out

let paren_arg lineno s =
  match String.index_opt s '(', String.index_opt s ')' with
  | Some i, Some j when j > i -> String.sub s (i + 1) (j - i - 1)
  | _ -> fail_at lineno "missing (angle)"

let of_string text =
  let is_comment l = String.length l >= 2 && String.sub l 0 2 = "//" in
  let is_span_marker l =
    String.length l >= 8 && String.sub l 0 8 = "// span "
  in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) ->
           l <> "" && (is_span_marker l || not (is_comment l)))
  in
  let lines = ref lines in
  let peek () = match !lines with [] -> None | l :: _ -> Some l in
  let advance () = match !lines with [] -> () | _ :: rest -> lines := rest in
  let num_qubits = ref 0 and num_bits = ref 0 in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let rec parse_block acc =
    match peek () with
    | None -> List.rev acc
    | Some (_, "}") | Some (_, "// span end") ->
        advance ();
        List.rev acc
    | Some (lineno, l) ->
        advance ();
        let instr =
          if starts_with "// span begin: " l then begin
            let payload = String.sub l 15 (String.length l - 15) in
            (* "LABEL (anc=N)"; the suffix is optional for hand-written input *)
            let label, peak_ancillas =
              let rec find_suffix i =
                if i < 0 then None
                else if
                  i + 6 <= String.length payload
                  && String.sub payload i 6 = " (anc="
                then Some i
                else find_suffix (i - 1)
              in
              match find_suffix (String.length payload - 6) with
              | Some i
                when String.length payload > i + 6
                     && payload.[String.length payload - 1] = ')' -> (
                  let num =
                    String.sub payload (i + 6) (String.length payload - i - 7)
                  in
                  match int_of_string_opt num with
                  | Some anc -> (String.sub payload 0 i, anc)
                  | None -> (payload, 0))
              | _ -> (payload, 0)
            in
            let body = parse_block [] in
            Some (Instr.Span { label; peak_ancillas; body })
          end
          else if starts_with "OPENQASM" l || starts_with "include" l then None
          else if starts_with "qubit[" l then begin
            num_qubits := List.hd (indices lineno l);
            None
          end
          else if starts_with "bit[" l then begin
            num_bits := List.hd (indices lineno l);
            None
          end
          else if starts_with "if (" l then begin
            match indices lineno l with
            | [ bit ] ->
                let value =
                  if String.length l >= 4 && String.sub l (String.length l - 4) 4 = "1) {"
                  then true
                  else if String.sub l (String.length l - 4) 4 = "0) {" then false
                  else fail_at lineno "bad if condition"
                in
                let body = parse_block [] in
                Some (Instr.If_bit { bit; value; body })
            | _ -> fail_at lineno "bad if"
          end
          else if starts_with "c[" l && String.contains l '=' then begin
            match indices lineno l with
            | [ bit; qubit ] ->
                (* a following "reset q[qubit];" folds into the measure *)
                let reset =
                  match peek () with
                  | Some (_, r)
                    when r = Printf.sprintf "reset q[%d];" qubit ->
                      advance ();
                      true
                  | _ -> false
                in
                Some (Instr.Measure { qubit; bit; reset })
            | _ -> fail_at lineno "bad measure"
          end
          else
            let idx = indices lineno l in
            let g =
              if starts_with "x " l then Gate.X (List.nth idx 0)
              else if starts_with "z " l then Gate.Z (List.nth idx 0)
              else if starts_with "h " l then Gate.H (List.nth idx 0)
              else if starts_with "p(" l then
                Gate.Phase (List.nth idx 0, parse_angle lineno (paren_arg lineno l))
              else if starts_with "cx " l then
                Gate.Cnot { control = List.nth idx 0; target = List.nth idx 1 }
              else if starts_with "cz " l then Gate.Cz (List.nth idx 0, List.nth idx 1)
              else if starts_with "swap " l then Gate.Swap (List.nth idx 0, List.nth idx 1)
              else if starts_with "ccx " l then
                Gate.Toffoli
                  { c1 = List.nth idx 0; c2 = List.nth idx 1; target = List.nth idx 2 }
              else if starts_with "cp(" l then
                Gate.Cphase
                  { control = List.nth idx 0; target = List.nth idx 1;
                    phase = parse_angle lineno (paren_arg lineno l) }
              else fail_at lineno ("unsupported statement: " ^ l)
            in
            Some (Instr.Gate g)
        in
        let acc = match instr with Some i -> i :: acc | None -> acc in
        parse_block acc
  in
  let instrs = parse_block [] in
  Circuit.make ~num_qubits:!num_qubits ~num_bits:!num_bits instrs
