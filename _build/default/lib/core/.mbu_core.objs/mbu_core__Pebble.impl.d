lib/core/pebble.ml: Array Builder Fun List Mbu_circuit Printf Register Result
