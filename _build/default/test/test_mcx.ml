(* Multi-controlled gates via logical-AND ladders. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng

let test_mcx_exhaustive () =
  List.iter
    (fun k ->
      for v = 0 to (1 lsl (k + 1)) - 1 do
        for _ = 1 to 2 do
          let b = Builder.create () in
          let r = Builder.fresh_register b "r" (k + 1) in
          let controls = List.init k (Register.get r) in
          Mcx.apply b ~controls ~target:(Register.get r k);
          let res = Sim.run_builder ~rng b ~inits:[ (r, v) ] in
          let all_set = v land ((1 lsl k) - 1) = (1 lsl k) - 1 in
          let expect = if all_set then v lxor (1 lsl k) else v in
          Alcotest.(check int)
            (Printf.sprintf "k=%d v=%d" k v)
            expect
            (Sim.register_value_exn res.Sim.state r);
          Alcotest.(check bool) "clean" true
            (Sim.wires_zero res.Sim.state ~except:[ r ])
        done
      done)
    [ 0; 1; 2; 3; 4 ]

let test_mcz_phase () =
  (* |1..1> picks up -1; everything else untouched: verify on the uniform
     superposition *)
  let k = 3 in
  let b = Builder.create () in
  let r = Builder.fresh_register b "r" k in
  Array.iter (fun q -> Builder.h b q) (Register.qubits r);
  (match List.init k (Register.get r) with
  | target :: controls -> Mcx.apply_z b ~controls ~target
  | [] -> assert false);
  let res = Sim.run_builder ~rng b ~inits:[] in
  let amp sgn : Complex.t = { re = sgn /. sqrt 8.0; im = 0.0 } in
  let expected =
    State.of_alist ~num_qubits:(State.num_qubits res.Sim.state)
      (List.init 8 (fun v ->
           let idx = ref 0 in
           for i = 0 to k - 1 do
             if (v lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get r i)
           done;
           (!idx, amp (if v = 7 then -1.0 else 1.0))))
  in
  Alcotest.(check bool) "only |111> flipped" true
    (State.fidelity res.Sim.state expected > 1. -. 1e-9)

let test_mcx_cost () =
  (* k-controlled X: k-1 Toffoli-equivalents computed, none uncomputed *)
  let k = 10 in
  let b = Builder.create () in
  let r = Builder.fresh_register b "r" (k + 1) in
  Mcx.apply b ~controls:(List.init k (Register.get r)) ~target:(Register.get r k);
  let c = Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b) in
  Alcotest.(check (float 0.)) "k-1 toffoli" (float_of_int (k - 1)) c.Counts.toffoli;
  Alcotest.(check bool) "mbu erasures present" true (c.Counts.measure >= float_of_int (k - 1))

let suite =
  ( "mcx",
    [ Alcotest.test_case "mcx exhaustive" `Quick test_mcx_exhaustive;
      Alcotest.test_case "mcz phase" `Quick test_mcz_phase;
      Alcotest.test_case "cost k-1 toffoli" `Quick test_mcx_cost ] )
