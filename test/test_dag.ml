(* The hash-consed DAG IR: memoized metric passes (Counts, Depth, Trace,
   Instr.scan) must be observationally identical to the materialized tree
   the program denotes (Instr.expand_calls), sharing must actually occur on
   the workloads that motivated it, and the structural operations (share,
   adjoint, repeat) must respect node identity. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng

let modulus n =
  (1 lsl (n - 1)) lor (0b1010101 land ((1 lsl (n - 1)) - 1)) lor 1

(* Every circuit family that emits shared blocks somewhere in its call
   graph: the six Table-1 modular adders, the controlled modular
   multiply-add, QROM lookup/unlookup, and a compiled pebbling strategy. *)
let circuits () =
  let modadd name f =
    List.concat_map
      (fun mbu ->
        let n = 8 in
        let p = modulus n in
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        f ~mbu b ~p ~x ~y;
        [ (Printf.sprintf "%s mbu:%b" name mbu, Builder.to_circuit b) ])
      [ true; false ]
  in
  modadd "vbe5" (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_vbe_5adder ~mbu b ~p ~x ~y)
  @ modadd "vbe4" (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_vbe_4adder ~mbu b ~p ~x ~y)
  @ modadd "cdkpm" (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_cdkpm b ~p ~x ~y)
  @ modadd "gidney" (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_gidney b ~p ~x ~y)
  @ modadd "mixed" (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_mixed b ~p ~x ~y)
  @ modadd "draper" (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_draper ~mbu b ~p ~x ~y)
  @ [ ( "mod_mul",
        let n = 8 in
        let p = modulus n in
        let b = Builder.create () in
        let c = Builder.fresh_register b "c" 1 in
        let x = Builder.fresh_register b "x" n in
        let t = Builder.fresh_register b "t" n in
        Mod_mul.cmult_add
          (Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm)
          b ~ctrl:(Register.get c 0) ~a:(p / 3) ~p ~x ~target:t;
        Builder.to_circuit b );
      ( "qrom",
        let b = Builder.create () in
        let address = Builder.fresh_register b "a" 3 in
        let target = Builder.fresh_register b "t" 2 in
        let data = Array.init 8 (fun i -> (i * 5) land 3) in
        Qrom.lookup b ~address ~target ~data;
        Qrom.unlookup b ~address ~target ~data;
        Builder.to_circuit b );
      ( "pebble",
        let b = Builder.create () in
        let inp = Builder.fresh_register b "in" 1 in
        let chain = Array.init 6 (fun i -> (i land 1 = 0, i land 2 = 0)) in
        ignore
          (Pebble.compile b ~chain ~input:(Register.get inp 0)
             (Pebble.bennett ~chain_length:6));
        Builder.to_circuit b ) ]

(* The memoized passes vs the same pass on the expanded tree. Dyadic modes
   must agree bit-for-bit (the memo is only enabled when float sums are
   exact); non-dyadic Expected 0.3 takes the inline path and is trivially
   identical, but keep it in the matrix to pin that behaviour. *)
let test_metrics_match_tree () =
  List.iter
    (fun (name, c) ->
      let dag = c.Circuit.instrs in
      let tree = Instr.expand_calls dag in
      List.iter
        (fun (mname, mode) ->
          let msg = Printf.sprintf "%s/%s counts" name mname in
          Alcotest.(check bool)
            msg true
            (Counts.of_instrs ~mode dag = Counts.of_instrs ~mode tree))
        [ ("worst", Counts.Worst); ("best", Counts.Best);
          ("exp0.5", Counts.Expected 0.5); ("exp0.3", Counts.Expected 0.3) ];
      List.iter
        (fun (mname, mode) ->
          let d = Depth.of_instrs ~mode dag in
          let t = Depth.of_instrs ~mode tree in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s depth" name mname)
            true
            (d.Depth.total = t.Depth.total && d.Depth.toffoli = t.Depth.toffoli))
        [ ("worst", `Worst); ("exp0.5", `Expected 0.5) ];
      Alcotest.(check int) (name ^ " max_qubit") (Instr.max_qubit tree)
        (Instr.max_qubit dag);
      Alcotest.(check int) (name ^ " max_bit") (Instr.max_bit tree)
        (Instr.max_bit dag);
      Alcotest.(check int) (name ^ " count_instrs") (Instr.count_instrs tree)
        (Instr.count_instrs dag);
      Alcotest.(check int) (name ^ " count_spans") (Instr.count_spans tree)
        (Instr.count_spans dag);
      Alcotest.(check bool) (name ^ " is_unitary")
        (Instr.is_unitary tree) (Instr.is_unitary dag))
    (circuits ())

(* Trace profiles serialize identically whether walked through Call
   references (memoize + clock rebase) or on the materialized tree. *)
let test_trace_matches_tree () =
  List.iter
    (fun (name, c) ->
      let dag = c.Circuit.instrs in
      let tree = Instr.expand_calls dag in
      List.iter
        (fun span_depth ->
          List.iter
            (fun (mname, mode) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/%s span_depth:%b" name mname span_depth)
                (Trace.to_json (Trace.profile ~mode ~span_depth tree))
                (Trace.to_json (Trace.profile ~mode ~span_depth dag)))
            [ ("worst", Counts.Worst); ("exp0.5", Counts.Expected 0.5);
              ("exp0.3", Counts.Expected 0.3) ])
        [ true; false ])
    (circuits ())

(* QASM emission expands shared blocks in place: same text as the tree. *)
let test_qasm_matches_tree () =
  List.iter
    (fun (name, c) ->
      let tree =
        Circuit.make ~num_qubits:c.Circuit.num_qubits
          ~num_bits:c.Circuit.num_bits
          (Instr.expand_calls c.Circuit.instrs)
      in
      Alcotest.(check string) (name ^ " qasm") (Qasm.to_string tree)
        (Qasm.to_string c))
    (circuits ())

let rec has_call = function
  | [] -> false
  | Instr.Call _ :: _ -> true
  | (Instr.Gate _ | Instr.Measure _) :: rest -> has_call rest
  | (Instr.If_bit { body; _ } | Instr.Span { body; _ }) :: rest ->
      has_call body || has_call rest

(* Sharing actually happens on the workloads that motivated the IR — the
   DAG is strictly smaller than its expansion. *)
let test_sharing_occurs () =
  List.iter
    (fun name ->
      let c = List.assoc name (circuits ()) in
      Alcotest.(check bool) (name ^ " has Call nodes") true
        (has_call c.Circuit.instrs))
    [ "mod_mul"; "qrom"; "pebble" ]

(* Structurally equal bodies intern to the physically same node; distinct
   bodies do not. *)
let test_interning_canonical () =
  let body q = [ Instr.Gate (Gate.X q); Instr.Gate (Gate.H q) ] in
  let a = Instr.share (body 3) and b = Instr.share (body 3) in
  (match (a, b) with
  | Instr.Call na, Instr.Call nb ->
      Alcotest.(check bool) "same node" true (na == nb);
      Alcotest.(check int) "same id" na.Instr.id nb.Instr.id
  | _ -> Alcotest.fail "share did not return Call");
  match (Instr.share (body 3), Instr.share (body 4)) with
  | Instr.Call na, Instr.Call nb ->
      Alcotest.(check bool) "distinct bodies distinct nodes" false (na == nb)
  | _ -> Alcotest.fail "share did not return Call"

(* adjoint maps shared blocks to shared blocks, and double adjoint returns
   the original node (the adjoint pair is memoized both ways). *)
let test_adjoint_roundtrip () =
  let body =
    [ Instr.Gate (Gate.H 0); Instr.Gate (Gate.Cnot { control = 0; target = 1 });
      Instr.Gate (Gate.Phase (1, Phase.theta 3)) ]
  in
  let call = Instr.share body in
  let adj = Instr.adjoint [ call ] in
  (match adj with
  | [ Instr.Call _ ] -> ()
  | _ -> Alcotest.fail "adjoint of Call is not a Call");
  (match Instr.adjoint adj with
  | [ Instr.Call n ] ->
      let orig = match call with Instr.Call n -> n | _ -> assert false in
      Alcotest.(check bool) "double adjoint is the original node" true
        (n == orig)
  | _ -> Alcotest.fail "double adjoint shape");
  (* metric agreement through the adjoint, on a real circuit *)
  let c = List.assoc "mod_mul" (circuits ()) in
  if Circuit.is_unitary c then begin
    let adj = Circuit.adjoint c in
    let tree = Instr.expand_calls adj.Circuit.instrs in
    Alcotest.(check bool) "adjoint counts match tree" true
      (Counts.of_instrs ~mode:Counts.Worst adj.Circuit.instrs
      = Counts.of_instrs ~mode:Counts.Worst tree)
  end

(* Builder.repeat: k references to one interned body; counts scale by k and
   the simulated action equals emitting the body k times inline. *)
let test_repeat_semantics () =
  let build_repeat b reg =
    Builder.repeat b ~times:3 @@ fun () ->
    Builder.x b (Register.get reg 0);
    Builder.cnot b ~control:(Register.get reg 0) ~target:(Register.get reg 1)
  in
  let build_inline b reg =
    for _ = 1 to 3 do
      Builder.x b (Register.get reg 0);
      Builder.cnot b ~control:(Register.get reg 0) ~target:(Register.get reg 1)
    done
  in
  let run build v =
    let b = Builder.create () in
    let r = Builder.fresh_register b "r" 2 in
    build b r;
    let res = Sim.run_builder ~rng b ~inits:[ (r, v) ] in
    (Builder.to_circuit b, Sim.register_value_exn res.Sim.state r)
  in
  for v = 0 to 3 do
    let c_rep, out_rep = run build_repeat v in
    let c_inl, out_inl = run build_inline v in
    Alcotest.(check int) (Printf.sprintf "repeat sim v=%d" v) out_inl out_rep;
    Alcotest.(check bool) "repeat counts = 3x inline" true
      (Circuit.counts c_rep = Circuit.counts c_inl)
  done;
  (* single body, three references *)
  let b = Builder.create () in
  let r = Builder.fresh_register b "r" 2 in
  build_repeat b r;
  let calls =
    List.filter (function Instr.Call _ -> true | _ -> false)
      (Builder.to_circuit b).Circuit.instrs
  in
  Alcotest.(check int) "three Call references" 3 (List.length calls);
  (match calls with
  | Instr.Call a :: rest ->
      List.iter
        (function
          | Instr.Call n ->
              Alcotest.(check bool) "all references share one node" true
                (n == a)
          | _ -> ())
        rest
  | _ -> ());
  (* measuring bodies are rejected: a reference would replay classical bits *)
  (match
     let b = Builder.create () in
     let q = Builder.fresh_qubit b in
     Builder.repeat b ~times:2 (fun () -> ignore (Builder.measure b q))
   with
  | () -> Alcotest.fail "repeat should reject measuring bodies"
  | exception Mbu_error.Error e ->
      Alcotest.(check string) "repeat rejects measurements" "Builder.repeat"
        e.Mbu_error.subsystem)

(* Builder.shared is anonymous: no span wrapper, so rendered output is
   indistinguishable from inline emission. *)
let test_shared_anonymous () =
  let emit b q =
    Builder.x b q;
    Builder.h b q
  in
  let b1 = Builder.create () in
  let q1 = Builder.fresh_qubit b1 in
  Builder.shared b1 (fun () -> emit b1 q1);
  let b2 = Builder.create () in
  let q2 = Builder.fresh_qubit b2 in
  emit b2 q2;
  let c1 = Builder.to_circuit b1 and c2 = Builder.to_circuit b2 in
  Alcotest.(check bool) "shared emits a Call" true (has_call c1.Circuit.instrs);
  Alcotest.(check int) "no span added" (Instr.count_spans c2.Circuit.instrs)
    (Instr.count_spans c1.Circuit.instrs);
  Alcotest.(check string) "same qasm" (Qasm.to_string c2) (Qasm.to_string c1);
  (* emitting nothing pushes nothing *)
  let b3 = Builder.create () in
  Builder.shared b3 (fun () -> ());
  Alcotest.(check int) "empty shared emits nothing" 0
    (List.length (Builder.to_circuit b3).Circuit.instrs)

let suite =
  ( "dag",
    [ Alcotest.test_case "metrics match expanded tree" `Quick
        test_metrics_match_tree;
      Alcotest.test_case "trace matches expanded tree" `Quick
        test_trace_matches_tree;
      Alcotest.test_case "qasm matches expanded tree" `Quick
        test_qasm_matches_tree;
      Alcotest.test_case "sharing occurs on mod_mul/qrom/pebble" `Quick
        test_sharing_occurs;
      Alcotest.test_case "interning is canonical" `Quick
        test_interning_canonical;
      Alcotest.test_case "adjoint of shared round-trips" `Quick
        test_adjoint_roundtrip;
      Alcotest.test_case "repeat references one node" `Quick
        test_repeat_semantics;
      Alcotest.test_case "anonymous shared is invisible" `Quick
        test_shared_anonymous ] )
