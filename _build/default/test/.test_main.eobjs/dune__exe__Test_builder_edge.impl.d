test/test_builder_edge.ml: Alcotest Builder Circuit Mbu_circuit Register
