lib/core/logical_and.ml: Builder Mbu_circuit
