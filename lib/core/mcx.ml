open Mbu_circuit

(* Conjunction ladder: fold the controls pairwise into fresh AND ancillas,
   erased in reverse by MBU. The compute ladder is measurement-free and
   emitted as one shared block, so repeated applications of the same
   multi-controlled gate (e.g. a Grover oracle iterated k times) intern it
   once; the uncompute ladder measures and stays per-occurrence. *)
let with_conjunction b ~controls f =
  match controls with
  | [] ->
      (* empty conjunction is true: use a borrowed |1> wire *)
      Builder.with_ancilla b (fun w ->
          Builder.x b w;
          let r = f w in
          Builder.x b w;
          r)
  | [ c ] -> f c
  | c1 :: c2 :: rest ->
      (* One AND ancilla per folded control; triples in compute order. *)
      let triples = ref [] in
      let top =
        List.fold_left
          (fun prev c ->
            let t = Builder.alloc_ancilla b in
            triples := (prev, c, t) :: !triples;
            t)
          c1 (c2 :: rest)
      in
      let compute_order = List.rev !triples in
      Builder.with_shared b "mcx.compute" (fun () ->
          List.iter
            (fun (a, c, t) -> Logical_and.compute b ~c1:a ~c2:c ~target:t)
            compute_order);
      let r = f top in
      Builder.with_span b "mcx.uncompute" (fun () ->
          List.iter
            (fun (a, c, t) -> Logical_and.uncompute b ~c1:a ~c2:c ~target:t)
            !triples);
      List.iter (fun (_, _, t) -> Builder.free_ancilla b t) !triples;
      r

let apply b ~controls ~target =
  match controls with
  | [] -> Builder.x b target
  | [ c ] -> Builder.cnot b ~control:c ~target
  | controls ->
      Builder.with_span b "mcx" (fun () ->
          with_conjunction b ~controls (fun w -> Builder.cnot b ~control:w ~target))

let apply_z b ~controls ~target =
  match controls with
  | [] -> Builder.z b target
  | [ c ] -> Builder.cz b c target
  | controls ->
      Builder.with_span b "mcz" (fun () ->
          with_conjunction b ~controls (fun w -> Builder.cz b w target))
