(* Benchmark harness: regenerates every table of the paper's evaluation
   (tables 1-6), validates the "in expectation" cost model by Monte-Carlo,
   reports the headline MBU savings (count and Toffoli depth), the two-sided
   comparator, and the modular-multiplication extension. Finishes with
   Bechamel wall-clock micro-benchmarks (one per table/experiment).

     dune exec bench/main.exe *)

open Mbu_circuit
open Mbu_core

let fpf = Format.printf

let header title =
  fpf "@.=============================================================@.";
  fpf "%s@." title;
  fpf "=============================================================@."

(* A modulus with a mixed bit pattern, so the |p| terms of table 1 are
   non-trivial: top bit set, alternating low bits, odd. *)
let modulus n = (1 lsl (n - 1)) lor (0x15555555555555 land ((1 lsl (n - 1)) - 1)) lor 1

let pv v = if Float.is_nan v then "      -" else Printf.sprintf "%7.1f" v

(* ------------------------------------------------------------------ *)
(* Table 1 *)

type t1_builder = mbu:bool -> p:int -> n:int -> Builder.t -> unit

let modadd_builder f : t1_builder =
 fun ~mbu ~p ~n b ->
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  f ~mbu b ~p ~x ~y

let t1_builders : (string * t1_builder) list =
  [ ("(5 adder) VBE", modadd_builder (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_vbe_5adder ~mbu b ~p ~x ~y));
    ("(4 adder) VBE", modadd_builder (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_vbe_4adder ~mbu b ~p ~x ~y));
    ("CDKPM", modadd_builder (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_cdkpm b ~p ~x ~y));
    ("Gidney", modadd_builder (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_gidney b ~p ~x ~y));
    ("CDKPM+Gidney", modadd_builder (fun ~mbu b ~p ~x ~y -> Mod_add.modadd ~mbu Mod_add.spec_mixed b ~p ~x ~y));
    ("Draper", modadd_builder (fun ~mbu b ~p ~x ~y -> Mod_add.modadd_draper ~mbu b ~p ~x ~y)) ]

let measure_t1 (build : t1_builder) ~mbu ~n ~p =
  Resources.measure ~n ~build:(fun b -> build ~mbu ~p ~n b) ()

let table1 () =
  header "Table 1 - modular addition: paper formulas vs measured circuits";
  List.iter
    (fun n ->
      let p = modulus n in
      let hp = Mbu_bitstring.Bitstring.hamming_weight_int p in
      let params = Formulas.{ n; hp; ha = 0 } in
      fpf "@.n = %d, p = %d (|p| = %d); counts in expectation (MBU blocks at 1/2)@." n p hp;
      fpf "  %-15s %-4s | %15s | %15s | %15s | %15s | %13s@." "row" "MBU"
        "Toffoli" "CNOT+CZ" "X" "qubits" "QFT units";
      fpf "  %-15s %-4s | %7s %7s | %7s %7s | %7s %7s | %7s %7s | %6s %6s@."
        "" "" "paper" "meas" "paper" "meas" "paper" "meas" "paper" "meas"
        "paper" "meas";
      List.iter2
        (fun (name, build) (row : Formulas.t1_row) ->
          assert (row.Formulas.t1_name = name);
          List.iter
            (fun mbu ->
              let paper = row.Formulas.t1_cost ~mbu params in
              let m = measure_t1 build ~mbu ~n ~p in
              fpf "  %-15s %-4s | %s %s | %s %s | %s %s | %s %s | %6s %6.2f@."
                (if mbu then "" else name)
                (if mbu then "yes" else "no")
                (pv paper.Formulas.toffoli) (pv m.Resources.toffoli)
                (pv paper.Formulas.cnot_cz) (pv m.Resources.cnot_cz)
                (pv paper.Formulas.x) (pv m.Resources.x)
                (pv paper.Formulas.qubits)
                (pv (float_of_int m.Resources.qubits))
                (if Float.is_nan paper.Formulas.qft_units then "-"
                 else Printf.sprintf "%6.1f" paper.Formulas.qft_units)
                m.Resources.qft_units)
            [ false; true ])
        t1_builders
        (List.filteri (fun i _ -> i < 6) Formulas.table1);
      (* Draper (expect): amortize away the opening QFT and closing IQFT. *)
      let expect_row = List.nth Formulas.table1 6 in
      List.iter
        (fun mbu ->
          let paper = expect_row.Formulas.t1_cost ~mbu params in
          let m = measure_t1 (List.assoc "Draper" t1_builders) ~mbu ~n ~p in
          fpf "  %-15s %-4s | %39s amortized | %7s | %6.1f %6.2f@."
            (if mbu then "" else "Draper (expect)")
            (if mbu then "yes" else "no") ""
            (pv paper.Formulas.qubits)
            paper.Formulas.qft_units
            (m.Resources.qft_units -. 2.))
        [ false; true ])
    [ 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* Tables 2-6 *)

let print_small_table ~title ~rows ~builders ~ns ~params_of =
  header title;
  List.iter
    (fun n ->
      let params = params_of n in
      fpf "@.n = %d@." n;
      fpf "  %-10s | %7s %7s | %7s %7s | %7s %7s | %6s %6s@." "row" "Tof"
        "meas" "CNOT+CZ" "meas" "anc" "meas" "QFTu" "meas";
      List.iter2
        (fun (row : Formulas.row) (name, build) ->
          assert (row.Formulas.row_name = name);
          let paper = row.Formulas.row_cost params in
          let m : Resources.t = build n in
          fpf "  %-10s | %s %s | %s %s | %s %7d | %6s %6.2f@." name
            (pv paper.Formulas.toffoli) (pv m.Resources.toffoli)
            (pv paper.Formulas.cnot_cz) (pv m.Resources.cnot_cz)
            (pv paper.Formulas.ancillas) m.Resources.ancillas
            (if Float.is_nan paper.Formulas.qft_units then "-"
             else Printf.sprintf "%6.1f" paper.Formulas.qft_units)
            m.Resources.qft_units)
        rows builders)
    ns

let measure_build ~n build = Resources.measure ~n ~build ()

(* Table 1 at widths the int-constant API cannot reach: Bitstring moduli. *)
let table1_big () =
  header "Table 1 at cryptographic widths (arbitrary-precision moduli)";
  let big_modulus n =
    Mbu_bitstring.Bitstring.init n (fun i ->
        i = 0 || i = n - 1 || (i * 2654435761) land 0x40000 <> 0)
  in
  fpf "  %-14s %6s %-4s | %10s %10s | %10s | %8s@." "row" "n" "MBU"
    "Tof paper" "Tof meas" "CNOT+CZ" "qubits";
  List.iter
    (fun n ->
      let p = big_modulus n in
      let hp = Mbu_bitstring.Bitstring.hamming_weight p in
      let params = Formulas.{ n; hp; ha = 0 } in
      List.iter
        (fun (name, spec, formula) ->
          List.iter
            (fun mbu ->
              let r =
                measure_build ~n (fun b ->
                    let x = Builder.fresh_register b "x" n in
                    let y = Builder.fresh_register b "y" n in
                    Mod_add.modadd_big ~mbu spec b ~p ~x ~y)
              in
              let paper = (formula ~mbu params : Formulas.cost) in
              fpf "  %-14s %6d %-4s | %10.0f %10.0f | %10.0f | %8d@."
                (if mbu then "" else name)
                n
                (if mbu then "yes" else "no")
                paper.Formulas.toffoli r.Resources.toffoli r.Resources.cnot_cz
                r.Resources.qubits)
            [ false; true ])
        [ ("CDKPM", Mod_add.spec_cdkpm, Formulas.modadd_cdkpm);
          ("Gidney", Mod_add.spec_gidney, Formulas.modadd_gidney);
          ("CDKPM+Gidney", Mod_add.spec_mixed, Formulas.modadd_mixed) ])
    [ 128; 1024; 2048 ]



let table2 () =
  let adder style n =
    measure_build ~n (fun b ->
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" (n + 1) in
        Adder.add style b ~x ~y)
  in
  print_small_table ~title:"Table 2 - plain adders"
    ~rows:Formulas.table2_plain_adders
    ~builders:
      [ ("VBE", adder Adder.Vbe); ("CDKPM", adder Adder.Cdkpm);
        ("Gidney", adder Adder.Gidney); ("Draper", adder Adder.Draper) ]
    ~ns:[ 8; 16; 32 ]
    ~params_of:(fun n -> Formulas.{ n; hp = 0; ha = 0 })

let table3 () =
  let cadder style n =
    measure_build ~n (fun b ->
        let c = Builder.fresh_register b "c" 1 in
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" (n + 1) in
        Adder.add_controlled style b ~ctrl:(Register.get c 0) ~x ~y)
  in
  print_small_table ~title:"Table 3 - controlled adders"
    ~rows:Formulas.table3_controlled_adders
    ~builders:
      [ ("CDKPM", cadder Adder.Cdkpm); ("Gidney", cadder Adder.Gidney);
        ("Draper", cadder Adder.Draper) ]
    ~ns:[ 8; 16; 32 ]
    ~params_of:(fun n -> Formulas.{ n; hp = 0; ha = 0 })

let table4 () =
  let cadder style n =
    measure_build ~n (fun b ->
        let y = Builder.fresh_register b "y" (n + 1) in
        Adder.add_const style b ~a:(modulus n / 3) ~y)
  in
  print_small_table ~title:"Table 4 - adders by a constant"
    ~rows:Formulas.table4_const_adders
    ~builders:
      [ ("CDKPM", cadder Adder.Cdkpm); ("Gidney", cadder Adder.Gidney);
        ("Draper", cadder Adder.Draper) ]
    ~ns:[ 8; 16; 32 ]
    ~params_of:(fun n ->
      Formulas.{ n; hp = 0;
                 ha = Mbu_bitstring.Bitstring.hamming_weight_int (modulus n / 3) })

let table5 () =
  let cadder style n =
    measure_build ~n (fun b ->
        let c = Builder.fresh_register b "c" 1 in
        let y = Builder.fresh_register b "y" (n + 1) in
        Adder.add_const_controlled style b ~ctrl:(Register.get c 0)
          ~a:(modulus n / 3) ~y)
  in
  print_small_table ~title:"Table 5 - controlled adders by a constant"
    ~rows:Formulas.table5_controlled_const_adders
    ~builders:
      [ ("CDKPM", cadder Adder.Cdkpm); ("Gidney", cadder Adder.Gidney);
        ("Draper", cadder Adder.Draper) ]
    ~ns:[ 8; 16; 32 ]
    ~params_of:(fun n ->
      Formulas.{ n; hp = 0;
                 ha = Mbu_bitstring.Bitstring.hamming_weight_int (modulus n / 3) })

let table6 () =
  let cmp style n =
    measure_build ~n (fun b ->
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        let t = Builder.fresh_register b "t" 1 in
        Adder.compare style b ~x ~y ~target:(Register.get t 0))
  in
  print_small_table ~title:"Table 6 - comparators"
    ~rows:Formulas.table6_comparators
    ~builders:
      [ ("CDKPM", cmp Adder.Cdkpm); ("Gidney", cmp Adder.Gidney);
        ("Draper", cmp Adder.Draper) ]
    ~ns:[ 8; 16; 32 ]
    ~params_of:(fun n -> Formulas.{ n; hp = 0; ha = 0 })

(* ------------------------------------------------------------------ *)
(* E-MBU: Monte-Carlo validation of the expectation cost model *)

let experiment_monte_carlo () =
  header "E-MBU: Monte-Carlo vs analytic expected Toffoli counts";
  fpf "  circuit                analytic   empirical(1000 shots)   rel.err@.";
  let run name analytic_build mc_build =
    let analytic =
      (Resources.measure ~n:4 ~build:analytic_build ()).Resources.toffoli
    in
    let empirical = Resources.monte_carlo_toffoli ~shots:1000 ~build:mc_build () in
    fpf "  %-22s %8.2f   %8.2f                %6.3f@." name analytic empirical
      (Float.abs (empirical -. analytic) /. Float.max analytic 1.)
  in
  let p = 13 in
  List.iter
    (fun (name, spec) ->
      run
        (Printf.sprintf "modadd %s + mbu" name)
        (fun b ->
          let x = Builder.fresh_register b "x" 4 in
          let y = Builder.fresh_register b "y" 4 in
          Mod_add.modadd ~mbu:true spec b ~p ~x ~y)
        (fun b ->
          let x = Builder.fresh_register b "x" 4 in
          let y = Builder.fresh_register b "y" 4 in
          Mod_add.modadd ~mbu:true spec b ~p ~x ~y;
          [ (x, 7); (y, 11) ]))
    [ ("cdkpm", Mod_add.spec_cdkpm); ("gidney", Mod_add.spec_gidney);
      ("mixed", Mod_add.spec_mixed) ];
  run "gidney plain adder"
    (fun b ->
      let x = Builder.fresh_register b "x" 4 in
      let y = Builder.fresh_register b "y" 5 in
      Adder_gidney.add b ~x ~y)
    (fun b ->
      let x = Builder.fresh_register b "x" 4 in
      let y = Builder.fresh_register b "y" 5 in
      Adder_gidney.add b ~x ~y;
      [ (x, 9); (y, 12) ])

(* ------------------------------------------------------------------ *)
(* E-SAVE: headline savings in Toffoli count and depth *)

let experiment_savings () =
  header "E-SAVE: MBU savings, expected Toffoli count and Toffoli depth (n = 32)";
  let n = 32 in
  let p = modulus n in
  fpf "  %-15s | %9s %9s %7s | %9s %9s %7s@." "modular adder" "Tof" "Tof+MBU"
    "saved" "TofDepth" "TD+MBU" "saved";
  List.iter
    (fun (name, build) ->
      let m mbu = measure_t1 build ~mbu ~n ~p in
      let a = m false and b' = m true in
      let pc x y = 100. *. (x -. y) /. x in
      if name = "Draper" then
        (* QFT-based: the cost unit is rotations, reported in QFT units. *)
        fpf "  %-15s | %8.1fu %8.1fu %6.1f%% | %9s %9s %7s@." name
          a.Resources.qft_units b'.Resources.qft_units
          (pc a.Resources.qft_units b'.Resources.qft_units)
          "-" "-" "-"
      else
        fpf "  %-15s | %9.1f %9.1f %6.1f%% | %9.1f %9.1f %6.1f%%@." name
          a.Resources.toffoli b'.Resources.toffoli
          (pc a.Resources.toffoli b'.Resources.toffoli)
          a.Resources.toffoli_depth b'.Resources.toffoli_depth
          (pc a.Resources.toffoli_depth b'.Resources.toffoli_depth))
    t1_builders;
  fpf "@.  Paper's claim: 10-15%% for the VBE-architecture rows, ~25%% for@.";
  fpf "  the Beauregard-style circuits (QFT-unit content, see table 1).@."

(* ------------------------------------------------------------------ *)
(* E-2SC: two-sided comparator *)

let experiment_two_sided () =
  header "E-2SC: two-sided comparator (theorem 4.13)";
  fpf "  %4s | %9s %9s | %9s %9s | %7s@." "n" "paper" "meas" "paper+MBU"
    "meas+MBU" "saved";
  List.iter
    (fun n ->
      let build mbu =
        measure_build ~n (fun b ->
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" n in
            let z = Builder.fresh_register b "z" n in
            let t = Builder.fresh_register b "t" 1 in
            Mbu.in_range ~mbu Adder.Cdkpm b ~x ~y ~z ~target:(Register.get t 0))
      in
      let params = Formulas.{ n; hp = 0; ha = 0 } in
      let fp mbu = (Formulas.in_range ~mbu params).Formulas.toffoli in
      let a = build false and b' = build true in
      fpf "  %4d | %9.1f %9.1f | %9.1f %9.1f | %6.1f%%@." n (fp false)
        a.Resources.toffoli (fp true) b'.Resources.toffoli
        (100. *. (a.Resources.toffoli -. b'.Resources.toffoli) /. a.Resources.toffoli))
    [ 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E-MODMUL: the extension *)

let experiment_modmul () =
  header "E-MODMUL: controlled modular multiplier built on the paper's adders";
  fpf "  %4s %-16s | %10s %10s %7s | %7s@." "n" "engine" "Tof" "Tof+MBU"
    "saved" "qubits";
  List.iter
    (fun n ->
      let p = modulus n in
      List.iter
        (fun (ename, engine_of) ->
          let m mbu =
            measure_build ~n (fun b ->
                let c = Builder.fresh_register b "c" 1 in
                let x = Builder.fresh_register b "x" n in
                let t = Builder.fresh_register b "t" n in
                Mod_mul.cmult_add (engine_of mbu) b ~ctrl:(Register.get c 0)
                  ~a:(p / 3) ~p ~x ~target:t)
          in
          let a = m false and b' = m true in
          fpf "  %4d %-16s | %10.0f %10.0f %6.1f%% | %7d@." n ename
            a.Resources.toffoli b'.Resources.toffoli
            (100. *. (a.Resources.toffoli -. b'.Resources.toffoli) /. a.Resources.toffoli)
            b'.Resources.qubits)
        [ ("ripple mixed", fun mbu -> Mod_mul.ripple_engine ~mbu Mod_add.spec_mixed);
          ("ripple cdkpm", fun mbu -> Mod_mul.ripple_engine ~mbu Mod_add.spec_cdkpm) ];
      (* windowed ladder (Gid19c): lookup + register modadd + MBU unlookup *)
      let m mbu =
        measure_build ~n (fun b ->
            let c = Builder.fresh_register b "c" 1 in
            let x = Builder.fresh_register b "x" n in
            let t = Builder.fresh_register b "t" n in
            Mod_mul.cmult_add_windowed ~window:4 ~mbu Mod_add.spec_cdkpm b
              ~ctrl:(Register.get c 0) ~a:(p / 3) ~p ~x ~target:t)
      in
      let a = m false and b' = m true in
      fpf "  %4d %-16s | %10.0f %10.0f %6.1f%% | %7d@." n "windowed w=4"
        a.Resources.toffoli b'.Resources.toffoli
        (100. *. (a.Resources.toffoli -. b'.Resources.toffoli) /. a.Resources.toffoli)
        b'.Resources.qubits;
      (* Montgomery REDC: no comparator at all, at the price of n explicit
         garbage bits the caller must uncompute *)
      let mont =
        measure_build ~n (fun b ->
            let x = Builder.fresh_register b "x" n in
            let acc = Builder.fresh_register b "acc" (n + 2) in
            let q = Builder.fresh_register b "q" n in
            ignore
              (Montgomery.mul_const_redc Adder.Cdkpm b ~a:(p / 3) ~p ~x ~acc
                 ~quotient:q))
      in
      fpf "  %4d %-16s | %10.0f %10s %7s | %7d  (+%d garbage bits)@." n
        "montgomery" mont.Resources.toffoli "-" "-" mont.Resources.qubits n)
    [ 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E-QROM: lookup vs measurement-based unlookup (related-work sqrt(L)) *)

let experiment_qrom () =
  header "E-QROM: table lookup vs measurement-based unlookup (w = 1)";
  fpf "  %4s %6s | %10s | %12s | %12s@." "k" "L" "lookup Tof" "naive unTof"
    "MBU unTof";
  List.iter
    (fun k ->
      let data =
        Array.init (1 lsl k) (fun i -> (i * 37 + 11) land 1)
      in
      let tof build =
        (measure_build ~n:k (fun b ->
             let address = Builder.fresh_register b "a" k in
             let target = Builder.fresh_register b "t" 1 in
             build b ~address ~target))
          .Resources.toffoli
      in
      fpf "  %4d %6d | %10.0f | %12.0f | %12.1f@." k (1 lsl k)
        (tof (fun b ~address ~target -> Qrom.lookup b ~address ~target ~data))
        (tof (fun b ~address ~target ->
             Qrom.unlookup_via_lookup b ~address ~target ~data))
        (tof (fun b ~address ~target -> Qrom.unlookup b ~address ~target ~data)))
    [ 4; 6; 8; 10; 12 ];
  fpf "  (expected shapes: lookup ~ L, naive ~ L, MBU ~ 3 sqrt(L) / 2)@."

(* ------------------------------------------------------------------ *)
(* E-COSET: Zalka/Gid19a coset encoding *)

let experiment_coset () =
  header "E-COSET: coset-encoded modular addition (Zal06/Gid19a, section 1.2)";
  fpf "  %4s %4s | %12s | %14s | %14s@." "n" "pad" "prep (Tof)" "add/enc (Tof)"
    "direct modadd";
  List.iter
    (fun n ->
      let pad = 6 in
      let p = modulus n in
      let prep =
        (measure_build ~n (fun b ->
             let reg = Builder.fresh_register b "v" (n + pad) in
             Coset.prepare Adder.Cdkpm b ~p ~pad reg))
          .Resources.toffoli
      in
      let enc_add =
        (measure_build ~n (fun b ->
             let reg = Builder.fresh_register b "v" (n + pad) in
             Coset.add_const Adder.Cdkpm b ~a:(p / 3) reg))
          .Resources.toffoli
      in
      let direct =
        (measure_build ~n (fun b ->
             let x = Builder.fresh_register b "x" n in
             Mod_add.modadd_const ~mbu:true Mod_add.spec_cdkpm b ~p ~a:(p / 3) ~x))
          .Resources.toffoli
      in
      fpf "  %4d %4d | %12.1f | %14.1f | %14.1f@." n pad prep enc_add direct)
    [ 8; 16; 32 ];
  fpf "  (prep amortizes over many additions; each encoded addition is one@.";
  fpf "   plain adder vs a full compare-and-correct modular adder; the@.";
  fpf "   outcome-1 phase fixes during prep run with probability 1/2 each)@."

(* ------------------------------------------------------------------ *)
(* E-TCOUNT: Clifford+T accounting ("halving the cost of quantum addition") *)

let experiment_tcount () =
  header "E-TCOUNT: plain adders in T gates (7-T Toffoli; figure 10's 4-T AND)";
  fpf "  %4s | %10s %10s %10s@." "n" "VBE (7T)" "CDKPM (7T)" "Gidney (4T)";
  List.iter
    (fun n ->
      let t_of style ~fresh =
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" (n + 1) in
        Adder.add style b ~x ~y;
        let c = Decompose.circuit ~fresh_target_and:fresh (Builder.to_circuit b) in
        Decompose.t_count ~mode:(Counts.Expected 0.5) c.Circuit.instrs
      in
      fpf "  %4d | %10.0f %10.0f %10.0f@." n
        (t_of Adder.Vbe ~fresh:false)
        (t_of Adder.Cdkpm ~fresh:false)
        (t_of Adder.Gidney ~fresh:true))
    [ 8; 16; 32; 64 ];
  fpf "  (Gidney 2018: 4n T for addition vs 14n with a Toffoli adder)@."

(* ------------------------------------------------------------------ *)
(* E-PEBBLE: spooky pebble game (related work, Gid19b / KSS21) *)

let experiment_pebble () =
  header "E-PEBBLE: reversible chain computation, classical vs spooky pebbling";
  fpf "  %6s | %14s | %14s | %20s@." "m" "naive (T,S)" "bennett (T,S)"
    "spooky (T,S,fixups)";
  List.iter
    (fun m ->
      let c strategy = Pebble.cost ~chain_length:m strategy in
      let naive = c (Pebble.naive ~chain_length:m) in
      let bennett = c (Pebble.bennett ~chain_length:m) in
      let spooky = c (Pebble.spooky ~chain_length:m ()) in
      fpf "  %6d | %8d %5d | %8d %5d | %8d %5d %6.1f@." m
        naive.Pebble.applications naive.Pebble.space
        bennett.Pebble.applications bennett.Pebble.space
        spooky.Pebble.applications spooky.Pebble.space
        spooky.Pebble.expected_fixups)
    [ 16; 64; 256; 1024 ];
  fpf "  (spooky: linear time at ~2 sqrt(m) pebbles; Bennett needs m^1.58@.";
  fpf "   time to reach log-space; measurements break the classical bound)@."

(* ------------------------------------------------------------------ *)
(* E-AQFT: approximate-QFT Draper adder *)

let experiment_aqft () =
  header "E-AQFT: approximate QFT adder, rotations vs cutoff (n = 32)";
  let n = 32 in
  fpf "  %8s | %10s@." "cutoff" "C-R gates";
  List.iter
    (fun cutoff ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder_draper.add_approx b ~cutoff ~x ~y;
      let c = Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b) in
      fpf "  %8d | %10.0f@." cutoff c.Counts.cphase)
    [ n + 1; 16; 8; 6; 4 ];
  fpf "  (exact adder: O(n^2) rotations; cutoff c: O(n c), with phase@.";
  fpf "   error O(n / 2^c) — see test_aqft for the fidelity measurements)@."

(* ------------------------------------------------------------------ *)
(* E-DEPTH: ripple vs carry-lookahead [Dra+04] *)

let experiment_depth () =
  header "E-DEPTH: Toffoli depth, ripple adders vs carry-lookahead [Dra+04]";
  fpf "  %4s | %10s %10s | %10s %10s | %10s %10s@." "n" "cdkpm D" "cdkpm #"
    "gidney D" "gidney #" "cla D" "cla #";
  List.iter
    (fun n ->
      let m build =
        let r =
          measure_build ~n (fun b ->
              let x = Builder.fresh_register b "x" n in
              let y = Builder.fresh_register b "y" (n + 1) in
              build b ~x ~y)
        in
        (r.Resources.toffoli_depth, r.Resources.toffoli)
      in
      let cd, cc = m (fun b ~x ~y -> Adder_cdkpm.add b ~x ~y) in
      let gd, gc = m (fun b ~x ~y -> Adder_gidney.add b ~x ~y) in
      let ld, lc = m (fun b ~x ~y -> Adder_cla.add b ~x ~y) in
      fpf "  %4d | %10.1f %10.1f | %10.1f %10.1f | %10.1f %10.1f@." n cd cc gd
        gc ld lc)
    [ 8; 16; 32; 64; 128 ];
  fpf "  (D = expected Toffoli depth, # = expected Toffoli count: the@.";
  fpf "   lookahead adder buys O(log n) depth with a ~5x count overhead)@."

(* ------------------------------------------------------------------ *)
(* E-FT: the MBU saving in physical resources (GE21-style estimate) *)

let experiment_ft () =
  header "E-FT: surface-code estimate for a full modular exponentiation";
  (* fit the per-CMULT quadratic coefficient at moderate width, then
     extrapolate the 2n-multiplication exponentiation ladder *)
  let cmult_cost ~mbu n =
    let r =
      measure_build ~n (fun b ->
          let c = Builder.fresh_register b "c" 1 in
          let x = Builder.fresh_register b "x" n in
          let t = Builder.fresh_register b "t" n in
          Mod_mul.cmult_add
            (Mod_mul.ripple_engine ~mbu Mod_add.spec_cdkpm)
            b ~ctrl:(Register.get c 0) ~a:(modulus n / 3) ~p:(modulus n) ~x
            ~target:t)
    in
    (r.Resources.toffoli, r.Resources.toffoli_depth)
  in
  let workload ~mbu n =
    let t32, d32 = cmult_cost ~mbu 32 in
    let scale = float_of_int (n * n) /. (32. *. 32.) in
    let dscale = float_of_int n /. 32. in
    (* modexp: 2n controlled multiplications, 2 ladders each *)
    let mults = float_of_int (4 * n) in
    { Ft_estimate.toffoli = t32 *. scale *. mults;
      toffoli_depth = d32 *. dscale *. dscale *. mults;
      logical_qubits = (3 * n) + 10 }
  in
  fpf "  %6s %-4s | %4s | %14s | %12s | %10s@." "n" "MBU" "d" "phys qubits"
    "runtime" "Tof";
  List.iter
    (fun n ->
      List.iter
        (fun mbu ->
          let w = workload ~mbu n in
          let e =
            Ft_estimate.estimate
              ~params:{ Ft_estimate.default_params with factories = 16 }
              w
          in
          fpf "  %6d %-4s | %4d | %14d | %10.2f s | %10.3e@." n
            (if mbu then "yes" else "no")
            e.Ft_estimate.code_distance e.Ft_estimate.physical_qubits
            e.Ft_estimate.runtime_seconds w.Ft_estimate.toffoli)
        [ false; true ])
    [ 256; 1024; 2048 ];
  fpf "  (coarse GE21-style model: p=1e-3, 1us cycles, 16 Toffoli@.";
  fpf "   factories; the ~12%% expected-Toffoli saving carries straight@.";
  fpf "   into wall-clock time at fixed hardware)@."

(* ------------------------------------------------------------------ *)
(* Ablations called out in DESIGN.md *)

let experiment_ablations () =
  header "Ablations: design choices from sections 2-3";
  let n = 16 in
  let tof build = (measure_build ~n build).Resources.toffoli in
  fpf "  controlled adder implementations (CDKPM base, n = %d):@." n;
  List.iter
    (fun (name, impl) ->
      let t =
        tof (fun b ->
            let c = Builder.fresh_register b "c" 1 in
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" (n + 1) in
            Adder.add_controlled ~impl Adder.Cdkpm b ~ctrl:(Register.get c 0) ~x ~y)
      in
      fpf "    %-28s %8.1f Tof@." name t)
    [ ("native C-UMA (thm 2.12)", Adder.Native);
      ("load/unload Toffoli (thm 2.9)", Adder.Load_toffoli);
      ("load + MBU unload (cor 2.10)", Adder.Load_and_mbu) ];
  fpf "  UMA variants (figure 7), CDKPM adder at n = %d:@." n;
  List.iter
    (fun (name, build) ->
      let r =
        measure_build ~n (fun b ->
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" (n + 1) in
            build b ~x ~y)
      in
      fpf "    %-28s %8.1f CNOT, depth %6.1f@." name r.Resources.cnot
        r.Resources.total_depth)
    [ ("2-CNOT UMA", fun b ~x ~y -> Adder_cdkpm.add b ~x ~y);
      ("3-CNOT UMA", fun b ~x ~y -> Adder_cdkpm.add_3cnot b ~x ~y) ];
  fpf "  comparator: native half-subtractor vs generic sub+add (prop 2.25):@.";
  List.iter
    (fun style ->
      let native =
        tof (fun b ->
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" n in
            let t = Builder.fresh_register b "t" 1 in
            Adder.compare style b ~x ~y ~target:(Register.get t 0))
      and generic =
        tof (fun b ->
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" n in
            let t = Builder.fresh_register b "t" 1 in
            Adder.compare_generic style b ~x ~y ~target:(Register.get t 0))
      in
      fpf "    %-8s native %8.1f vs generic %8.1f Tof@."
        (Adder.style_name style) native generic)
    [ Adder.Cdkpm; Adder.Gidney ];
  fpf "  constant modular addition: Takahashi (prop 3.15) vs VBE arch (thm 3.14)\n";
  fpf "  vs register-loading (prop 3.13), CDKPM subroutines, with MBU:@.";
  let p = modulus n in
  let a = p / 3 in
  List.iter
    (fun (name, build) ->
      let t =
        tof (fun b ->
            let x = Builder.fresh_register b "x" n in
            build b ~p ~a ~x)
      in
      fpf "    %-28s %8.1f Tof@." name t)
    [ ("takahashi", Mod_add.modadd_const_takahashi ~mbu:true Mod_add.spec_cdkpm);
      ("vbe architecture", Mod_add.modadd_const ~mbu:true Mod_add.spec_cdkpm);
      ("via register load", Mod_add.modadd_const_via_load ~mbu:true Mod_add.spec_cdkpm) ]

(* ------------------------------------------------------------------ *)
(* E-SIM: simulator backend micro-benchmark (shots/sec, seed vs this PR) *)

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* Shots/sec for one (engine, jobs) configuration on a prepared circuit. *)
let shots_per_sec ?(engine = Mbu_simulator.Sim.Fast) ~jobs ~shots c ~init () =
  let open Mbu_simulator in
  (* warm-up shot so domain spawning / first allocation doesn't skew *)
  ignore (Sim.run_shots ~engine ~jobs ~shots:1 c ~init);
  let t0 = Unix.gettimeofday () in
  ignore (Sim.run_shots ~engine ~jobs ~shots c ~init);
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int shots /. Float.max dt 1e-9

let experiment_sim_bench () =
  let open Mbu_simulator in
  header "E-SIM: simulator backends, Table-1 Monte-Carlo workload (shots/sec)";
  let shots = 1000 in
  let jobs = max 4 (Sim.default_jobs ()) in
  fpf "  %d shots/config, parallel backend = %s, jobs = %d@." shots
    Sim.parallel_backend jobs;
  fpf "  %-15s | %3s | %12s | %12s | %12s | %8s@." "row" "n" "seed (ref)"
    "fast seq"
    (Printf.sprintf "fast j=%d" jobs)
    "speedup";
  (* The ripple-carry rows of table 1; Draper is excluded because its QFT
     makes the state dense (2^(n+1) terms at n = 16), which is a different
     workload from the permutation-dominated Monte-Carlo the tables use.
     Rows whose total width would exceed the simulator's 62-qubit cap at
     n = 16 run at the largest n that fits (shown in the n column). *)
  let sim_rows =
    [ ("(5 adder) VBE", 15,
       fun b ~p ~x ~y -> Mod_add.modadd_vbe_5adder ~mbu:true b ~p ~x ~y);
      ("(4 adder) VBE", 15,
       fun b ~p ~x ~y -> Mod_add.modadd_vbe_4adder ~mbu:true b ~p ~x ~y);
      ("CDKPM", 16,
       fun b ~p ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y);
      ("Gidney", 14,
       fun b ~p ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_gidney b ~p ~x ~y);
      ("CDKPM+Gidney", 16,
       fun b ~p ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_mixed b ~p ~x ~y) ]
  in
  let rows =
    List.map
      (fun (name, n, build) ->
        let p = modulus n in
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        build b ~p ~x ~y;
        let c = Builder.to_circuit b in
        let init =
          Sim.init_registers ~num_qubits:(Builder.num_qubits b)
            [ (x, 17 mod p); (y, 25 mod p) ]
        in
        let reference =
          shots_per_sec ~engine:Sim.Reference ~jobs:1 ~shots c ~init ()
        in
        let fast_seq = shots_per_sec ~jobs:1 ~shots c ~init () in
        let fast_par = shots_per_sec ~jobs ~shots c ~init () in
        let best = Float.max fast_seq fast_par in
        fpf "  %-15s | %3d | %12.0f | %12.0f | %12.0f | %7.1fx@." name n
          reference fast_seq fast_par (best /. reference);
        (name, n, reference, fast_seq, fast_par))
      sim_rows
  in
  (* machine-readable output for the CI artifact and the README table *)
  let oc = open_out "BENCH_sim.json" in
  Printf.fprintf oc "{\n  \"workload\": \"table1-modadd-montecarlo\",\n";
  Printf.fprintf oc "  \"shots\": %d,\n" shots;
  Printf.fprintf oc "  \"parallel_backend\": %S,\n  \"jobs\": %d,\n"
    Sim.parallel_backend jobs;
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i (name, n, reference, fast_seq, fast_par) ->
      Printf.fprintf oc
        "    {\"row\": \"%s\", \"n\": %d, \"seed_shots_per_sec\": %.1f, \
         \"fast_seq_shots_per_sec\": %.1f, \"fast_par_shots_per_sec\": %.1f, \
         \"speedup\": %.2f}%s\n"
        (json_escape name) n reference fast_seq fast_par
        (Float.max fast_seq fast_par /. reference)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  fpf "  (seed = rebuild-per-gate Reference engine; fast = classical track@.";
  fpf "   + in-place sparse kernel; written to BENCH_sim.json)@."

(* ------------------------------------------------------------------ *)
(* E-BUILD: DAG IR build + memoized metric wall-clock *)

(* Wall-clock one metric pass: repetitions are batched to ~20 ms so
   sub-millisecond passes are resolvable, and the minimum over several
   batches is reported — the usual robust estimator, insulating the figure
   from GC majors and scheduler noise landing inside a batch. *)
let time_ms f =
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t0 in
  let reps = max 1 (int_of_float (0.02 /. Float.max once 1e-7)) in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int reps)
  done;
  !best *. 1000.

let experiment_build_bench () =
  header
    "E-BUILD: hash-consed DAG build + memoized counts/profile (wall-clock)";
  fpf "  tree = pre-PR representation (Instr.expand_calls, every shared@.";
  fpf "  block inlined); dag = hash-consed IR. The p/dag and p/tree columns@.";
  fpf "  run the profiler with span_depth:false on both sides (conservative@.";
  fpf "  same-methodology comparison); pre-PR is the profiler exactly as@.";
  fpf "  pre-PR callers ran it — on the tree, per-span isolated ASAP depth@.";
  fpf "  included, with no way to opt out.@.@.";
  let t1_rows =
    List.map
      (fun (name, build) ->
        ( name, 32,
          fun () ->
            let b = Builder.create () in
            build ~mbu:true ~p:(modulus 32) ~n:32 b;
            Builder.to_circuit b ))
      t1_builders
  in
  let modmul_row n =
    ( "mod_mul cmult_add", n,
      fun () ->
        let b = Builder.create () in
        let p = modulus n in
        let c = Builder.fresh_register b "c" 1 in
        let x = Builder.fresh_register b "x" n in
        let t = Builder.fresh_register b "t" n in
        Mod_mul.cmult_add
          (Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm)
          b ~ctrl:(Register.get c 0) ~a:(p / 3) ~p ~x ~target:t;
        Builder.to_circuit b )
  in
  let rows_spec = t1_rows @ List.map modmul_row [ 16; 32; 60 ] in
  fpf
    "  %-18s | %3s | %8s | %9s | %6s | %9s | %9s | %7s | %9s | %9s | %7s | \
     %9s | %8s@."
    "row" "n" "build ms" "live Mw" "nodes" "count/dag" "count/tre" "speedup"
    "prof/dag" "prof/tre" "speedup" "pre-PR ms" "speedup";
  let results =
    List.map
      (fun (name, n, build) ->
        let nodes0 = Instr.shared_nodes () in
        Gc.full_major ();
        let live0 = (Gc.stat ()).Gc.live_words in
        let t0 = Unix.gettimeofday () in
        let c = build () in
        let build_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        Gc.full_major ();
        let live_words = (Gc.stat ()).Gc.live_words - live0 in
        let shared = Instr.shared_nodes () - nodes0 in
        let instrs = c.Circuit.instrs in
        let mode = Counts.Expected 0.5 in
        let gates = Counts.total_gates (Counts.of_instrs ~mode:Counts.Worst instrs) in
        let counts_dag_ms =
          time_ms (fun () -> ignore (Counts.of_instrs ~mode instrs))
        in
        let profile_dag_ms =
          time_ms (fun () -> ignore (Trace.profile ~mode ~span_depth:false instrs))
        in
        (* the pre-PR tree: every Call inlined *)
        let tree = Instr.expand_calls instrs in
        let counts_tree_ms =
          time_ms (fun () -> ignore (Counts.of_instrs ~mode tree))
        in
        let profile_tree_ms =
          time_ms (fun () -> ignore (Trace.profile ~mode ~span_depth:false tree))
        in
        (* the profiler exactly as pre-PR callers invoked it: tree
           representation, per-span isolated depth always on (one rep — the
           big rows take hundreds of ms) *)
        let t0 = Unix.gettimeofday () in
        ignore (Trace.profile ~mode ~span_depth:true tree);
        let profile_pre_pr_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        let c_speed = counts_tree_ms /. Float.max counts_dag_ms 1e-9 in
        let p_speed = profile_tree_ms /. Float.max profile_dag_ms 1e-9 in
        let pre_speed = profile_pre_pr_ms /. Float.max profile_dag_ms 1e-9 in
        fpf
          "  %-18s | %3d | %8.2f | %9.3f | %6d | %9.4f | %9.4f | %6.1fx | \
           %9.4f | %9.4f | %6.1fx | %9.2f | %7.0fx@."
          name n build_ms
          (float_of_int live_words /. 1e6)
          shared counts_dag_ms counts_tree_ms c_speed profile_dag_ms
          profile_tree_ms p_speed profile_pre_pr_ms pre_speed;
        ( name, n, build_ms, live_words, gates, shared, counts_dag_ms,
          counts_tree_ms, profile_dag_ms, profile_tree_ms, profile_pre_pr_ms ))
      rows_spec
  in
  let oc = open_out "BENCH_build.json" in
  Printf.fprintf oc "{\n  \"workload\": \"table1+modmul-dag-build\",\n";
  Printf.fprintf oc "  \"profile_span_depth\": false,\n";
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i
         ( name, n, build_ms, live_words, gates, shared, counts_dag_ms,
           counts_tree_ms, profile_dag_ms, profile_tree_ms, profile_pre_pr_ms ) ->
      Printf.fprintf oc
        "    {\"row\": \"%s\", \"n\": %d, \"build_ms\": %.3f, \
         \"live_words\": %d, \"gates\": %.0f, \"shared_nodes\": %d, \
         \"counts_dag_ms\": %.4f, \"counts_tree_ms\": %.4f, \
         \"counts_speedup\": %.2f, \"profile_dag_ms\": %.4f, \
         \"profile_tree_ms\": %.4f, \"profile_speedup_same_methodology\": \
         %.2f, \"profile_pre_pr_ms\": %.4f, \"profile_speedup_vs_pre_pr\": \
         %.1f, \"metrics_speedup_vs_pre_pr\": %.1f}%s\n"
        (json_escape name) n build_ms live_words gates shared counts_dag_ms
        counts_tree_ms
        (counts_tree_ms /. Float.max counts_dag_ms 1e-9)
        profile_dag_ms profile_tree_ms
        (profile_tree_ms /. Float.max profile_dag_ms 1e-9)
        profile_pre_pr_ms
        (profile_pre_pr_ms /. Float.max profile_dag_ms 1e-9)
        ((counts_tree_ms +. profile_pre_pr_ms)
        /. Float.max (counts_dag_ms +. profile_dag_ms) 1e-9)
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  fpf "  (written to BENCH_build.json)@."

(* ------------------------------------------------------------------ *)
(* E-FAULT: fault-injection campaigns, forced branches, invariant lint *)

let experiment_faults () =
  let open Mbu_robustness in
  header "E-FAULT: fault injection / forced branches / invariant linting";
  let n = 5 in
  let p = modulus n in
  let runs = 300 in
  let seed = 7 in
  fpf "  n = %d, p = %d; lint + forced-branch check + %d single-fault runs \
       per family (seed %d)@."
    n p runs seed;
  fpf "  %-22s | %5s | %4s | %7s %7s %7s | %9s %7s@." "family" "sites" "arms"
    "correct" "detect" "silent" "detection" "silent%";
  let rows =
    List.map
      (fun e ->
        let spec = e.Catalogue.make ~n ~p in
        (* Lint must be clean on every catalogue circuit... *)
        let lint_report = Catalogue.lint spec in
        if not (Lint.is_clean lint_report) then begin
          fpf "%s@." (Lint.to_string lint_report);
          failwith
            (Printf.sprintf "lint errors in catalogue circuit %s"
               e.Catalogue.name)
        end;
        (* ...and forcing outcomes must drive both arms of every If_bit
           with the oracle holding on each. *)
        let cov = Engine.check_forced_branches spec in
        if not (Engine.covered cov) then
          failwith
            (Printf.sprintf
               "forced-branch coverage failed for %s (%d arms, %d uncovered, \
                correct: %b/%b)"
               e.Catalogue.name
               (List.length cov.Engine.arms)
               (List.length cov.Engine.uncovered)
               cov.Engine.correct_on_true cov.Engine.correct_on_false);
        let r =
          Engine.run_campaign ~seed
            ~plan:(Engine.Random { runs; faults_per_run = 1 })
            spec
        in
        fpf "  %-22s | %5d | %4d | %7d %7d %7d | %9.3f %6.1f%%@."
          e.Catalogue.title r.Engine.sites
          (List.length cov.Engine.arms)
          r.Engine.correct r.Engine.detected r.Engine.silent
          (Engine.detection_rate r)
          (100. *. Engine.silent_rate r);
        (e, r))
      Catalogue.all
  in
  (* Acceptance probe: every single-X fault site of a VBE modular adder —
     final-comparator ancillas included — must classify without aborting. *)
  let vbe = List.hd Catalogue.table1 in
  let rx =
    Engine.run_campaign ~seed
      ~plan:(Engine.Exhaustive { paulis = [ Fault.X ] })
      (vbe.Catalogue.make ~n ~p)
  in
  assert (rx.Engine.correct + rx.Engine.detected + rx.Engine.silent = rx.Engine.runs);
  fpf "  exhaustive single-X on %s: %d runs over %d sites, all classified \
       (%d correct / %d detected / %d silent)@."
    vbe.Catalogue.title rx.Engine.runs rx.Engine.sites rx.Engine.correct
    rx.Engine.detected rx.Engine.silent;
  let oc = open_out "BENCH_faults.json" in
  Printf.fprintf oc "{\n  \"workload\": \"catalogue-fault-campaigns\",\n";
  Printf.fprintf oc "  \"n\": %d,\n  \"p\": %d,\n  \"runs_per_family\": %d,\n"
    n p runs;
  Printf.fprintf oc "  \"seed\": %d,\n  \"lint_clean\": true,\n" seed;
  Printf.fprintf oc
    "  \"exhaustive_x_vbe\": {\"sites\": %d, \"runs\": %d, \"correct\": %d, \
     \"detected\": %d, \"silent\": %d},\n"
    rx.Engine.sites rx.Engine.runs rx.Engine.correct rx.Engine.detected
    rx.Engine.silent;
  Printf.fprintf oc "  \"families\": [\n";
  List.iteri
    (fun i (e, r) ->
      Printf.fprintf oc
        "    {\"family\": \"%s\", \"sites\": %d, \"runs\": %d, \"correct\": \
         %d, \"detected\": %d, \"silent\": %d, \"detection_rate\": %.4f, \
         \"silent_rate\": %.4f}%s\n"
        (json_escape e.Catalogue.title)
        r.Engine.sites r.Engine.runs r.Engine.correct r.Engine.detected
        r.Engine.silent (Engine.detection_rate r) (Engine.silent_rate r)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  fpf "  (correct = fault absorbed; detected = clean error, dirty ancilla \
       or detector;@.";
  fpf "   silent = wrong output with nothing noticed; written to \
       BENCH_faults.json)@."

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benchmarks *)

let bechamel_tests () =
  let open Bechamel in
  let t1 () =
    ignore
      (measure_t1 (List.assoc "CDKPM" t1_builders) ~mbu:true ~n:16 ~p:(modulus 16))
  in
  let t2 () =
    List.iter
      (fun style ->
        ignore
          (measure_build ~n:16 (fun b ->
               let x = Builder.fresh_register b "x" 16 in
               let y = Builder.fresh_register b "y" 17 in
               Adder.add style b ~x ~y)))
      Adder.all_styles
  in
  let t3 () =
    ignore
      (measure_build ~n:16 (fun b ->
           let c = Builder.fresh_register b "c" 1 in
           let x = Builder.fresh_register b "x" 16 in
           let y = Builder.fresh_register b "y" 17 in
           Adder.add_controlled Adder.Gidney b ~ctrl:(Register.get c 0) ~x ~y))
  in
  let t4 () =
    ignore
      (measure_build ~n:16 (fun b ->
           let y = Builder.fresh_register b "y" 17 in
           Adder.add_const Adder.Cdkpm b ~a:1234 ~y))
  in
  let t5 () =
    ignore
      (measure_build ~n:16 (fun b ->
           let c = Builder.fresh_register b "c" 1 in
           let y = Builder.fresh_register b "y" 17 in
           Adder.add_const_controlled Adder.Cdkpm b ~ctrl:(Register.get c 0)
             ~a:1234 ~y))
  in
  let t6 () =
    ignore
      (measure_build ~n:16 (fun b ->
           let x = Builder.fresh_register b "x" 16 in
           let y = Builder.fresh_register b "y" 16 in
           let t = Builder.fresh_register b "t" 1 in
           Adder.compare Adder.Cdkpm b ~x ~y ~target:(Register.get t 0)))
  in
  let mc () =
    ignore
      (Resources.monte_carlo_toffoli ~shots:1
         ~build:(fun b ->
           let x = Builder.fresh_register b "x" 4 in
           let y = Builder.fresh_register b "y" 4 in
           Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p:13 ~x ~y;
           [ (x, 7); (y, 11) ])
         ())
  in
  let two_sided () =
    ignore
      (measure_build ~n:16 (fun b ->
           let x = Builder.fresh_register b "x" 16 in
           let y = Builder.fresh_register b "y" 16 in
           let z = Builder.fresh_register b "z" 16 in
           let t = Builder.fresh_register b "t" 1 in
           Mbu.in_range Adder.Cdkpm b ~x ~y ~z ~target:(Register.get t 0)))
  in
  let modmul () =
    ignore
      (measure_build ~n:8 (fun b ->
           let c = Builder.fresh_register b "c" 1 in
           let x = Builder.fresh_register b "x" 8 in
           let t = Builder.fresh_register b "t" 8 in
           Mod_mul.cmult_add
             (Mod_mul.ripple_engine ~mbu:true Mod_add.spec_mixed)
             b ~ctrl:(Register.get c 0) ~a:37 ~p:(modulus 8) ~x ~target:t))
  in
  Test.make_grouped ~name:"mbu" ~fmt:"%s/%s"
    [ Test.make ~name:"table1" (Staged.stage t1);
      Test.make ~name:"table2" (Staged.stage t2);
      Test.make ~name:"table3" (Staged.stage t3);
      Test.make ~name:"table4" (Staged.stage t4);
      Test.make ~name:"table5" (Staged.stage t5);
      Test.make ~name:"table6" (Staged.stage t6);
      Test.make ~name:"mbu_montecarlo" (Staged.stage mc);
      Test.make ~name:"two_sided" (Staged.stage two_sided);
      Test.make ~name:"modmul" (Staged.stage modmul);
      Test.make ~name:"tcount"
        (Staged.stage (fun () ->
             let b = Builder.create () in
             let x = Builder.fresh_register b "x" 16 in
             let y = Builder.fresh_register b "y" 17 in
             Adder.add Adder.Gidney b ~x ~y;
             let c =
               Decompose.circuit ~fresh_target_and:true (Builder.to_circuit b)
             in
             ignore (Decompose.t_count ~mode:(Counts.Expected 0.5) c.Circuit.instrs)));
      Test.make ~name:"pebble"
        (Staged.stage (fun () ->
             ignore
               (Pebble.cost ~chain_length:256 (Pebble.spooky ~chain_length:256 ()))));
      Test.make ~name:"aqft"
        (Staged.stage (fun () ->
             ignore
               (measure_build ~n:32 (fun b ->
                    let x = Builder.fresh_register b "x" 32 in
                    let y = Builder.fresh_register b "y" 33 in
                    Adder_draper.add_approx b ~cutoff:6 ~x ~y))));
      Test.make ~name:"depth"
        (Staged.stage (fun () ->
             ignore
               (measure_build ~n:64 (fun b ->
                    let x = Builder.fresh_register b "x" 64 in
                    let y = Builder.fresh_register b "y" 65 in
                    Adder_cla.add b ~x ~y))));
      Test.make ~name:"qrom"
        (Staged.stage (fun () ->
             let data = Array.init 256 (fun i -> i land 1) in
             ignore
               (measure_build ~n:8 (fun b ->
                    let address = Builder.fresh_register b "a" 8 in
                    let target = Builder.fresh_register b "t" 1 in
                    Qrom.unlookup b ~address ~target ~data)))) ]

let run_bechamel () =
  header "Wall-clock micro-benchmarks (Bechamel, circuit build + count)";
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  fpf "  %-24s %14s@." "benchmark" "time/run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ t ] ->
          if t > 1e6 then fpf "  %-24s %11.2f ms@." name (t /. 1e6)
          else fpf "  %-24s %11.2f us@." name (t /. 1e3)
      | _ -> fpf "  %-24s %14s@." name "n/a")
    rows

(* ------------------------------------------------------------------ *)
(* Driver with per-phase wall-clock accounting *)

let phase_times : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  phase_times := (name, dt) :: !phase_times

let report_phase_times () =
  header "Per-phase wall-clock time";
  let times = List.rev !phase_times in
  let total = List.fold_left (fun acc (_, dt) -> acc +. dt) 0. times in
  fpf "  %-20s %10s %6s@." "phase" "seconds" "share";
  List.iter
    (fun (name, dt) ->
      fpf "  %-20s %10.3f %5.1f%%@." name dt (100. *. dt /. Float.max total 1e-9))
    times;
  fpf "  %-20s %10.3f@." "total" total

(* ------------------------------------------------------------------ *)
(* Bench-regression gate: `--compare BASELINE.json` (repeatable).

   Each baseline's "workload" field selects the experiment that
   regenerates it; the experiment runs, the fresh file is diffed against
   the in-memory baseline with Bench_compare's per-metric thresholds, and
   any regression turns into a non-zero exit. Note the experiments
   overwrite the BENCH_*.json in the working tree — `git checkout` them
   afterwards if you want the committed baselines back. *)

module BC = Mbu_telemetry.Bench_compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compare_paths () =
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      if String.equal a "--compare" && i + 1 < Array.length Sys.argv then
        acc := Sys.argv.(i + 1) :: !acc)
    Sys.argv;
  List.rev !acc

let experiment_for_workload = function
  | "table1-modadd-montecarlo" ->
      Some ("sim_bench", experiment_sim_bench, "BENCH_sim.json")
  | "table1+modmul-dag-build" ->
      Some ("build_bench", experiment_build_bench, "BENCH_build.json")
  | "catalogue-fault-campaigns" ->
      Some ("faults", experiment_faults, "BENCH_faults.json")
  | _ -> None

let run_compare paths =
  let failed = ref false in
  List.iter
    (fun path ->
      match BC.parse_result (read_file path) with
      | exception Sys_error e ->
          fpf "  cannot read baseline %s: %s@." path e;
          failed := true
      | Error e ->
          fpf "  baseline %s: parse error: %s@." path e;
          failed := true
      | Ok baseline -> (
          match Option.bind (BC.workload baseline) experiment_for_workload with
          | None ->
              fpf "  baseline %s: unknown workload, cannot regenerate@." path;
              failed := true
          | Some (name, experiment, fresh_path) ->
              header (Printf.sprintf "Regression gate: %s (%s)" path name);
              timed name experiment;
              let report =
                BC.compare_json ~baseline
                  ~current:(BC.parse (read_file fresh_path))
              in
              fpf "@.";
              print_string (BC.render report);
              if report.BC.regressions <> [] then failed := true))
    paths;
  (* Telemetry of the gate runs themselves rides along as a CI artifact. *)
  let oc = open_out "METRICS.json" in
  output_string oc (Mbu_telemetry.Telemetry.to_json ());
  close_out oc;
  fpf "@.telemetry written to METRICS.json@.";
  if !failed then begin
    fpf "@.REGRESSION GATE FAILED@.";
    exit 1
  end
  else fpf "@.regression gate passed@."

let () =
  (* `--sim-only` runs just the simulator micro-bench (CI benchmark smoke);
     `--build-only` just the DAG build/metric bench; `--faults-only` just
     the fault-injection / lint campaign; `--compare BASELINE.json`
     (repeatable) is the regression gate. *)
  (match compare_paths () with
  | [] -> ()
  | paths ->
      run_compare paths;
      report_phase_times ();
      fpf "@.done.@.";
      exit 0);
  if Array.exists (String.equal "--build-only") Sys.argv then begin
    timed "build_bench" experiment_build_bench;
    report_phase_times ();
    fpf "@.done.@.";
    exit 0
  end;
  if Array.exists (String.equal "--sim-only") Sys.argv then begin
    timed "sim_bench" experiment_sim_bench;
    report_phase_times ();
    fpf "@.done.@.";
    exit 0
  end;
  if Array.exists (String.equal "--faults-only") Sys.argv then begin
    timed "faults" experiment_faults;
    report_phase_times ();
    fpf "@.done.@.";
    exit 0
  end;
  timed "table1" table1;
  timed "table1_big" table1_big;
  timed "table2" table2;
  timed "table3" table3;
  timed "table4" table4;
  timed "table5" table5;
  timed "table6" table6;
  timed "monte_carlo" experiment_monte_carlo;
  timed "savings" experiment_savings;
  timed "two_sided" experiment_two_sided;
  timed "modmul" experiment_modmul;
  timed "qrom" experiment_qrom;
  timed "coset" experiment_coset;
  timed "tcount" experiment_tcount;
  timed "pebble" experiment_pebble;
  timed "aqft" experiment_aqft;
  timed "depth" experiment_depth;
  timed "ft" experiment_ft;
  timed "ablations" experiment_ablations;
  timed "build_bench" experiment_build_bench;
  timed "sim_bench" experiment_sim_bench;
  timed "faults" experiment_faults;
  timed "bechamel" run_bechamel;
  report_phase_times ();
  fpf "@.done.@."
