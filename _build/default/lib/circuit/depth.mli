(** Circuit depth by ASAP (as-soon-as-possible) scheduling.

    Depth is computed on the dependency structure: each gate is scheduled one
    layer after the latest layer touching any of its qubits. Toffoli depth
    counts only Toffoli layers (all other gates propagate availability
    without using a layer), the standard cost model for fault-tolerant
    surface-code estimates where Toffoli/T gates dominate.

    Measurements occupy a layer on their qubit and define the classical bit;
    gates inside a conditional block additionally depend on that bit.

    Two accounting modes mirror {!Counts.mode}: [`Worst] assumes every
    conditional body runs; [`Expected p] weights the layers contributed by a
    conditional body by the probability that it runs (a linear-in-expectation
    approximation — exact expected depth of an adaptive circuit is obtained
    by Monte-Carlo over simulator runs instead, see [Sim]). *)

type r = { total : float; toffoli : float }

val of_instrs : mode:[ `Worst | `Expected of float ] -> Instr.t list -> r
val of_circuit : mode:[ `Worst | `Expected of float ] -> Circuit.t -> r
