(* Coset-state encoding: exact preparation (MBU phase fixes included),
   comparator-free modular addition in the encoding, and the documented
   O(2^-k) truncation error. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng

let coset_indices reg ~x ~p ~pad =
  List.init (1 lsl pad) (fun c ->
      let v = x + (c * p) in
      let idx = ref 0 in
      for i = 0 to Register.length reg - 1 do
        if (v lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get reg i)
      done;
      !idx)

let expected_coset ~num_qubits reg ~x ~p ~pad =
  let amp : Complex.t =
    { re = 1.0 /. sqrt (float_of_int (1 lsl pad)); im = 0.0 }
  in
  State.of_alist ~num_qubits
    (List.map (fun i -> (i, amp)) (coset_indices reg ~x ~p ~pad))

let test_prepare_exact () =
  List.iter
    (fun (n, pad, p) ->
      for x = 0 to p - 1 do
        for trial = 1 to 3 do
          let b = Builder.create () in
          let reg = Builder.fresh_register b "v" (n + pad) in
          Coset.prepare Adder.Cdkpm b ~p ~pad reg;
          let r =
            Sim.run
              ~rng:(Random.State.make [| x; trial |])
              (Builder.to_circuit b)
              ~init:(Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (reg, x) ])
          in
          let f =
            State.fidelity r.Sim.state
              (expected_coset ~num_qubits:(State.num_qubits r.Sim.state) reg ~x
                 ~p ~pad)
          in
          Alcotest.(check bool)
            (Printf.sprintf "coset n=%d pad=%d p=%d x=%d trial=%d f=%.6f" n pad
               p x trial f)
            true
            (f > 1. -. 1e-9);
          Alcotest.(check bool) "ancillas clean" true
            (Sim.wires_zero r.Sim.state ~except:[ reg ])
        done
      done)
    [ (3, 2, 7); (3, 3, 5); (2, 2, 3) ]

let test_encoded_addition_residue () =
  (* one plain addition implements the modular addition up to the
     truncation branch: every surviving basis value has the right residue,
     and the lost weight is at most ~2^-pad *)
  let n = 3 and pad = 3 and p = 7 in
  for x = 0 to p - 1 do
    List.iter
      (fun a ->
        let b = Builder.create () in
        let reg = Builder.fresh_register b "v" (n + pad) in
        Coset.prepare Adder.Cdkpm b ~p ~pad reg;
        Coset.add_const Adder.Cdkpm b ~a reg;
        let r =
          Sim.run
            ~rng:(Random.State.make [| x; a |])
            (Builder.to_circuit b)
            ~init:(Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (reg, x) ])
        in
        let good_weight = ref 0. and bad_weight = ref 0. in
        List.iter
          (fun (idx, (amp : Complex.t)) ->
            let v = ref 0 in
            for i = Register.length reg - 1 downto 0 do
              v := (!v lsl 1) lor ((idx lsr Register.get reg i) land 1)
            done;
            let w = (amp.re *. amp.re) +. (amp.im *. amp.im) in
            if Coset.decode ~value:!v ~p = (x + a) mod p then
              good_weight := !good_weight +. w
            else bad_weight := !bad_weight +. w)
          (State.to_alist r.Sim.state);
        Alcotest.(check bool)
          (Printf.sprintf "x=%d a=%d good=%.4f" x a !good_weight)
          true
          (!good_weight > 1. -. (2. /. float_of_int (1 lsl pad))
          && !bad_weight < 2. /. float_of_int (1 lsl pad)))
      [ 1; 3; 6 ]
  done

let test_mbu_economics () =
  (* each padding step costs, in expectation, half a comparator pair; the
     worst case costs a full one. *)
  let n = 6 and pad = 4 and p = 61 in
  let counts mode =
    let b = Builder.create () in
    let reg = Builder.fresh_register b "v" (n + pad) in
    Coset.prepare Adder.Cdkpm b ~p ~pad reg;
    Circuit.counts ~mode (Builder.to_circuit b)
  in
  let worst = counts Counts.Worst and expected = counts (Counts.Expected 0.5) in
  Alcotest.(check bool) "expected toffoli is half of worst fix cost" true
    (expected.Counts.toffoli < worst.Counts.toffoli
    && expected.Counts.toffoli > 0.4 *. worst.Counts.toffoli);
  Alcotest.(check (float 0.)) "one measurement per pad bit"
    (float_of_int pad) worst.Counts.measure

let test_cheaper_than_modadd () =
  (* the Zalka payoff: in the encoding a modular addition is one plain
     addition — compare Toffoli against the full constant modular adder *)
  let n = 12 and pad = 4 in
  let p = (1 lsl n) - 3 in
  let encoded =
    let b = Builder.create () in
    let reg = Builder.fresh_register b "v" (n + pad) in
    Coset.add_const Adder.Cdkpm b ~a:(p / 3) reg;
    (Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b)).Counts.toffoli
  in
  let direct =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    Mod_add.modadd_const ~mbu:true Mod_add.spec_cdkpm b ~p ~a:(p / 3) ~x;
    (Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b)).Counts.toffoli
  in
  Alcotest.(check bool)
    (Printf.sprintf "encoded %.0f < direct %.0f / 2" encoded direct)
    true
    (encoded < direct /. 2.)

let suite =
  ( "coset",
    [ Alcotest.test_case "exact preparation (Gid19a MBU)" `Quick test_prepare_exact;
      Alcotest.test_case "encoded modular addition" `Quick
        test_encoded_addition_residue;
      Alcotest.test_case "bernoulli fix economics" `Quick test_mbu_economics;
      Alcotest.test_case "cheaper than direct modadd" `Quick
        test_cheaper_than_modadd ] )
