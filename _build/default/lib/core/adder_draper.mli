(** Draper's QFT adder (proposition 2.5, corollary 2.7) and Beauregard's
    constant variants (propositions 2.17 and 2.20).

    The "phi" entry points act on a register already mapped into the Fourier
    encoding by {!Qft.apply}: after [Qft.apply b phi_y], qubit [i] of [phi_y]
    holds [|0> + exp(2 i pi y / 2^{i+1}) |1>]. The full adders wrap them in
    QFT / IQFT pairs. All phase angles are exact dyadic rationals. *)

open Mbu_circuit

val phi_add : Builder.t -> x:Register.t -> phi_y:Register.t -> unit
(** Proposition 2.5 ([Phi_ADD], figure 14): [|x>|phi(y)> -> |x>|phi(x+y)>].
    [phi_y] must have [length x + 1] qubits. No ancillas. *)

val phi_add_const : Builder.t -> a:int -> phi_y:Register.t -> unit
(** Proposition 2.17 ([Phi_ADD(a)], figure 19, equation (7)): adds the
    classical constant [a] in the Fourier basis with one single-qubit
    rotation per qubit — the paper's "partially classical QFT" (PCQFT)
    gates. [a] may be any integer; it is taken modulo [2^m]. *)

val phi_sub_const : Builder.t -> a:int -> phi_y:Register.t -> unit

val c_phi_add_const :
  Builder.t -> ctrl:Gate.qubit -> a:int -> phi_y:Register.t -> unit
(** Proposition 2.20 ([C-Phi_ADD(a)]): every rotation gains the control. *)

val c_phi_sub_const :
  Builder.t -> ctrl:Gate.qubit -> a:int -> phi_y:Register.t -> unit

val c_phi_add :
  Builder.t -> ctrl:Gate.qubit -> x:Register.t -> phi_y:Register.t -> unit
(** Theorem 2.14's [C-Phi_ADD] with a single ancilla: rotations are grouped
    by their control [x_j]; each group's control is replaced by a temporary
    logical-AND of [ctrl] and [x_j], erased afterwards by MBU. Costs [n]
    Toffoli plus, in expectation, [n/2] classically controlled CZ. *)

val add : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Corollary 2.7: QFT, [Phi_ADD], IQFT. Conventions as {!Adder_vbe.add}. *)

val add_controlled :
  Builder.t -> ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> unit
(** Theorems 2.13 + 2.14: only the central [Phi_ADD] is controlled. *)

val add_const : Builder.t -> a:int -> y:Register.t -> unit
(** QFT, [Phi_ADD(a)], IQFT on an (n+1)-qubit register (MSB initially 0). *)

val add_const_controlled :
  Builder.t -> ctrl:Gate.qubit -> a:int -> y:Register.t -> unit

val compare :
  Builder.t -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** Proposition 2.26 (Draper/Beauregard comparator):
    [target XOR= 1\[x > y\]] via [Phi_SUB]; uses one borrowed |0> qubit as
    the sign bit. [x] and [y] of equal length [n]; both restored. *)

val compare_const :
  Builder.t -> a:int -> x:Register.t -> target:Gate.qubit -> unit
(** Proposition 2.36: [target XOR= 1\[x < a\]]. *)

val phi_add_equal : Builder.t -> x:Register.t -> phi_y:Register.t -> unit
(** Equal-length [Phi_ADD]: both registers have [m] qubits, addition is
    modulo [2^m]. *)

val add_mod : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Equal-length addition modulo [2^m]: QFT, {!phi_add_equal}, IQFT. *)

val compare_const_msb :
  Builder.t -> a:int -> x:Register.t -> target:Gate.qubit -> unit
(** [target XOR= 1\[x < a\]] using the register's own most significant qubit
    as the sign of [x - a] — no ancilla, so adjacent QFT/IQFT pairs cancel
    against neighbouring Fourier blocks (the composition trick of
    proposition 3.7). Only valid when [|x - a| < 2^(m-1)], which holds for
    the modular adder's sum register ([x < 2p], [a = p < 2^(m-1)]). *)

val add_approx : Builder.t -> cutoff:int -> x:Register.t -> y:Register.t -> unit
(** The Draper adder with approximate QFTs and a truncated [Phi_ADD] (all
    rotations below [2 pi / 2^cutoff] dropped): [O(n cutoff)] rotations
    instead of [O(n^2)], exact up to an [O(n / 2^cutoff)] phase error. *)
