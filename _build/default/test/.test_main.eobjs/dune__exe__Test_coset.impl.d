test/test_coset.ml: Adder Alcotest Builder Circuit Complex Coset Counts Helpers List Mbu_circuit Mbu_core Mbu_simulator Mod_add Printf Random Register Sim State
