(* Bench-regression gate: diff a fresh BENCH_*.json against a committed
   baseline with per-metric thresholds.

   The container has no JSON library, so this carries a minimal
   recursive-descent parser sufficient for the bench files (and any
   sane JSON): it is strict about structure but does not validate
   Unicode escapes beyond copying them through. *)

(* ------------------------------------------------------------------ *)
(* JSON *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* Keep it simple: BMP code points only, encoded as UTF-8. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | _ -> fail "unknown escape");
          loop ()
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_result s =
  match parse s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let workload j =
  match member "workload" j with Some (Str w) -> Some w | _ -> None

(* ------------------------------------------------------------------ *)
(* Flattening *)

(* Turn a bench document into (path, value) pairs. Object keys join with
   '.'; an array element that is an object carrying a "row" or "family"
   field is keyed by that field's value (plus "@<n>" when an "n" field
   distinguishes repeated rows, as in the mod_mul sizes of BENCH_build),
   so rows match by identity even if the table is reordered. Bools map to
   0/1; strings are dropped (they are identity, not metrics). *)
let flatten (j : json) : (string * float) list =
  let out = ref [] in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let row_key el i =
    let label =
      match (member "row" el, member "family" el) with
      | Some (Str r), _ -> Some r
      | _, Some (Str f) -> Some f
      | _ -> None
    in
    match label with
    | None -> string_of_int i
    | Some l -> (
        match member "n" el with
        | Some (Num n) when Float.is_integer n ->
            Printf.sprintf "%s@%d" l (int_of_float n)
        | _ -> l)
  in
  let rec go prefix = function
    | Null | Str _ -> ()
    | Bool b -> out := (prefix, if b then 1. else 0.) :: !out
    | Num f -> out := (prefix, f) :: !out
    | Obj kvs -> List.iter (fun (k, v) -> go (join prefix k) v) kvs
    | Arr els ->
        List.iteri (fun i el -> go (join prefix (row_key el i)) el) els
  in
  go "" j;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Threshold policy *)

type direction =
  | Higher_worse  (* latencies, silent fault counts, gate counts *)
  | Lower_worse  (* throughputs, speedups, detection *)
  | Exact  (* deterministic counts: any change is a regression *)
  | Info  (* reported but never gates *)

type rule = { dir : direction; tol : float; abs_floor : float }

let info_rule = { dir = Info; tol = 0.; abs_floor = 0. }

let has_suffix suf s =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let contains sub s =
  let ls = String.length s and lb = String.length sub in
  let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
  at 0

(* Policy keyed on the final path segment. Timing metrics get a wide
   relative band plus an absolute floor, because the committed baselines
   were measured on different hardware than CI and sub-millisecond
   numbers are mostly noise; deterministic counts (gates, fault
   classifications under a fixed seed) gate exactly. *)
let rule_for key =
  let leaf =
    match String.rindex_opt key '.' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  if has_suffix "_ms" leaf then
    { dir = Higher_worse; tol = 3.0; abs_floor = 25.0 }
  else if has_suffix "_per_sec" leaf then
    { dir = Lower_worse; tol = 0.75; abs_floor = 0. }
  else if contains "speedup" leaf then
    { dir = Lower_worse; tol = 0.75; abs_floor = 0. }
  else if leaf = "silent" || leaf = "silent_rate" then
    { dir = Higher_worse; tol = 0.; abs_floor = 0. }
  else if leaf = "correct" || leaf = "detected" || leaf = "detection_rate" then
    { dir = Lower_worse; tol = 0.; abs_floor = 0. }
  else if leaf = "gates" then { dir = Higher_worse; tol = 0.; abs_floor = 0. }
  else if leaf = "live_words" then
    { dir = Higher_worse; tol = 1.0; abs_floor = 0. }
  else if leaf = "shared_nodes" then
    { dir = Lower_worse; tol = 0.; abs_floor = 0. }
  else if leaf = "sites" || leaf = "runs" || leaf = "lint_clean" then
    { dir = Exact; tol = 0.; abs_floor = 0. }
  else info_rule

(* ------------------------------------------------------------------ *)
(* Comparison *)

type status = Ok_within | Regressed | Improved | Informational | Missing

type delta = {
  key : string;
  baseline : float option;
  current : float option;
  rule : rule;
  status : status;
}

type report = {
  workload_name : string option;
  deltas : delta list;
  regressions : delta list;
}

let judge rule ~baseline:b ~current:c =
  match rule.dir with
  | Info -> Informational
  | Exact -> if c = b then Ok_within else Regressed
  | Higher_worse ->
      if c > b *. (1. +. rule.tol) && c -. b > rule.abs_floor then Regressed
      else if c < b then Improved
      else Ok_within
  | Lower_worse ->
      if c < b *. (1. -. rule.tol) && b -. c > rule.abs_floor then Regressed
      else if c > b then Improved
      else Ok_within

let compare_json ~baseline ~current =
  let base_flat = flatten baseline in
  let cur_flat = flatten current in
  let deltas =
    List.map
      (fun (key, b) ->
        let rule = rule_for key in
        match List.assoc_opt key cur_flat with
        | Some c ->
            { key; baseline = Some b; current = Some c; rule;
              status = judge rule ~baseline:b ~current:c }
        | None ->
            (* A gated metric that vanished is a regression: a renamed or
               dropped row must update the baseline explicitly. *)
            let status =
              if rule.dir = Info then Informational else Missing
            in
            { key; baseline = Some b; current = None; rule; status })
      base_flat
  in
  let fresh =
    List.filter_map
      (fun (key, c) ->
        if List.mem_assoc key base_flat then None
        else
          Some
            { key; baseline = None; current = Some c; rule = rule_for key;
              status = Informational })
      cur_flat
  in
  let deltas = deltas @ fresh in
  let regressions =
    List.filter (fun d -> d.status = Regressed || d.status = Missing) deltas
  in
  { workload_name = workload current; deltas; regressions }

let compare_strings ~baseline ~current =
  match (parse_result baseline, parse_result current) with
  | Error e, _ -> Error (Printf.sprintf "baseline: %s" e)
  | _, Error e -> Error (Printf.sprintf "current: %s" e)
  | Ok b, Ok c -> Ok (compare_json ~baseline:b ~current:c)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let fmt_opt = function
  | None -> "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e12 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.4g" v

let pct d =
  match (d.baseline, d.current) with
  | Some b, Some c when b <> 0. -> Printf.sprintf "%+.1f%%" ((c -. b) /. Float.abs b *. 100.)
  | Some b, Some c when b = 0. && c = 0. -> "+0.0%"
  | _ -> "-"

let status_label = function
  | Ok_within -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Informational -> "info"
  | Missing -> "MISSING"

let render ?(show_info = false) report =
  let buf = Buffer.create 2048 in
  (match report.workload_name with
  | Some w -> Buffer.add_string buf (Printf.sprintf "workload: %s\n" w)
  | None -> ());
  let rows =
    List.filter
      (fun d -> show_info || d.status <> Informational)
      report.deltas
  in
  let cells =
    ("metric", "baseline", "current", "delta", "status")
    :: List.map
         (fun d -> (d.key, fmt_opt d.baseline, fmt_opt d.current, pct d,
                    status_label d.status))
         rows
  in
  let w f = List.fold_left (fun m r -> max m (String.length (f r))) 0 cells in
  let w1 = w (fun (a, _, _, _, _) -> a)
  and w2 = w (fun (_, b, _, _, _) -> b)
  and w3 = w (fun (_, _, c, _, _) -> c)
  and w4 = w (fun (_, _, _, d, _) -> d) in
  List.iter
    (fun (a, b, c, d, e) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s  %*s  %*s  %*s  %s\n" w1 a w2 b w3 c w4 d e))
    cells;
  Buffer.add_string buf
    (if report.regressions = [] then "  => no regressions\n"
     else
       Printf.sprintf "  => %d regression(s)\n"
         (List.length report.regressions));
  Buffer.contents buf
