lib/circuit/depth.ml: Circuit Float Gate Hashtbl Instr List Option
