(** The Draper–Kutin–Rains–Svore carry-lookahead adder \[Dra+04\] (cited in
    the paper's related-work survey): all carries are computed by a
    Brent–Kung parallel-prefix tree over (propagate, generate) pairs in
    [O(log n)] Toffoli depth, against the [O(n)] depth of every ripple
    adder. The Toffoli {e count} is higher (~[7n] worst case, ~[5n] with the
    MBU-erased propagate tree) — the classic depth-for-count trade, measured
    in the benchmark's depth ablation.

    Register conventions as in {!Adder_vbe}. With [mbu] (default true) the
    propagate-tree ancillas and the generate bits are erased by
    measurement-based uncomputation instead of mirrored Toffolis. *)

open Mbu_circuit

val add : ?mbu:bool -> Builder.t -> x:Register.t -> y:Register.t -> unit
(** [y <- x + y] (definition 2.1), [length y = length x + 1]. *)

val compute_carries :
  Builder.t -> p:Gate.qubit array -> g:Gate.qubit array -> unit
(** The prefix tree in isolation, exposed for testing: [p] holds the
    propagate bits (read-only), [g] the generate bits; afterwards [g.(i)]
    holds carry [c_{i+1}]. Unitary (the internal propagate tree is mirrored,
    not measured), so [Builder.emit_adjoint] inverts it. *)

val uncompute_carries :
  Builder.t -> p:Gate.qubit array -> g:Gate.qubit array -> unit
(** Exact inverse of {!compute_carries} with the same wires. *)
