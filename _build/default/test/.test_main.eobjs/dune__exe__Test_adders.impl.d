test/test_adders.ml: Adder_cdkpm Adder_draper Adder_gidney Adder_vbe Alcotest Builder Circuit Counts Helpers List Mbu_circuit Mbu_core Mbu_simulator Printf Register
