lib/core/coset.mli: Adder Builder Mbu_circuit Register
