(** Named quantum registers.

    A register is an ordered collection of wire indices, LSB first, matching
    the paper's convention that qubit [A_i] of register [A] stores the bit of
    weight [2^i]. *)

type t

val make : name:string -> int array -> t
val name : t -> string
val length : t -> int

val get : t -> int -> Gate.qubit
(** [get r i] is the wire holding bit [i]. Raises [Invalid_argument] if out
    of bounds. *)

val qubits : t -> Gate.qubit array
(** A copy of the underlying wires, LSB first. *)

val to_list : t -> Gate.qubit list

val sub : t -> pos:int -> len:int -> t
(** [sub r ~pos ~len] is the register formed by bits [pos .. pos+len-1]. *)

val append : t -> t -> t
(** [append lo hi] concatenates, [lo] holding the least significant bits.
    Used e.g. to view an [n]-bit register plus its overflow qubit as one
    [(n+1)]-bit register. *)

val extend : t -> Gate.qubit -> t
(** [extend r q] appends a single most significant qubit. *)

val pp : Format.formatter -> t -> unit
