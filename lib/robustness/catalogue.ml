open Mbu_circuit
open Mbu_core

type entry = {
  name : string;
  title : string;
  make : n:int -> p:int -> Engine.spec;
}

(* Deterministic inputs with x + y >= p (for p >= 3), so the comparator and
   the conditional subtract-p path both do real work. *)
let default_inputs ~p =
  let x = 2 * (p - 1) / 3 and y = ((p - 1) / 2) + 1 in
  (x mod p, y mod p)

let default_constant ~p = max 1 (p / 3) mod p

let vbe_spec =
  Mod_add.{ q_add = Adder.Vbe; q_comp_const = Adder.Vbe;
            c_q_sub_const = Adder.Vbe; q_comp = Adder.Vbe }

let modadd_entry name title build =
  let make ~n ~p =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    build b ~p ~x ~y;
    let xv, yv = default_inputs ~p in
    Engine.spec_of_builder ~name b
      ~inits:[ (x, xv); (y, yv) ]
      ~keep:[ x; y ]
      ~expect:[ (x, xv); (y, (xv + yv) mod p) ]
  in
  { name; title; make }

let const_entry name title build =
  let make ~n ~p =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let a = default_constant ~p in
    build b ~p ~a ~x;
    let xv, _ = default_inputs ~p in
    Engine.spec_of_builder ~name b
      ~inits:[ (x, xv) ]
      ~keep:[ x ]
      ~expect:[ (x, (xv + a) mod p) ]
  in
  { name; title; make }

let table1 =
  [ modadd_entry "vbe5" "(5 adder) VBE"
      (fun b ~p ~x ~y -> Mod_add.modadd_vbe_5adder ~mbu:true b ~p ~x ~y);
    modadd_entry "vbe4" "(4 adder) VBE"
      (fun b ~p ~x ~y -> Mod_add.modadd_vbe_4adder ~mbu:true b ~p ~x ~y);
    modadd_entry "cdkpm" "CDKPM"
      (fun b ~p ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y);
    modadd_entry "gidney" "Gidney"
      (fun b ~p ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_gidney b ~p ~x ~y);
    modadd_entry "mixed" "CDKPM+Gidney"
      (fun b ~p ~x ~y -> Mod_add.modadd ~mbu:true Mod_add.spec_mixed b ~p ~x ~y);
    modadd_entry "draper" "Draper"
      (fun b ~p ~x ~y -> Mod_add.modadd_draper ~mbu:true b ~p ~x ~y) ]

let const_adders =
  [ const_entry "modadd-const" "modadd-const (CDKPM)"
      (fun b ~p ~a ~x -> Mod_add.modadd_const ~mbu:true Mod_add.spec_cdkpm b ~p ~a ~x);
    const_entry "takahashi" "Takahashi"
      (fun b ~p ~a ~x ->
        Mod_add.modadd_const_takahashi ~mbu:true vbe_spec b ~p ~a ~x) ]

let all = table1 @ const_adders

let find name = List.find_opt (fun e -> e.name = name) all

let lint (spec : Engine.spec) =
  (* Every catalogue builder allocates its input registers first, so the
     input block is exactly the kept registers' wires: 2n for the
     two-register modadds, n for the constant adders. *)
  let input_qubits =
    List.fold_left (fun acc r -> acc + Register.length r) 0 spec.Engine.keep
  in
  Lint.check ~input_qubits spec.Engine.circuit
