open Mbu_circuit

let t = Phase.theta 3
let t_dag = Phase.neg t
let s = Phase.theta 2

(* Nielsen-Chuang figure 4.9. *)
let toffoli_7t ~c1 ~c2 ~target =
  [ Gate.H target;
    Gate.Cnot { control = c2; target };
    Gate.Phase (target, t_dag);
    Gate.Cnot { control = c1; target };
    Gate.Phase (target, t);
    Gate.Cnot { control = c2; target };
    Gate.Phase (target, t_dag);
    Gate.Cnot { control = c1; target };
    Gate.Phase (c2, t);
    Gate.Phase (target, t);
    Gate.H target;
    Gate.Cnot { control = c1; target = c2 };
    Gate.Phase (c1, t);
    Gate.Phase (c2, t_dag);
    Gate.Cnot { control = c1; target = c2 } ]

(* Figure 10. After H, the T ladder applies the phase
   (pi/4)(tau - (tau XOR a) + (tau XOR a XOR b) - (tau XOR b))
     = pi.a.b.tau - (pi/2).a.b,
   i.e. a CCZ onto the fresh qubit up to a residual (-i)^{ab}; the final H
   turns the CCZ into the AND and the S on the AND bit repairs the
   residual. *)
let and_4t ~c1 ~c2 ~target =
  [ Gate.H target;
    Gate.Phase (target, t);
    Gate.Cnot { control = c1; target };
    Gate.Phase (target, t_dag);
    Gate.Cnot { control = c2; target };
    Gate.Phase (target, t);
    Gate.Cnot { control = c1; target };
    Gate.Phase (target, t_dag);
    Gate.Cnot { control = c2; target };
    Gate.H target;
    Gate.Phase (target, s) ]

let circuit ?(fresh_target_and = false) (c : Circuit.t) =
  let expand = if fresh_target_and then and_4t else toffoli_7t in
  (* A shared block rewrites to a shared block: the rewritten body is
     re-interned once per distinct node and every reference reuses it. *)
  let memo : (int, Instr.t) Hashtbl.t = Hashtbl.create 32 in
  let rec rewrite = function
    | [] -> []
    | Instr.Gate (Gate.Toffoli { c1; c2; target }) :: rest ->
        List.map (fun g -> Instr.Gate g) (expand ~c1 ~c2 ~target) @ rewrite rest
    | (Instr.Gate _ as i) :: rest | (Instr.Measure _ as i) :: rest ->
        i :: rewrite rest
    | Instr.If_bit { bit; value; body } :: rest ->
        Instr.If_bit { bit; value; body = rewrite body } :: rewrite rest
    | Instr.Span { label; peak_ancillas; body } :: rest ->
        Instr.Span { label; peak_ancillas; body = rewrite body } :: rewrite rest
    | Instr.Call node :: rest ->
        let i =
          match Hashtbl.find_opt memo node.Instr.id with
          | Some i -> i
          | None ->
              let i = Instr.share (rewrite node.Instr.body) in
              Hashtbl.add memo node.Instr.id i;
              i
        in
        i :: rewrite rest
  in
  Circuit.make ~num_qubits:c.Circuit.num_qubits ~num_bits:c.Circuit.num_bits
    (rewrite c.Circuit.instrs)

let t_count ~mode instrs =
  let weight = match mode with
    | Counts.Worst -> 1.
    | Counts.Best -> 0.
    | Counts.Expected p -> p
  in
  let is_t = function
    | Gate.Phase (_, p) -> Phase.log2_den p = 3
    | _ -> false
  in
  let rec count w = function
    | [] -> 0.
    | Instr.Gate g :: rest -> (if is_t g then w else 0.) +. count w rest
    | Instr.Measure _ :: rest -> count w rest
    | Instr.If_bit { body; _ } :: rest -> count (w *. weight) body +. count w rest
    | (Instr.Span { body; _ } | Instr.Call { body; _ }) :: rest ->
        count w body +. count w rest
  in
  count 1. instrs
