lib/core/mod_mul.mli: Builder Gate Mbu_circuit Mod_add Register
