open Mbu_circuit

(* Two representations ("tracks"):

   - [Classical]: a single basis vector stored as a plain [int] plus its
     (global-phase) amplitude. X / CNOT / Toffoli / Swap are O(1) bit
     twiddles with zero allocation; diagonal gates multiply the amplitude.
     MBU circuits are overwhelmingly in this regime.
   - [Sparse]: the general finite map from basis index to amplitude.
     Permutation and diagonal gates mutate the table in place; only H
     double-buffers into a fresh table.

   H on a classical state promotes to sparse; whenever a sparse table
   collapses back to a single term (H recombination, projection, reset) the
   state demotes back to classical — unless [pinned] was set, which keeps a
   state on the sparse track so tests and benchmarks can exercise the sparse
   kernel on circuits that would otherwise stay classical. *)

type repr =
  | Classical of { mutable idx : int; mutable amp : Complex.t }
  | Sparse of (int, Complex.t) Hashtbl.t

type t = { num_qubits : int; mutable repr : repr; mutable pinned : bool }

let eps = 1e-12
let num_qubits s = s.num_qubits

let check_range ~num_qubits idx =
  if num_qubits < 0 || num_qubits > 62 then invalid_arg "State: qubit count";
  if idx < 0 || (num_qubits < 62 && idx >= 1 lsl num_qubits) then
    invalid_arg "State: basis index out of range"

let basis ~num_qubits idx =
  check_range ~num_qubits idx;
  { num_qubits; repr = Classical { idx; amp = Complex.one }; pinned = false }

let maybe_demote s =
  if not s.pinned then
    match s.repr with
    | Classical _ -> ()
    | Sparse tbl ->
        if Hashtbl.length tbl = 1 then
          Hashtbl.iter (fun k v -> s.repr <- Classical { idx = k; amp = v }) tbl

let of_alist ~num_qubits l =
  let amps = Hashtbl.create (max 16 (List.length l)) in
  List.iter
    (fun (idx, a) ->
      check_range ~num_qubits idx;
      if Hashtbl.mem amps idx then invalid_arg "State.of_alist: repeated index";
      Hashtbl.replace amps idx a)
    l;
  let s = { num_qubits; repr = Sparse amps; pinned = false } in
  maybe_demote s;
  s

let iter_amps s f =
  match s.repr with
  | Classical { idx; amp } -> f idx amp
  | Sparse tbl -> Hashtbl.iter f tbl

let to_alist s =
  let acc = ref [] in
  iter_amps s (fun k v -> if Complex.norm v > eps then acc := (k, v) :: !acc);
  List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) !acc

let num_terms s = List.length (to_alist s)

let support_size s =
  match s.repr with Classical _ -> 1 | Sparse tbl -> Hashtbl.length tbl

let norm2 s =
  let acc = ref 0. in
  iter_amps s (fun _ v -> acc := !acc +. Complex.norm2 v);
  !acc

let norm s = sqrt (norm2 s)

let copy s =
  { s with
    repr =
      (match s.repr with
      | Classical { idx; amp } -> Classical { idx; amp }
      | Sparse tbl -> Sparse (Hashtbl.copy tbl)) }

let is_classical s = match s.repr with Classical _ -> true | Sparse _ -> false

let force_sparse s =
  (match s.repr with
  | Sparse _ -> ()
  | Classical { idx; amp } ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace tbl idx amp;
      s.repr <- Sparse tbl);
  s.pinned <- true

let scale_inplace s c =
  match s.repr with
  | Classical cl -> cl.amp <- Complex.mul c cl.amp
  | Sparse tbl ->
      Hashtbl.filter_map_inplace (fun _ v -> Some (Complex.mul c v)) tbl

let normalize s =
  let n = norm s in
  if n = 0. then invalid_arg "State.normalize: zero state";
  let s = copy s in
  scale_inplace s { re = 1. /. n; im = 0. };
  s

let bit idx q = (idx lsr q) land 1 = 1
let phase_of p = Complex.polar 1.0 (Phase.to_radians p)

(* In-place permutation kernel. Every permutation gate we support (X, CNOT,
   Toffoli, Swap) is an involution whose firing condition is invariant under
   the move: index [k] with [cond k] swaps with [k lxor mask]. Snapshot the
   key set once, then exchange amplitudes pairwise inside the same table —
   no rebuild. A snapshot key can only disappear before its visit by being
   the source of an earlier move, in which case its pair is already done. *)
let permute_involution tbl cond mask =
  let keys = Array.make (Hashtbl.length tbl) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun k _ ->
      keys.(!i) <- k;
      incr i)
    tbl;
  Array.iter
    (fun k ->
      if cond k then
        let k2 = k lxor mask in
        match (Hashtbl.find_opt tbl k, Hashtbl.find_opt tbl k2) with
        | Some v, Some v2 ->
            if k < k2 then begin
              Hashtbl.replace tbl k v2;
              Hashtbl.replace tbl k2 v
            end
        | Some v, None ->
            Hashtbl.remove tbl k;
            Hashtbl.replace tbl k2 v
        | None, _ -> ())
    keys

(* H double-buffers: the only gate that can merge or split terms. *)
let h_table src q =
  let r = 1.0 /. sqrt 2.0 in
  let amps = Hashtbl.create (2 * Hashtbl.length src) in
  let accum k v =
    if Complex.norm v > eps then
      match Hashtbl.find_opt amps k with
      | Some prev ->
          let sum = Complex.add prev v in
          if Complex.norm sum > eps then Hashtbl.replace amps k sum
          else Hashtbl.remove amps k
      | None -> Hashtbl.replace amps k v
  in
  Hashtbl.iter
    (fun k v ->
      let scaled = Complex.mul { Complex.re = r; im = 0. } v in
      if bit k q then begin
        accum (k lxor (1 lsl q)) scaled;
        accum k (Complex.neg scaled)
      end
      else begin
        accum k scaled;
        accum (k lxor (1 lsl q)) scaled
      end)
    src;
  amps

let apply_gate_inplace s g =
  match s.repr with
  | Classical c -> (
      match g with
      | Gate.X q -> c.idx <- c.idx lxor (1 lsl q)
      | Gate.Cnot { control; target } ->
          if bit c.idx control then c.idx <- c.idx lxor (1 lsl target)
      | Gate.Toffoli { c1; c2; target } ->
          if bit c.idx c1 && bit c.idx c2 then c.idx <- c.idx lxor (1 lsl target)
      | Gate.Swap (a, b) ->
          if bit c.idx a <> bit c.idx b then
            c.idx <- c.idx lxor (1 lsl a) lxor (1 lsl b)
      | Gate.Z q -> if bit c.idx q then c.amp <- Complex.neg c.amp
      | Gate.Cz (a, b) ->
          if bit c.idx a && bit c.idx b then c.amp <- Complex.neg c.amp
      | Gate.Phase (q, p) ->
          if bit c.idx q then c.amp <- Complex.mul (phase_of p) c.amp
      | Gate.Cphase { control; target; phase } ->
          if bit c.idx control && bit c.idx target then
            c.amp <- Complex.mul (phase_of phase) c.amp
      | Gate.H q ->
          (* Promote: a single term always splits into exactly two. *)
          let r = 1.0 /. sqrt 2.0 in
          let scaled = Complex.mul { Complex.re = r; im = 0. } c.amp in
          let tbl = Hashtbl.create 16 in
          if bit c.idx q then begin
            Hashtbl.replace tbl (c.idx lxor (1 lsl q)) scaled;
            Hashtbl.replace tbl c.idx (Complex.neg scaled)
          end
          else begin
            Hashtbl.replace tbl c.idx scaled;
            Hashtbl.replace tbl (c.idx lxor (1 lsl q)) scaled
          end;
          s.repr <- Sparse tbl)
  | Sparse tbl -> (
      match g with
      | Gate.X q -> permute_involution tbl (fun _ -> true) (1 lsl q)
      | Gate.Cnot { control; target } ->
          permute_involution tbl (fun k -> bit k control) (1 lsl target)
      | Gate.Toffoli { c1; c2; target } ->
          permute_involution tbl
            (fun k -> bit k c1 && bit k c2)
            (1 lsl target)
      | Gate.Swap (a, b) ->
          permute_involution tbl
            (fun k -> bit k a <> bit k b)
            ((1 lsl a) lor (1 lsl b))
      | Gate.Z q ->
          Hashtbl.filter_map_inplace
            (fun k v -> Some (if bit k q then Complex.neg v else v))
            tbl
      | Gate.Cz (a, b) ->
          Hashtbl.filter_map_inplace
            (fun k v -> Some (if bit k a && bit k b then Complex.neg v else v))
            tbl
      | Gate.Phase (q, p) ->
          let w = phase_of p in
          Hashtbl.filter_map_inplace
            (fun k v -> Some (if bit k q then Complex.mul w v else v))
            tbl
      | Gate.Cphase { control; target; phase } ->
          let w = phase_of phase in
          Hashtbl.filter_map_inplace
            (fun k v ->
              Some
                (if bit k control && bit k target then Complex.mul w v else v))
            tbl
      | Gate.H q ->
          s.repr <- Sparse (h_table tbl q);
          maybe_demote s)

let apply_gate s g =
  let s = copy s in
  apply_gate_inplace s g;
  s

let prob_bit_one s q =
  let p = ref 0. in
  iter_amps s (fun k v -> if bit k q then p := !p +. Complex.norm2 v);
  !p /. norm2 s

let project_inplace s ~qubit ~value =
  match s.repr with
  | Classical c ->
      if bit c.idx qubit <> value then
        invalid_arg "State.project: zero-probability outcome";
      let n = Complex.norm c.amp in
      if n < eps then invalid_arg "State.project: zero-probability outcome";
      c.amp <- Complex.div c.amp { re = n; im = 0. }
  | Sparse tbl ->
      Hashtbl.filter_map_inplace
        (fun k v -> if bit k qubit = value then Some v else None)
        tbl;
      let n2 = Hashtbl.fold (fun _ v acc -> acc +. Complex.norm2 v) tbl 0. in
      if sqrt n2 < eps then
        invalid_arg "State.project: zero-probability outcome";
      let inv = 1. /. sqrt n2 in
      Hashtbl.filter_map_inplace
        (fun _ v -> Some (Complex.mul { Complex.re = inv; im = 0. } v))
        tbl;
      maybe_demote s

let project s ~qubit ~value =
  let s = copy s in
  project_inplace s ~qubit ~value;
  s

(* Clearing a wire is NOT a permutation: when the support holds both values
   of the wire, indices [k] and [k lxor mask] collide on the cleared index,
   so the colliding amplitudes must be accumulated (the map is linear, not
   bijective). The seed implementation routed this through [permute], whose
   [Hashtbl.replace] silently dropped one of the two amplitudes. *)
let set_bit_zero_inplace s ~qubit =
  match s.repr with
  | Classical c -> c.idx <- c.idx land lnot (1 lsl qubit)
  | Sparse tbl ->
      let mask = 1 lsl qubit in
      let moved = ref [] in
      Hashtbl.iter
        (fun k v -> if k land mask <> 0 then moved := (k, v) :: !moved)
        tbl;
      List.iter (fun (k, _) -> Hashtbl.remove tbl k) !moved;
      List.iter
        (fun (k, v) ->
          let k' = k land lnot mask in
          let sum =
            match Hashtbl.find_opt tbl k' with
            | Some prev -> Complex.add prev v
            | None -> v
          in
          if Complex.norm sum > eps then Hashtbl.replace tbl k' sum
          else Hashtbl.remove tbl k')
        !moved;
      maybe_demote s

let set_bit_zero s ~qubit =
  let s = copy s in
  set_bit_zero_inplace s ~qubit;
  s

let fidelity a b =
  if a.num_qubits <> b.num_qubits then invalid_arg "State.fidelity";
  let na = norm a and nb = norm b in
  let find_b k =
    match b.repr with
    | Classical { idx; amp } -> if idx = k then Some amp else None
    | Sparse tbl -> Hashtbl.find_opt tbl k
  in
  let dot = ref Complex.zero in
  iter_amps a (fun k va ->
      match find_b k with
      | Some vb -> dot := Complex.add !dot (Complex.mul (Complex.conj va) vb)
      | None -> ());
  Complex.norm !dot /. (na *. nb)

let classical_value s =
  match s.repr with
  | Classical { idx; amp } -> if Complex.norm amp > eps then Some idx else None
  | Sparse _ -> ( match to_alist s with [ (k, _) ] -> Some k | _ -> None)

let bit_value s q =
  match to_alist s with
  | [] -> None
  | (k0, _) :: rest ->
      let v = bit k0 q in
      if List.for_all (fun (k, _) -> bit k q = v) rest then Some v else None

(* ------------------------------------------------------------------ *)
(* Reference engine: the seed's pure rebuild-per-gate algorithms, kept as
   the oracle for the property tests comparing backends, and as the
   "before" baseline in the simulator benchmark. Always returns a sparse
   state; [pinned] is inherited so it never demotes mid-circuit. *)

module Reference = struct
  let sparse_of s =
    let tbl = Hashtbl.create 16 in
    iter_amps s (fun k v -> Hashtbl.replace tbl k v);
    tbl

  let wrap s tbl = { num_qubits = s.num_qubits; repr = Sparse tbl; pinned = s.pinned }

  let permute s f =
    let src = sparse_of s in
    let amps = Hashtbl.create (Hashtbl.length src) in
    Hashtbl.iter (fun k v -> Hashtbl.replace amps (f k) v) src;
    wrap s amps

  let map_amps s f =
    let src = sparse_of s in
    let amps = Hashtbl.create (Hashtbl.length src) in
    Hashtbl.iter
      (fun k v ->
        let v = f k v in
        if Complex.norm v > eps then Hashtbl.replace amps k v)
      src;
    wrap s amps

  let apply_gate s g =
    match g with
    | Gate.X q -> permute s (fun k -> k lxor (1 lsl q))
    | Gate.Cnot { control; target } ->
        permute s (fun k -> if bit k control then k lxor (1 lsl target) else k)
    | Gate.Toffoli { c1; c2; target } ->
        permute s (fun k ->
            if bit k c1 && bit k c2 then k lxor (1 lsl target) else k)
    | Gate.Swap (a, b) ->
        permute s (fun k ->
            if bit k a <> bit k b then k lxor (1 lsl a) lxor (1 lsl b) else k)
    | Gate.Z q -> map_amps s (fun k v -> if bit k q then Complex.neg v else v)
    | Gate.Cz (a, b) ->
        map_amps s (fun k v -> if bit k a && bit k b then Complex.neg v else v)
    | Gate.Phase (q, p) ->
        let w = phase_of p in
        map_amps s (fun k v -> if bit k q then Complex.mul w v else v)
    | Gate.Cphase { control; target; phase } ->
        let w = phase_of phase in
        map_amps s (fun k v ->
            if bit k control && bit k target then Complex.mul w v else v)
    | Gate.H q -> wrap s (h_table (sparse_of s) q)

  let project s ~qubit ~value =
    let src = sparse_of s in
    let amps = Hashtbl.create (Hashtbl.length src) in
    Hashtbl.iter
      (fun k v -> if bit k qubit = value then Hashtbl.replace amps k v)
      src;
    let s = wrap s amps in
    if norm s < eps then invalid_arg "State.project: zero-probability outcome";
    let n = norm s in
    map_amps s (fun _ v -> Complex.div v { re = n; im = 0. })

  let set_bit_zero s ~qubit =
    let mask = 1 lsl qubit in
    let src = sparse_of s in
    let amps = Hashtbl.create (Hashtbl.length src) in
    Hashtbl.iter
      (fun k v ->
        let k' = k land lnot mask in
        let sum =
          match Hashtbl.find_opt amps k' with
          | Some prev -> Complex.add prev v
          | None -> v
        in
        if Complex.norm sum > eps then Hashtbl.replace amps k' sum
        else Hashtbl.remove amps k')
      src;
    wrap s amps
end

let pp fmt s =
  let entries = to_alist s in
  let bits k =
    String.init s.num_qubits (fun i ->
        if bit k (s.num_qubits - 1 - i) then '1' else '0')
  in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (k, (v : Complex.t)) ->
      Format.fprintf fmt "|%s> -> %.4f%+.4fi@," (bits k) v.re v.im)
    entries;
  Format.fprintf fmt "@]"
