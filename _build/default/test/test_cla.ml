(* Carry-lookahead adder [Dra+04]: prefix-tree carries against the
   classical carry recursion, full-adder correctness, logarithmic Toffoli
   depth. *)

open Mbu_bitstring
open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng

(* compute_carries alone: for every (x, y) pair the g array must end up
   holding c_1 .. c_n of definition 1.2. *)
let test_prefix_carries_exhaustive () =
  List.iter
    (fun n ->
      let step = max 1 ((1 lsl n) / 8) in
      let v = ref 0 in
      while !v < 1 lsl (2 * n) do
        let x_val = !v land ((1 lsl n) - 1) in
        let y_val = !v lsr n in
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        let g = Builder.fresh_register b "g" n in
        (* prepare p and g, then run the tree *)
        for i = 0 to n - 1 do
          Builder.toffoli b ~c1:(Register.get x i) ~c2:(Register.get y i)
            ~target:(Register.get g i);
          Builder.cnot b ~control:(Register.get x i) ~target:(Register.get y i)
        done;
        Adder_cla.compute_carries b ~p:(Register.qubits y) ~g:(Register.qubits g);
        let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
        let carries =
          Bitstring.carries (Bitstring.of_int ~width:n x_val)
            (Bitstring.of_int ~width:n y_val)
        in
        let expect = ref 0 in
        for i = 0 to n - 1 do
          if Bitstring.get carries (i + 1) then expect := !expect lor (1 lsl i)
        done;
        Alcotest.(check int)
          (Printf.sprintf "carries n=%d x=%d y=%d" n x_val y_val)
          !expect
          (Sim.register_value_exn r.Sim.state g);
        v := !v + step
      done)
    [ 1; 2; 3; 4; 5; 6; 7 ]

let test_carries_roundtrip () =
  (* uncompute_carries inverts compute_carries *)
  let n = 6 in
  for trial = 1 to 20 do
    let x_val = Random.State.int Helpers.rng (1 lsl n) in
    let g_val = Random.State.int Helpers.rng (1 lsl n) in
    let b = Builder.create () in
    let p = Builder.fresh_register b "p" n in
    let g = Builder.fresh_register b "g" n in
    Adder_cla.compute_carries b ~p:(Register.qubits p) ~g:(Register.qubits g);
    Adder_cla.uncompute_carries b ~p:(Register.qubits p) ~g:(Register.qubits g);
    let r = Sim.run_builder ~rng b ~inits:[ (p, x_val); (g, g_val) ] in
    Alcotest.(check int)
      (Printf.sprintf "roundtrip trial %d" trial)
      g_val
      (Sim.register_value_exn r.Sim.state g)
  done

let test_cla_adder_exhaustive () =
  List.iter
    (fun mbu ->
      List.iter
        (fun n ->
          Helpers.check_adder_exhaustive ~reps:(if mbu then 2 else 1)
            ~name:(Printf.sprintf "cla%s" (if mbu then "+mbu" else ""))
            (fun b ~x ~y -> Adder_cla.add ~mbu b ~x ~y)
            n)
        [ 1; 2; 3 ])
    [ false; true ]

let test_cla_adder_wide_random () =
  Helpers.check_adder_random ~reps:2 ~cases:25 ~name:"cla-wide"
    (fun b ~x ~y -> Adder_cla.add b ~x ~y)
    11

let test_cla_superposition () =
  Helpers.check_adder_superposition ~name:"cla" (fun b ~x ~y -> Adder_cla.add b ~x ~y) 3 4

let test_logarithmic_toffoli_depth () =
  let depth_of build n =
    let r =
      Resources.measure ~n
        ~build:(fun b ->
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" (n + 1) in
          build b ~x ~y)
        ()
    in
    (r.Resources.toffoli_depth, r.Resources.toffoli)
  in
  let cla_d = fst (depth_of (fun b ~x ~y -> Adder_cla.add ~mbu:false b ~x ~y) 64) in
  let ripple_d = fst (depth_of (fun b ~x ~y -> Adder_cdkpm.add b ~x ~y) 64) in
  Alcotest.(check bool)
    (Printf.sprintf "cla depth %.0f << ripple depth %.0f" cla_d ripple_d)
    true
    (cla_d < ripple_d /. 3.);
  (* depth must scale ~logarithmically: doubling n adds O(1) levels *)
  let d32 = fst (depth_of (fun b ~x ~y -> Adder_cla.add ~mbu:false b ~x ~y) 32) in
  let d64 = cla_d in
  Alcotest.(check bool)
    (Printf.sprintf "log growth: d64 %.0f - d32 %.0f <= 8" d64 d32)
    true
    (d64 -. d32 <= 8.);
  (* count trade: cla uses more toffoli than cdkpm *)
  let _, cla_count = depth_of (fun b ~x ~y -> Adder_cla.add ~mbu:false b ~x ~y) 64 in
  let _, cdkpm_count = depth_of (fun b ~x ~y -> Adder_cdkpm.add b ~x ~y) 64 in
  Alcotest.(check bool) "depth costs count" true (cla_count > cdkpm_count)

let test_mbu_reduces_cla_count () =
  let n = 32 in
  let tof mbu =
    (Resources.measure ~n
       ~build:(fun b ->
         let x = Builder.fresh_register b "x" n in
         let y = Builder.fresh_register b "y" (n + 1) in
         Adder_cla.add ~mbu b ~x ~y)
       ())
      .Resources.toffoli
  in
  let plain = tof false and mbu = tof true in
  Alcotest.(check bool)
    (Printf.sprintf "mbu %.1f < plain %.1f" mbu plain)
    true (mbu < plain)

let suite =
  ( "carry-lookahead",
    [ Alcotest.test_case "prefix carries vs def 1.2" `Quick
        test_prefix_carries_exhaustive;
      Alcotest.test_case "carries roundtrip" `Quick test_carries_roundtrip;
      Alcotest.test_case "adder exhaustive" `Quick test_cla_adder_exhaustive;
      Alcotest.test_case "adder wide random" `Quick test_cla_adder_wide_random;
      Alcotest.test_case "superposition" `Quick test_cla_superposition;
      Alcotest.test_case "logarithmic toffoli depth" `Quick
        test_logarithmic_toffoli_depth;
      Alcotest.test_case "mbu reduces count" `Quick test_mbu_reduces_cla_count ] )
