lib/simulator/sim.mli: Builder Circuit Counts Mbu_circuit Random Register State
