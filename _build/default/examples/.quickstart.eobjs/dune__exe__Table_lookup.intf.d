examples/table_lookup.mli:
