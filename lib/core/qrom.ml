open Mbu_circuit

let check name ~address ~entries =
  let k = Register.length address in
  if k <= 0 || k > 20 then invalid_arg (name ^ ": address width out of range");
  if entries <> 1 lsl k then
    invalid_arg (Printf.sprintf "%s: need %d data entries" name (1 lsl k))

(* Unary iteration over all addresses, MSB first. [f ~ctrl ~address] is
   called once per leaf; [ctrl = None] means unconditional. Each internal
   node costs one temporary logical-AND, erased by MBU:
     t = c AND a_bit          (right subtree control)
     t XOR c = c AND NOT a_bit (left subtree control). *)
let iterate b ~address f =
  let k = Register.length address in
  let rec walk ~ctrl ~bit ~base =
    if bit < 0 then f ~ctrl ~address:base
    else
      let ab = Register.get address bit in
      match ctrl with
      | None ->
          Builder.x b ab;
          walk ~ctrl:(Some ab) ~bit:(bit - 1) ~base;
          Builder.x b ab;
          walk ~ctrl:(Some ab) ~bit:(bit - 1) ~base:(base lor (1 lsl bit))
      | Some c ->
          Builder.with_ancilla b (fun t ->
              Logical_and.compute b ~c1:c ~c2:ab ~target:t;
              Builder.cnot b ~control:c ~target:t;
              walk ~ctrl:(Some t) ~bit:(bit - 1) ~base;
              Builder.cnot b ~control:c ~target:t;
              walk ~ctrl:(Some t) ~bit:(bit - 1) ~base:(base lor (1 lsl bit));
              Logical_and.uncompute b ~c1:c ~c2:ab ~target:t)
  in
  walk ~ctrl:None ~bit:(k - 1) ~base:0

let lookup b ~address ~target ~data =
  check "Qrom.lookup" ~address ~entries:(Array.length data);
  Builder.with_span b "qrom.lookup" @@ fun () ->
  let w = Register.length target in
  iterate b ~address (fun ~ctrl ~address:a ->
      let v = data.(a) in
      if v < 0 || (w < 62 && v lsr w <> 0) then
        invalid_arg "Qrom.lookup: entry does not fit target";
      for j = 0 to w - 1 do
        if (v lsr j) land 1 = 1 then
          match ctrl with
          | None -> Builder.x b (Register.get target j)
          | Some c -> Builder.cnot b ~control:c ~target:(Register.get target j)
      done)

let unlookup_via_lookup b ~address ~target ~data = lookup b ~address ~target ~data

(* One-hot (unary) encoding of the low address bits: a ladder of controlled
   swaps walks the indicator from position 0 to position a_lo. *)
let onehot_prepare b ~low_bits ~unary =
  (* Shared: unlookup runs one phase_lookup per payload column over the
     same address/unary wires, so the ladder is built once and referenced
     once per column (and its adjoint likewise). *)
  Builder.with_shared b "qrom.onehot" @@ fun () ->
  Builder.x b (Register.get unary 0);
  Array.iteri
    (fun bidx ab ->
      for i = (1 lsl bidx) - 1 downto 0 do
        let src = Register.get unary i and dst = Register.get unary (i + (1 lsl bidx)) in
        (* CSWAP(ab; src, dst), one Toffoli *)
        Builder.cnot b ~control:dst ~target:src;
        Builder.toffoli b ~c1:ab ~c2:src ~target:dst;
        Builder.cnot b ~control:dst ~target:src
      done)
    low_bits

let onehot_unprepare b ~low_bits ~unary =
  Builder.emit_adjoint b (fun () -> onehot_prepare b ~low_bits ~unary)

(* (-1)^{table.(a)}: one-hot the floor(k/2) low bits, then a unary iteration
   over the high bits applies the per-row CZ mask onto the one-hot wires. *)
let phase_lookup b ~address ~table =
  let k = Register.length address in
  check "Qrom.phase_lookup" ~address ~entries:(Array.length table);
  Builder.with_span b "qrom.phase_lookup" @@ fun () ->
  let k_lo = k / 2 in
  let low_bits = Array.init k_lo (Register.get address) in
  let hi = Register.sub address ~pos:k_lo ~len:(k - k_lo) in
  Builder.with_ancilla_register b "onehot" (1 lsl k_lo) (fun unary ->
      onehot_prepare b ~low_bits ~unary;
      if k_lo = k then
        (* degenerate: k <= 1, no high bits *)
        Array.iteri
          (fun a bit -> if bit then Builder.z b (Register.get unary a))
          table
      else
        iterate b ~address:hi (fun ~ctrl ~address:h ->
            for i = 0 to (1 lsl k_lo) - 1 do
              if table.((h lsl k_lo) lor i) then
                match ctrl with
                | None -> Builder.z b (Register.get unary i)
                | Some c -> Builder.cz b c (Register.get unary i)
            done);
      onehot_unprepare b ~low_bits ~unary)

(* Measurement-based unlookup: X-measure every payload qubit; each outcome-1
   bit leaves the phase (-1)^{data.(a)[j]} on the address register, repaired
   by one phase lookup of that bit column. *)
let unlookup b ~address ~target ~data =
  check "Qrom.unlookup" ~address ~entries:(Array.length data);
  Builder.with_span b "qrom.unlookup" @@ fun () ->
  let w = Register.length target in
  for j = 0 to w - 1 do
    let tq = Register.get target j in
    Builder.h b tq;
    let bit = Builder.measure ~reset:true b tq in
    Builder.if_bit b bit (fun () ->
        let column = Array.map (fun v -> (v lsr j) land 1 = 1) data in
        phase_lookup b ~address ~table:column)
  done
