lib/circuit/instr.ml: Format Gate List
