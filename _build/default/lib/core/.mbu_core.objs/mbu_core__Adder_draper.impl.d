lib/core/adder_draper.ml: Builder Logical_and Mbu_circuit Phase Qft Register
