(* Failure injection: deliberately break the MBU phase corrections and
   check that the superposition-fidelity harness catches each break. This
   guards the guards — a test suite whose phase checks silently passed on
   broken circuits would be worthless. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

(* A sabotaged logical-AND erasure: measures but never applies the
   conditional CZ. On a superposed input this leaves a random relative
   phase. *)
let broken_and_uncompute b ~target =
  Builder.h b target;
  ignore (Builder.measure ~reset:true b target)

(* Gidney-style adder block with the sabotage: x+y still computes in the
   computational basis, but phases are wrong on superpositions. *)
let sabotaged_gidney_add b ~x ~y =
  let n = Register.length x in
  let xq = Register.get x and yq = Register.get y in
  if n < 2 then invalid_arg "sabotage needs n >= 2";
  let t = Array.init (n - 1) (fun _ -> Builder.alloc_ancilla b) in
  let c i = if i = 0 then None else Some t.(i - 1) in
  let cnot_opt c q = match c with Some w -> Builder.cnot b ~control:w ~target:q | None -> () in
  for i = 0 to n - 2 do
    cnot_opt (c i) (xq i);
    cnot_opt (c i) (yq i);
    Builder.toffoli b ~c1:(xq i) ~c2:(yq i) ~target:t.(i);
    cnot_opt (c i) t.(i)
  done;
  cnot_opt (c (n - 1)) (xq (n - 1));
  cnot_opt (c (n - 1)) (yq (n - 1));
  Builder.toffoli b ~c1:(xq (n - 1)) ~c2:(yq (n - 1)) ~target:(yq n);
  cnot_opt (c (n - 1)) (yq n);
  cnot_opt (c (n - 1)) (xq (n - 1));
  Builder.cnot b ~control:(xq (n - 1)) ~target:(yq (n - 1));
  for i = n - 2 downto 0 do
    cnot_opt (c i) t.(i);
    broken_and_uncompute b ~target:t.(i);
    (* <- sabotage: no CZ *)
    cnot_opt (c i) (xq i);
    Builder.cnot b ~control:(xq i) ~target:(yq i)
  done;
  Array.iter (Builder.free_ancilla b) (Array.init (n - 1) (fun i -> t.(n - 2 - i)))

(* Probability that one run of the sabotaged adder on a superposed input
   produces the phase-perfect state. Each skipped CZ flips a coin; we just
   need to observe at least one bad run. *)
let test_sabotaged_adder_caught () =
  let n = 3 in
  (* classical correctness still holds — the sabotage is invisible to
     basis-state tests, which is the whole point *)
  Helpers.check_adder_exhaustive ~reps:2 ~name:"sabotaged-classical"
    (fun b ~x ~y -> sabotaged_gidney_add b ~x ~y)
    n;
  (* but the superposition check must fail for some run *)
  let bad_run_found = ref false in
  (for trial = 1 to 12 do
     if not !bad_run_found then begin
       let b = Builder.create () in
       let x = Builder.fresh_register b "x" n in
       let y = Builder.fresh_register b "y" (n + 1) in
       Array.iter (fun q -> Builder.h b q) (Register.qubits x);
       sabotaged_gidney_add b ~x ~y;
       (* y starts at 3, so the carries (and hence the AND values whose
          phases the sabotage corrupts) differ across the x branches *)
       let init =
         Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (y, 3) ]
       in
       let r =
         Sim.run ~rng:(Random.State.make [| trial; 99 |]) (Builder.to_circuit b)
           ~init
       in
       let amp : Complex.t = { re = 1.0 /. sqrt 8.0; im = 0.0 } in
       let expected =
         State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
           (List.init 8 (fun v ->
                let idx = ref 0 in
                for k = 0 to n - 1 do
                  if (v lsr k) land 1 = 1 then
                    idx := !idx lor (1 lsl Register.get x k)
                done;
                let s = v + 3 in
                for k = 0 to n do
                  if (s lsr k) land 1 = 1 then
                    idx := !idx lor (1 lsl Register.get y k)
                done;
                (!idx, amp)))
       in
       if State.fidelity r.Sim.state expected < 1. -. 1e-9 then
         bad_run_found := true
     end
   done);
  Alcotest.(check bool) "phase corruption detected" true !bad_run_found

(* Sabotage the MBU lemma itself: drop the U_g call in the outcome-1 branch
   of a modular adder's comparator erasure. *)
let test_sabotaged_mbu_lemma_caught () =
  let n = 3 and p = 7 in
  let build ~sabotage b ~x ~y =
    let open Mbu_circuit in
    Builder.with_ancilla b (fun high ->
        let ys = Register.extend y high in
        Adder_cdkpm.add b ~x ~y:ys;
        Builder.with_ancilla b (fun t ->
            Adder.compare_const Adder.Cdkpm b ~a:p ~x:ys ~target:t;
            Builder.x b t;
            Adder.sub_const_controlled Adder.Cdkpm b ~ctrl:t ~a:p ~y:ys;
            let ug () = Adder_cdkpm.compare b ~x ~y ~target:t in
            if sabotage then begin
              (* broken figure 24: measure, but never run U_g *)
              Builder.h b t;
              let bit = Builder.measure b t in
              Builder.if_bit b bit (fun () ->
                  Builder.h b t;
                  (* ug () missing *)
                  Builder.h b t;
                  Builder.x b t)
            end
            else Mbu.uncompute_bit b ~garbage:t ~ug))
  in
  (* the broken version leaves the comparator bit entangled or the phase
     wrong; detect via a 2-term superposition *)
  let run ~sabotage seed =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    (* superpose x over {1, 5} (bit 2) with bit 0 set *)
    Builder.x b (Register.get x 0);
    Builder.h b (Register.get x 2);
    build ~sabotage b ~x ~y;
    let init = Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (y, 4) ] in
    let r = Sim.run ~rng:(Random.State.make [| seed |]) (Builder.to_circuit b) ~init in
    let amp : Complex.t = { re = 1.0 /. sqrt 2.0; im = 0.0 } in
    let idx x_val y_val =
      let i = ref 0 in
      for k = 0 to n - 1 do
        if (x_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get x k);
        if (y_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get y k)
      done;
      !i
    in
    let expected =
      State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
        [ (idx 1 ((1 + 4) mod p), amp); (idx 5 ((5 + 4) mod p), amp) ]
    in
    State.fidelity r.Sim.state expected
  in
  (* healthy MBU: perfect on every seed *)
  for seed = 1 to 6 do
    Alcotest.(check bool) "healthy mbu exact" true (run ~sabotage:false seed > 1. -. 1e-9)
  done;
  (* sabotaged: at least one seed shows the corruption *)
  let bad = ref false in
  for seed = 1 to 12 do
    if run ~sabotage:true seed < 1. -. 1e-9 then bad := true
  done;
  Alcotest.(check bool) "sabotaged mbu detected" true !bad

(* ------------------------------------------------------------------ *)
(* The same two sabotages, expressed as injected fault plans against the
   HEALTHY circuits: the robustness engine must classify each as Detected.
   Where the hand-built sabotages above prove the harness catches a broken
   implementation, these prove the fault-injection engine reproduces the
   break without touching the circuit. *)

open Mbu_robustness

let outcome : Engine.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Engine.outcome_name o))
    ( = )

(* Skipping an AND-erasure CZ correction of a healthy Gidney adder is
   exactly [broken_and_uncompute]: invisible on basis states, a phase error
   on superpositions. A fidelity detector against the exact superposed sum
   catches it; forcing every erasure outcome to 1 makes each correction
   load-bearing, so the skip deterministically matters. *)
let test_injected_skip_cz_detected () =
  let n = 3 in
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" (n + 1) in
  Array.iter (fun q -> Builder.h b q) (Register.qubits x);
  Adder_gidney.add b ~x ~y;
  let circuit = Builder.to_circuit b in
  let init = Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (y, 3) ] in
  let amp : Complex.t = { re = 1.0 /. sqrt 8.0; im = 0.0 } in
  let expected num_qubits =
    State.of_alist ~num_qubits
      (List.init 8 (fun v ->
           let idx = ref 0 in
           for k = 0 to n - 1 do
             if (v lsr k) land 1 = 1 then
               idx := !idx lor (1 lsl Register.get x k)
           done;
           let s = v + 3 in
           for k = 0 to n do
             if (s lsr k) land 1 = 1 then
               idx := !idx lor (1 lsl Register.get y k)
           done;
           (!idx, amp)))
  in
  let detector (r : Sim.run) =
    State.fidelity r.Sim.state (expected (State.num_qubits r.Sim.state))
    < 1. -. 1e-9
  in
  let spec =
    Engine.
      { name = "gidney-superposed"; circuit; init; keep = [ x; y ];
        expect = []; detectors = [ ("fidelity", detector) ] }
  in
  let branches =
    List.filter_map
      (function Fault.Branch_site { pos; _ } -> Some pos | _ -> None)
      (Fault.sites circuit.Circuit.instrs)
  in
  Alcotest.(check int) "one erasure branch per carry ancilla" (n - 1)
    (List.length branches);
  let classify faults =
    Engine.classify
      ~force:(Engine.force_all true)
      ~rng:(Random.State.make [| 41 |])
      ~faults spec
  in
  Alcotest.check outcome "healthy adder passes the fidelity detector"
    Engine.Correct (classify []);
  List.iter
    (fun pos ->
      Alcotest.check outcome
        (Printf.sprintf "skipped CZ correction at position %d detected" pos)
        Engine.Detected
        (classify [ Fault.Skip_block { pos } ]))
    branches

(* Skipping the MBU lemma's correction block (H; U_g; H; X) of a healthy
   modular adder leaves the comparator ancilla in |1>: the dirty-ancilla
   check catches it on basis inputs already. *)
let test_injected_skip_mbu_correction_detected () =
  let spec = (Option.get (Catalogue.find "cdkpm")).Catalogue.make ~n:3 ~p:7 in
  let branches =
    List.filter_map
      (function
        | Fault.Branch_site { pos; bit; value } -> Some (pos, bit, value)
        | _ -> None)
      (Fault.sites spec.Engine.circuit.Circuit.instrs)
  in
  Alcotest.(check bool) "modadd has an MBU correction" true (branches <> []);
  List.iter
    (fun (pos, bit, value) ->
      (* pin the guard so the correction would fire, then refuse to run it *)
      let force b = if b = bit then Some value else None in
      let o =
        Engine.classify ~force
          ~rng:(Random.State.make [| 43 |])
          ~faults:[ Fault.Skip_block { pos } ]
          spec
      in
      Alcotest.check outcome
        (Printf.sprintf "skipped MBU correction at position %d detected" pos)
        Engine.Detected o)
    branches

let suite =
  ( "failure-injection",
    [ Alcotest.test_case "missing CZ in AND erasure is caught" `Quick
        test_sabotaged_adder_caught;
      Alcotest.test_case "missing U_g in MBU lemma is caught" `Quick
        test_sabotaged_mbu_lemma_caught;
      Alcotest.test_case "injected CZ skip is detected" `Quick
        test_injected_skip_cz_detected;
      Alcotest.test_case "injected MBU-correction skip is detected" `Quick
        test_injected_skip_mbu_correction_detected ] )
