lib/core/adder_big.ml: Adder Bitstring Builder Mbu_bitstring Mbu_circuit Printf Register
