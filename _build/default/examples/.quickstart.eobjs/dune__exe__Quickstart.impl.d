examples/quickstart.ml: Adder_cdkpm Array Builder Circuit Counts Draw Format List Mbu Mbu_circuit Mbu_core Mbu_simulator Mod_add Printf Register Resources Sim State
