lib/core/adder_cla.ml: Array Builder Hashtbl List Logical_and Mbu_circuit Register
