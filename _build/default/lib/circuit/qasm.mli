(** OpenQASM 3 interchange.

    [to_string] serializes any circuit — including mid-circuit measurement
    and classically controlled blocks, which OpenQASM 3 supports natively —
    so circuits built here can be loaded into mainstream toolchains.
    [of_string] parses back the exact subset this module emits (it is not a
    general OpenQASM front end); emission followed by parsing is the
    identity up to formatting, which the test suite verifies semantically on
    random adaptive circuits.

    Gate mapping: X/Z/H as themselves, [Phase] as [p(angle)], CNOT as [cx],
    CZ as [cz], SWAP as [swap], Toffoli as [ccx], [Cphase] as [cp(angle)].
    All angles are exact dyadic multiples of pi, printed as [pi*num/den].
    A measure-and-reset is emitted as a measurement followed by [reset]. *)

val to_string : Circuit.t -> string

val of_string : string -> Circuit.t
(** Raises [Failure] with a line-numbered message on input outside the
    emitted subset. *)
