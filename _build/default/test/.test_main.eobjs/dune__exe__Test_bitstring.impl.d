test/test_bitstring.ml: Alcotest Bitstring List Mbu_bitstring Printf QCheck QCheck_alcotest
