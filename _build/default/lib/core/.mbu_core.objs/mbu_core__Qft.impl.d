lib/core/qft.ml: Builder Counts Mbu_circuit Phase Register
