(** The Vedral–Barenco–Ekert plain adder (proposition 2.2, figures 4 and 5).

    Conventions shared by all ripple-carry adders in this library:
    - [x] is an [n]-qubit register, unchanged by the circuit;
    - [y] is an [(n+1)]-qubit register whose most significant qubit starts in
      |0>; afterwards [y] holds the [(n+1)]-bit sum [x + y] (definition 2.1).

    Resources: [n] carry ancillas and [4n - 2] Toffoli gates (the paper
    quotes the leading term 4n). *)

open Mbu_circuit

val carry :
  Builder.t ->
  c_in:Gate.qubit -> x:Gate.qubit -> y:Gate.qubit -> c_out:Gate.qubit -> unit
(** The CARRY gate of figure 4:
    [|c, x, y, c'> -> |c, x, y XOR x, c' XOR maj (x, y, c)>]. *)

val carry_adjoint :
  Builder.t ->
  c_in:Gate.qubit -> x:Gate.qubit -> y:Gate.qubit -> c_out:Gate.qubit -> unit

val sum : Builder.t -> c_in:Gate.qubit -> x:Gate.qubit -> y:Gate.qubit -> unit
(** The SUM gate of figure 4: [|c, x, y> -> |c, x, y XOR x XOR c>]. *)

val add : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Proposition 2.2. Requires [length y = length x + 1]. *)

val carry_chain :
  Builder.t -> x:Register.t -> y:Register.t -> carries:Register.t -> unit
(** Computes the full carry string of [x + y] into the [(n+1)]-qubit
    [carries] register (which must start at |0>) and leaves [y_i] holding
    [y_i XOR x_i]. This "half adder" is the building block of the VBE-style
    comparator: its top qubit is [maj]-carry [c_n]. Uncompute with
    [Builder.emit_adjoint]. *)

val compare : Builder.t -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** VBE-style comparator: [target XOR= 1\[x > y\]] using a complemented carry
    chain and its adjoint ([4n] Toffoli, [n+1] ancillas). Registers of equal
    length [n]; both restored. *)

val add_mod : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Equal-length addition modulo [2^m] (no overflow qubit):
    [y <- (x + y) mod 2^m]. Used by the Takahashi constant modular adder. *)
