type severity = Error | Warning

type finding = {
  check : string;
  severity : severity;
  message : string;
  qubit : int option;
  bit : int option;
}

type report = {
  num_qubits : int;
  num_bits : int;
  input_qubits : int;
  findings : finding list;
}

(* Abstract value of a wire / classical bit on the classical track. *)
type av = Zero | One | Top

let join a b = if a = b then a else Top
let neg = function Zero -> One | One -> Zero | Top -> Top
let of_bool b = if b then One else Zero

type st = {
  wires : av array;
  bits : av option array;  (* None = never written *)
  (* [Some b] when the wire was measured into bit [b] without reset and no
     conditional on [b] has run yet. *)
  collapsed : int option array;
}

let snapshot st =
  { wires = Array.copy st.wires;
    bits = Array.copy st.bits;
    collapsed = Array.copy st.collapsed }

(* Pointwise join of two control-flow arms, written into [st]. *)
let join_into st other =
  for i = 0 to Array.length st.wires - 1 do
    st.wires.(i) <- join st.wires.(i) other.wires.(i)
  done;
  for i = 0 to Array.length st.bits - 1 do
    st.bits.(i) <-
      (match (st.bits.(i), other.bits.(i)) with
      | None, o -> o
      | s, None -> s
      | Some a, Some b -> Some (join a b))
  done;
  (* A wire collapsed in either arm stays marked (conservative). *)
  for i = 0 to Array.length st.collapsed - 1 do
    if st.collapsed.(i) = None then st.collapsed.(i) <- other.collapsed.(i)
  done

let check_instrs ?input_qubits ~num_qubits ~num_bits instrs =
  let input_qubits =
    match input_qubits with Some k -> k | None -> num_qubits
  in
  let st =
    { wires = Array.init num_qubits (fun q -> if q < input_qubits then Top else Zero);
      bits = Array.make (max num_bits 1) None;
      collapsed = Array.make (max num_qubits 1) None }
  in
  let findings = ref [] in
  let seen = Hashtbl.create 32 in
  let emit ?qubit ?bit check severity message =
    let key = (check, qubit, bit) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      findings := { check; severity; message; qubit; bit } :: !findings
    end
  in
  let wire_ok q =
    if q < 0 || q >= num_qubits then begin
      emit ~qubit:q "wire-escape" Error
        (Printf.sprintf "wire %d outside the declared width %d" q num_qubits);
      false
    end
    else true
  in
  let bit_ok c =
    if c < 0 || c >= num_bits then begin
      emit ~bit:c "bit-escape" Error
        (Printf.sprintf "classical bit %d outside the declared width %d" c
           num_bits);
      false
    end
    else true
  in
  let get q = st.wires.(q) in
  let set q v = st.wires.(q) <- v in
  (* [ctx] is the set of classical bits whose conditional blocks we are
     inside: touching a wire collapsed into one of them is the correction
     itself, not a reuse. *)
  let use ctx q =
    if wire_ok q then
      match st.collapsed.(q) with
      | Some b when not (List.mem b ctx) ->
          emit ~qubit:q ~bit:b "use-after-measure" Warning
            (Printf.sprintf
               "wire %d is used after being measured into bit %d with no \
                conditional on that bit in scope"
               q b)
      | _ -> ()
  in
  let apply_gate ctx g =
    List.iter (use ctx) (Gate.qubits g);
    if List.for_all (fun q -> q >= 0 && q < num_qubits) (Gate.qubits g) then
      match g with
      | Gate.X q -> set q (neg (get q))
      | Gate.Z _ | Gate.Phase _ | Gate.Cz _ | Gate.Cphase _ -> ()
      | Gate.H q -> set q Top
      | Gate.Cnot { control; target } -> (
          match get control with
          | Zero -> ()
          | One -> set target (neg (get target))
          | Top -> set target Top)
      | Gate.Swap (a, b) ->
          let va = get a in
          set a (get b);
          set b va
      | Gate.Toffoli { c1; c2; target } -> (
          match (get c1, get c2) with
          | Zero, _ | _, Zero -> ()
          | One, One -> set target (neg (get target))
          | _ -> set target Top)
  in
  let rec walk ctx l = List.iter (walk_instr ctx) l
  and walk_instr ctx = function
    | Instr.Gate g -> apply_gate ctx g
    | Instr.Measure { qubit; bit; reset } ->
        if wire_ok qubit && bit_ok bit then begin
          use ctx qubit;
          (match st.bits.(bit) with
          | Some _ ->
              emit ~bit "bit-overwrite" Warning
                (Printf.sprintf "classical bit %d is written twice" bit)
          | None -> ());
          st.bits.(bit) <- Some (get qubit);
          if reset then begin
            set qubit Zero;
            st.collapsed.(qubit) <- None
          end
          else
            (* Only a genuinely indefinite wire collapses; measuring a
               known value is deterministic and leaves nothing dangling. *)
            st.collapsed.(qubit) <- (if get qubit = Top then Some bit else None)
        end
    | Instr.If_bit { bit; value; body } ->
        if bit_ok bit then begin
          (match st.bits.(bit) with
          | None ->
              emit ~bit "unwritten-bit" Error
                (Printf.sprintf
                   "conditional on classical bit %d, which no measurement \
                    writes"
                   bit);
              (* Analyse the body anyway (joined), for its own findings. *)
              let before = snapshot st in
              walk (bit :: ctx) body;
              join_into st before
          | Some bv -> (
              match (bv, value) with
              | One, false | Zero, true -> () (* provably dead branch *)
              | One, true | Zero, false -> walk (bit :: ctx) body
              | Top, _ ->
                  let before = snapshot st in
                  st.bits.(bit) <- Some (of_bool value);
                  walk (bit :: ctx) body;
                  st.bits.(bit) <- Some Top;
                  join_into st before));
          (* The conditional consumed the outcome: wires collapsed into
             this bit are considered handled from here on. *)
          Array.iteri
            (fun q c -> if c = Some bit then st.collapsed.(q) <- None)
            st.collapsed
        end
    | Instr.Span { body; _ } -> walk ctx body
    | Instr.Call n -> walk ctx n.Instr.body
  in
  walk [] instrs;
  for q = input_qubits to num_qubits - 1 do
    if st.wires.(q) = One then
      emit ~qubit:q "ancilla-leak" Error
        (Printf.sprintf "ancilla wire %d provably ends in |1>" q)
  done;
  { num_qubits; num_bits; input_qubits; findings = List.rev !findings }

let check ?input_qubits (c : Circuit.t) =
  check_instrs ?input_qubits ~num_qubits:c.Circuit.num_qubits
    ~num_bits:c.Circuit.num_bits c.Circuit.instrs

let errors r = List.filter (fun f -> f.severity = Error) r.findings
let is_clean r = errors r = []

let to_string r =
  let b = Buffer.create 128 in
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "%s: %s: %s\n"
           (match f.severity with Error -> "error" | Warning -> "warning")
           f.check f.message))
    r.findings;
  let errs = List.length (errors r) in
  let warns = List.length r.findings - errs in
  Buffer.add_string b
    (Printf.sprintf "%d error%s, %d warning%s (%d qubits, %d inputs, %d bits)\n"
       errs (if errs = 1 then "" else "s")
       warns (if warns = 1 then "" else "s")
       r.num_qubits r.input_qubits r.num_bits);
  Buffer.contents b
