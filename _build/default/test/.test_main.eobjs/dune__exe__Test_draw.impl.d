test/test_draw.ml: Adder_cdkpm Alcotest Array Builder Draw List Mbu_circuit Mbu_core String
