(** Adaptive circuit instructions.

    On top of unitary gates, the paper's circuits need two non-unitary
    primitives: single-qubit computational-basis measurement, and blocks of
    gates executed conditionally on a classical measurement outcome. These
    appear in Gidney's measurement-based uncomputation of the temporary
    logical-AND (figure 11) and in the MBU lemma itself (figure 24). *)

type t =
  | Gate of Gate.t
  | Measure of { qubit : Gate.qubit; bit : int; reset : bool }
      (** Measure [qubit] in the computational basis, store the outcome in
          classical [bit]. If [reset], the qubit is returned to |0> after the
          measurement (an outcome-conditioned X that we do not count as a
          gate, matching the usual measure-and-reset primitive). *)
  | If_bit of { bit : int; value : bool; body : t list }
      (** Execute [body] iff classical [bit] equals [value]. *)
  | Span of { label : string; peak_ancillas : int; body : t list }
      (** A named, semantically transparent grouping of [body] — the unit of
          attribution for {!Trace} profiles. [label] names the subroutine
          that emitted the block (e.g. ["modadd.comp_p"]); [peak_ancillas]
          records the builder's live-ancilla high-water mark while the span
          was open. Spans nest, forming the hierarchical call tree of the
          circuit's construction. Every consumer (counting, depth,
          optimization, serialization, simulation) treats a span exactly as
          its body. *)

val adjoint : t list -> t list
(** Adjoint of a measurement-free instruction sequence. Spans are preserved
    (same label, adjointed body). Raises [Invalid_argument] if the sequence
    contains [Measure] or [If_bit] (remark 2.23: circuits involving a
    measurement are generally not invertible). *)

val iter_gates : (Gate.t -> unit) -> t list -> unit
(** Visit every gate, including those inside conditional bodies. *)

val max_qubit : t list -> int
(** Largest wire index touched, or [-1] for the empty program. *)

val max_bit : t list -> int
(** Largest classical bit index used, or [-1]. *)

val count_instrs : t list -> int
(** Total number of instructions, conditionals and spans counted with their
    bodies. *)

val count_spans : t list -> int
(** Number of [Span] nodes anywhere in the program. *)

val strip_spans : t list -> t list
(** Erase the span structure, splicing every span body in place. The result
    is gate-for-gate the same program without attribution markers. *)

val pp : Format.formatter -> t -> unit
