(** Restoring division by a classical constant.

    [|x>|0> -> |x mod d>|floor(x / d)>] by schoolbook trial subtraction:
    for each quotient bit [q_i] (most significant first), compare the
    running remainder with [d . 2^i] and conditionally subtract it. The
    comparison outcomes are not garbage — they {e are} the quotient — so
    unlike the modular adders nothing needs uncomputing; this is the
    counterpoint circuit showing where MBU has nothing to do. Built entirely
    from the section-2 comparator and subtractor primitives. *)

open Mbu_circuit

val divmod_const :
  Adder.style ->
  Builder.t -> d:int -> x:Register.t -> quotient:Register.t -> unit
(** [x] (the dividend, [n] qubits) ends holding [x mod d]; [quotient]
    ([k] qubits, initially |0>) receives [floor (x / d)]. Requires [d >= 1]
    and [d . 2^(k-1) < 2^n] so every trial subtrahend fits the dividend
    register. *)
