lib/circuit/phase.ml: Float Format Stdlib
