(* Increment gates and theorem 2.22's 2's-complement subtractor. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let run_on m build v =
  let b = Builder.create () in
  let y = Builder.fresh_register b "y" m in
  build b y;
  let r = Sim.run_builder ~rng b ~inits:[ (y, v) ] in
  Alcotest.(check bool) "ancillas clean" true
    (Sim.wires_zero r.Sim.state ~except:[ y ]);
  value r.Sim.state y

let test_increment_exhaustive () =
  List.iter
    (fun m ->
      for v = 0 to (1 lsl m) - 1 do
        for _ = 1 to 2 do
          Alcotest.(check int)
            (Printf.sprintf "inc m=%d v=%d" m v)
            ((v + 1) mod (1 lsl m))
            (run_on m (fun b y -> Increment.apply b y) v)
        done
      done)
    [ 1; 2; 3; 4; 5 ]

let test_decrement_exhaustive () =
  let m = 4 in
  for v = 0 to (1 lsl m) - 1 do
    Alcotest.(check int)
      (Printf.sprintf "dec v=%d" v)
      ((v - 1 + (1 lsl m)) mod (1 lsl m))
      (run_on m (fun b y -> Increment.apply_decrement b y) v)
  done

let test_controlled_increment () =
  let m = 4 in
  for ctrl_val = 0 to 1 do
    for v = 0 to (1 lsl m) - 1 do
      let b = Builder.create () in
      let c = Builder.fresh_register b "c" 1 in
      let y = Builder.fresh_register b "y" m in
      Increment.apply_controlled b ~ctrl:(Register.get c 0) y;
      let r = Sim.run_builder ~rng b ~inits:[ (c, ctrl_val); (y, v) ] in
      Alcotest.(check int)
        (Printf.sprintf "cinc c=%d v=%d" ctrl_val v)
        ((v + ctrl_val) mod (1 lsl m))
        (value r.Sim.state y);
      Alcotest.(check bool) "clean" true
        (Sim.wires_zero r.Sim.state ~except:[ c; y ])
    done
  done;
  for ctrl_val = 0 to 1 do
    let v = 0 in
    let b = Builder.create () in
    let c = Builder.fresh_register b "c" 1 in
    let y = Builder.fresh_register b "y" m in
    Increment.apply_decrement_controlled b ~ctrl:(Register.get c 0) y;
    let r = Sim.run_builder ~rng b ~inits:[ (c, ctrl_val); (y, v) ] in
    Alcotest.(check int)
      (Printf.sprintf "cdec c=%d" ctrl_val)
      ((v - ctrl_val + (1 lsl m)) mod (1 lsl m))
      (value r.Sim.state y)
  done

let test_increment_superposition () =
  (* phase correctness of the MBU ladder: uniform superposition must map to
     uniform superposition of incremented values with flat phases *)
  let m = 3 in
  let b = Builder.create () in
  let y = Builder.fresh_register b "y" m in
  Array.iter (fun q -> Builder.h b q) (Register.qubits y);
  Increment.apply b y;
  let r = Sim.run_builder ~rng b ~inits:[] in
  let amp : Complex.t = { re = 1.0 /. sqrt 8.0; im = 0.0 } in
  let expected =
    State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
      (List.init 8 (fun v ->
           let idx = ref 0 in
           for k = 0 to m - 1 do
             if (v lsr k) land 1 = 1 then idx := !idx lor (1 lsl Register.get y k)
           done;
           (!idx, amp)))
  in
  (* increment permutes the uniform superposition onto itself *)
  Alcotest.(check bool) "flat phases" true
    (State.fidelity r.Sim.state expected > 1. -. 1e-9)

let test_increment_toffoli_count () =
  let m = 20 in
  let b = Builder.create () in
  let y = Builder.fresh_register b "y" m in
  Increment.apply b y;
  let c = Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b) in
  Alcotest.(check (float 0.)) "m-2 toffoli" (float_of_int (m - 2)) c.Counts.toffoli;
  (* against the generic constant adder: 2m *)
  let b2 = Builder.create () in
  let y2 = Builder.fresh_register b2 "y" (m + 1) in
  Adder.add_const Adder.Cdkpm b2 ~a:1 ~y:y2;
  let c2 = Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b2) in
  Alcotest.(check bool) "cheaper than generic add_const 1" true
    (c.Counts.toffoli < c2.Counts.toffoli /. 2.)

let test_sub_via_twos_complement () =
  let n = 3 in
  List.iter
    (fun style ->
      for x_val = 0 to (1 lsl n) - 1 do
        for y_val = 0 to (1 lsl n) - 1 do
          let b = Builder.create () in
          let x = Builder.fresh_register b "x" n in
          let y = Builder.fresh_register b "y" (n + 1) in
          Adder.sub_via_twos_complement style b ~x ~y;
          let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
          let msg = Printf.sprintf "%s x=%d y=%d" (Adder.style_name style) x_val y_val in
          Alcotest.(check int) msg
            ((y_val - x_val) land ((1 lsl (n + 1)) - 1))
            (value r.Sim.state y);
          Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x);
          Alcotest.(check bool) (msg ^ " clean") true
            (Sim.wires_zero r.Sim.state ~except:[ x; y ])
        done
      done)
    Adder.all_styles

let suite =
  ( "increment",
    [ Alcotest.test_case "increment exhaustive" `Quick test_increment_exhaustive;
      Alcotest.test_case "decrement exhaustive" `Quick test_decrement_exhaustive;
      Alcotest.test_case "controlled increment/decrement" `Quick
        test_controlled_increment;
      Alcotest.test_case "superposition phases" `Quick test_increment_superposition;
      Alcotest.test_case "toffoli count m-2" `Quick test_increment_toffoli_count;
      Alcotest.test_case "sub via 2's complement (thm 2.22 circ 9)" `Quick
        test_sub_via_twos_complement ] )
