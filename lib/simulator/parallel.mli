(** Task fan-out for the multi-shot runner.

    The implementation is selected at build time: on OCaml >= 5.0 tasks are
    spread across [Domain]s; on 4.14 the same API runs everything
    sequentially on the calling thread. Callers must make [f] results
    independent of execution order (the shot runner does this by deriving
    each shot's RNG from the shot index), so output is identical whichever
    implementation — and whatever [jobs] — is used. *)

val backend : string
(** ["domains"] or ["sequential"], for display and benchmark metadata. *)

val is_parallel : bool
(** Whether [map_tasks] can actually run tasks concurrently. *)

val default_jobs : unit -> int
(** Recommended fan-out: the domain count the runtime suggests on OCaml 5,
    1 on the sequential fallback. *)

val map_tasks : jobs:int -> tasks:int -> (int -> 'a) -> 'a array
(** [map_tasks ~jobs ~tasks f] computes [f i] for every [i] in
    [0 .. tasks-1] using at most [jobs] workers and returns the results in
    index order. [f] must be safe to call from another domain (no shared
    mutable state). Exceptions raised by any task are re-raised after all
    workers finish. *)
