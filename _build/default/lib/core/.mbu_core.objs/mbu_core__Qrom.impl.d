lib/core/qrom.ml: Array Builder Logical_and Mbu_circuit Printf Register
