lib/circuit/circuit.mli: Counts Format Instr
