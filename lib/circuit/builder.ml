open Mbu_telemetry

(* Live-ancilla gauge across all builders in the process: the current
   value tracks whichever builder allocated or freed last, the high-water
   mark is the process-wide pool peak — the number capacity planning
   cares about. *)
let m_ancilla_live =
  Telemetry.gauge ~help:"Live builder ancillas" "mbu_builder_ancilla_live"

type t = {
  mutable next_qubit : int;
  mutable next_bit : int;
  mutable input_qubits : int;
  mutable free_pool : Gate.qubit list;
  free_set : (Gate.qubit, unit) Hashtbl.t;  (* membership mirror of free_pool *)
  mutable live_ancillas : int;
  mutable peak_live : int;  (* high-water of live_ancillas since the innermost
                               open span began (see [with_span]) *)
  mutable stack : Instr.t list list;  (* accumulators, innermost first, reversed *)
}

let create () =
  { next_qubit = 0; next_bit = 0; input_qubits = 0; free_pool = [];
    free_set = Hashtbl.create 64; live_ancillas = 0; peak_live = 0;
    stack = [ [] ] }

let fresh_qubit b =
  if b.live_ancillas > 0 || b.free_pool <> [] then
    Mbu_error.invalid ~subsystem:"Builder.fresh_qubit" ~qubit:b.next_qubit
      "allocate inputs before ancillas";
  let q = b.next_qubit in
  b.next_qubit <- q + 1;
  b.input_qubits <- b.input_qubits + 1;
  q

let fresh_register b name n =
  Register.make ~name (Array.init n (fun _ -> fresh_qubit b))

let fresh_bit b =
  let c = b.next_bit in
  b.next_bit <- c + 1;
  c

let alloc_ancilla b =
  b.live_ancillas <- b.live_ancillas + 1;
  if b.live_ancillas > b.peak_live then b.peak_live <- b.live_ancillas;
  Telemetry.set_gauge m_ancilla_live b.live_ancillas;
  match b.free_pool with
  | q :: rest ->
      b.free_pool <- rest;
      Hashtbl.remove b.free_set q;
      q
  | [] ->
      let q = b.next_qubit in
      b.next_qubit <- q + 1;
      q

let free_ancilla b q =
  if Hashtbl.mem b.free_set q then
    Mbu_error.invalid ~subsystem:"Builder.free_ancilla" ~qubit:q "double free";
  b.live_ancillas <- b.live_ancillas - 1;
  Telemetry.set_gauge m_ancilla_live b.live_ancillas;
  b.free_pool <- q :: b.free_pool;
  Hashtbl.replace b.free_set q ()

let alloc_ancilla_register b name n =
  Register.make ~name (Array.init n (fun _ -> alloc_ancilla b))

let free_ancilla_register b r =
  (* Free MSB-first so LSB wires come back out of the pool first. *)
  let qs = Register.qubits r in
  for i = Array.length qs - 1 downto 0 do
    free_ancilla b qs.(i)
  done

let with_ancilla b f =
  let q = alloc_ancilla b in
  let r = f q in
  free_ancilla b q;
  r

let with_ancilla_register b name n f =
  let reg = alloc_ancilla_register b name n in
  let r = f reg in
  free_ancilla_register b reg;
  r

let num_qubits b = b.next_qubit
let input_qubits b = b.input_qubits
let ancilla_qubits b = b.next_qubit - b.input_qubits

let push b i =
  match b.stack with
  | top :: rest -> b.stack <- (i :: top) :: rest
  | [] -> assert false

let gate b g =
  Gate.validate g;
  push b (Instr.Gate g)

let x b q = gate b (Gate.X q)
let z b q = gate b (Gate.Z q)
let h b q = gate b (Gate.H q)
let phase b q p = gate b (Gate.Phase (q, p))
let cnot b ~control ~target = gate b (Gate.Cnot { control; target })
let cz b a c = gate b (Gate.Cz (a, c))
let swap b a c = gate b (Gate.Swap (a, c))
let toffoli b ~c1 ~c2 ~target = gate b (Gate.Toffoli { c1; c2; target })
let cphase b ~control ~target p = gate b (Gate.Cphase { control; target; phase = p })

let measure ?(reset = false) b q =
  let bit = fresh_bit b in
  push b (Instr.Measure { qubit = q; bit; reset });
  bit

let enter b = b.stack <- [] :: b.stack

let leave b =
  match b.stack with
  | top :: rest ->
      b.stack <- rest;
      List.rev top
  | [] -> assert false

let if_bit ?(value = true) b bit f =
  enter b;
  let body =
    match f () with
    | () -> leave b
    | exception e ->
        ignore (leave b);
        raise e
  in
  push b (Instr.If_bit { bit; value; body })

let with_span b label f =
  enter b;
  (* [peak_live] tracks the high-water mark of the innermost open span; a
     child's peak folds back into the parent's running maximum on exit, so a
     parent span always covers its children's ancilla usage. *)
  let outer_peak = b.peak_live in
  b.peak_live <- b.live_ancillas;
  match f () with
  | v ->
      let body = leave b in
      let peak_ancillas = b.peak_live in
      b.peak_live <- max outer_peak peak_ancillas;
      push b (Instr.Span { label; peak_ancillas; body });
      v
  | exception e ->
      ignore (leave b);
      b.peak_live <- max outer_peak b.peak_live;
      raise e

let capture b f =
  enter b;
  match f () with
  | v -> (v, leave b)
  | exception e ->
      ignore (leave b);
      raise e

let emit b instrs =
  (* Splice in one rev-append instead of pushing instr-by-instr. *)
  match b.stack with
  | top :: rest -> b.stack <- List.rev_append instrs top :: rest
  | [] -> assert false

let emit_adjoint b f =
  let (), instrs = capture b f in
  emit b (Instr.adjoint instrs)

(* Intern the instructions emitted by [f] as one anonymous hash-consed
   block. No span is wrapped around the body, so every metric, trace, and
   QASM emission is unchanged — only the in-memory representation dedups
   (and metric walks memoize the block). Ancilla accounting is untouched:
   allocations inside [f] hit the builder's global counters exactly as if
   the instructions were emitted inline. *)
let shared b f =
  enter b;
  match f () with
  | v ->
      (match leave b with
      | [] -> ()
      | body -> push b (Instr.share body));
      v
  | exception e ->
      ignore (leave b);
      raise e

let with_shared b label f =
  enter b;
  let outer_peak = b.peak_live in
  b.peak_live <- b.live_ancillas;
  match f () with
  | v ->
      let body = leave b in
      let peak_ancillas = b.peak_live in
      b.peak_live <- max outer_peak peak_ancillas;
      push b (Instr.share [ Instr.Span { label; peak_ancillas; body } ]);
      v
  | exception e ->
      ignore (leave b);
      b.peak_live <- max outer_peak b.peak_live;
      raise e

let repeat ?label b ~times f =
  if times < 1 then
    Mbu_error.invalid ~subsystem:"Builder.repeat" "times must be >= 1";
  enter b;
  let outer_peak = b.peak_live in
  b.peak_live <- b.live_ancillas;
  match f () with
  | v ->
      let body = leave b in
      let peak_ancillas = b.peak_live in
      b.peak_live <- max outer_peak peak_ancillas;
      let body =
        match label with
        | Some label -> [ Instr.Span { label; peak_ancillas; body } ]
        | None -> body
      in
      (* A reference replays the same classical bits, so a measuring body
         cannot be repeated by reference: each physical repetition would
         need fresh bits. *)
      if not (Instr.is_unitary body) then
        Mbu_error.invalid ~subsystem:"Builder.repeat"
          "body contains measurements";
      let r = Instr.share body in
      for _ = 1 to times do
        push b r
      done;
      v
  | exception e ->
      ignore (leave b);
      b.peak_live <- max outer_peak b.peak_live;
      raise e

let to_circuit b =
  match b.stack with
  | [ top ] ->
      (* Every gate was validated by [gate] on emission, so construction
         takes the trusted path. *)
      Circuit.make ~validate:false ~num_qubits:b.next_qubit
        ~num_bits:b.next_bit (List.rev top)
  | _ ->
      Mbu_error.invalid ~subsystem:"Builder.to_circuit"
        "unbalanced capture/if block"
