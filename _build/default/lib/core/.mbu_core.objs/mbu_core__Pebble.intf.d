lib/core/pebble.mli: Builder Gate Mbu_circuit Register
