(** Sparse state vectors.

    A state over [num_qubits] wires (at most 62) is a finite map from basis
    indices to complex amplitudes; basis index bit [i] is the value of wire
    [i]. Sparsity is what makes simulating the ripple-carry circuits cheap:
    a computational-basis input stays a single basis state under X / CNOT /
    Toffoli, and the measurement-based blocks only ever put one ancilla at a
    time into superposition. Dense states (QFT circuits) are still exact,
    just limited to small wire counts. *)

open Mbu_circuit

type t

val num_qubits : t -> int

val basis : num_qubits:int -> int -> t
(** [basis ~num_qubits idx]: the computational basis state |idx>. *)

val of_alist : num_qubits:int -> (int * Complex.t) list -> t
(** Not normalized automatically; raises [Invalid_argument] on repeated
    indices or indices out of range. *)

val to_alist : t -> (int * Complex.t) list
(** Entries with non-negligible amplitude, sorted by basis index. *)

val num_terms : t -> int
val norm : t -> float
val normalize : t -> t

val apply_gate : t -> Gate.t -> t

val prob_bit_one : t -> int -> float
(** Probability that measuring the given wire yields 1. *)

val project : t -> qubit:int -> value:bool -> t
(** Project onto the subspace where [qubit] = [value] and renormalize.
    Raises [Invalid_argument] if the outcome has zero probability. *)

val set_bit_zero : t -> qubit:int -> t
(** Relabel: clear the given wire in every basis index (used by
    measure-and-reset after projecting onto 1). The wire must be in a
    definite value across the support. *)

val fidelity : t -> t -> float
(** |<a|b>| — 1 for states equal up to global phase. *)

val classical_value : t -> int option
(** [Some idx] when the state is a single basis vector (up to global phase),
    [None] otherwise. *)

val bit_value : t -> int -> bool option
(** The definite value of a wire across the whole support, if any. *)

val pp : Format.formatter -> t -> unit
