lib/circuit/depth.mli: Circuit Instr
