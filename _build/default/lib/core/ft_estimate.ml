type params = {
  physical_error_rate : float;
  threshold : float;
  prefactor : float;
  cycle_time_ns : float;
  target_failure : float;
  factories : int;
  factory_footprint : int;
}

let default_params =
  { physical_error_rate = 1e-3; threshold = 1e-2; prefactor = 0.1;
    cycle_time_ns = 1000.; target_failure = 1e-2; factories = 4;
    factory_footprint = 12 }

type workload = { toffoli : float; toffoli_depth : float; logical_qubits : int }

let workload_of_resources (r : Resources.t) =
  { toffoli = r.Resources.toffoli;
    toffoli_depth = r.Resources.toffoli_depth;
    logical_qubits = r.Resources.qubits }

type estimate = {
  code_distance : int;
  logical_error_per_round : float;
  physical_qubits : int;
  runtime_seconds : float;
  toffoli_rate_hz : float;
}

let logical_error p d =
  p.prefactor *. ((p.physical_error_rate /. p.threshold) ** (float_of_int (d + 1) /. 2.))

(* Cycles of the whole computation at distance d: each Toffoli occupies a
   factory for d cycles; with k factories the Toffoli stream drains at k per
   d cycles, and the depth is a lower bound. *)
let cycles p w d =
  let fd = float_of_int d in
  Float.max
    (w.toffoli /. float_of_int p.factories)
    w.toffoli_depth
  *. fd

let estimate ?(params = default_params) w =
  if w.toffoli <= 0. || w.logical_qubits <= 0 then
    invalid_arg "Ft_estimate.estimate: empty workload";
  (* routing overhead: one ancilla lane per data tile, the usual 2x *)
  let logical_tiles = 2 * w.logical_qubits in
  let budget_ok d =
    let rounds = cycles params w d *. float_of_int logical_tiles in
    rounds *. logical_error params d <= params.target_failure
  in
  let rec find d = if d > 99 then None else if budget_ok d then Some d else find (d + 2) in
  match find 3 with
  | None -> invalid_arg "Ft_estimate.estimate: no distance under 100 meets the budget"
  | Some d ->
      let tile = 2 * d * d in
      let physical_qubits =
        (logical_tiles * tile) + (params.factories * params.factory_footprint * tile)
      in
      let total_cycles = cycles params w d in
      let runtime_seconds = total_cycles *. params.cycle_time_ns *. 1e-9 in
      { code_distance = d;
        logical_error_per_round = logical_error params d;
        physical_qubits;
        runtime_seconds;
        toffoli_rate_hz = w.toffoli /. Float.max runtime_seconds 1e-12 }

let pp fmt e =
  Format.fprintf fmt
    "d=%d, %d physical qubits, %.3g s runtime (%.3g Tof/s, p_L=%.1e)"
    e.code_distance e.physical_qubits e.runtime_seconds e.toffoli_rate_hz
    e.logical_error_per_round
