test/test_resources.ml: Adder Alcotest Builder Float Formulas List Mbu Mbu_bitstring Mbu_circuit Mbu_core Mod_add Printf Register Resources
