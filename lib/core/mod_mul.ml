open Mbu_circuit

type engine = {
  name : string;
  c_modadd_const :
    Builder.t -> ctrl:Gate.qubit -> p:int -> a:int -> x:Register.t -> unit;
}

let ripple_engine ?(mbu = true) spec =
  { name =
      Printf.sprintf "%s%s" (Mod_add.spec_name spec) (if mbu then "+mbu" else "");
    c_modadd_const =
      (fun b ~ctrl ~p ~a ~x -> Mod_add.modadd_const_controlled ~mbu spec b ~ctrl ~p ~a ~x) }

let draper_engine ?(mbu = true) () =
  { name = Printf.sprintf "draper%s" (if mbu then "+mbu" else "");
    c_modadd_const =
      (fun b ~ctrl ~p ~a ~x ->
        Mod_add.modadd_const_controlled_draper ~mbu b ~ctrl ~p ~a ~x) }

let engine_name e = e.name

let modinv ~a ~p =
  let rec egcd a b = if b = 0 then (a, 1, 0)
    else
      let g, s, t = egcd b (a mod b) in
      (g, t, s - (a / b * t))
  in
  let g, s, _ = egcd (((a mod p) + p) mod p) p in
  if g <> 1 then invalid_arg "Mod_mul.modinv: not coprime";
  ((s mod p) + p) mod p

let check_mul name ~p ~x ~target =
  let n = Register.length x in
  if Register.length target <> n then invalid_arg (name ^ ": unequal lengths");
  if n <= 0 || n >= 62 || p <= 0 || p lsr n <> 0 then
    invalid_arg (name ^ ": modulus out of range")

(* target += ctrl.a.x mod p: one doubly controlled constant modular addition
   per bit of x, the double control held in a logical-AND ancilla that MBU
   erases for free half the time. *)
let cmult_gen engine b ~ctrl ~a ~p ~x ~target =
  check_mul "Mod_mul.cmult_add" ~p ~x ~target;
  Builder.with_span b (Printf.sprintf "cmult[%s]" engine.name) @@ fun () ->
  let n = Register.length x in
  Builder.with_ancilla b (fun g ->
      (* a.2^i mod p by repeated doubling — no overflow for p < 2^61. *)
      let ai = ref (((a mod p) + p) mod p) in
      for i = 0 to n - 1 do
        if !ai <> 0 then begin
          let xi = Register.get x i in
          Logical_and.compute b ~c1:ctrl ~c2:xi ~target:g;
          engine.c_modadd_const b ~ctrl:g ~p ~a:!ai ~x:target;
          Logical_and.uncompute b ~c1:ctrl ~c2:xi ~target:g
        end;
        ai := !ai * 2 mod p
      done)

let cmult_add engine b ~ctrl ~a ~p ~x ~target =
  cmult_gen engine b ~ctrl ~a:(((a mod p) + p) mod p) ~p ~x ~target

let cmult_sub engine b ~ctrl ~a ~p ~x ~target =
  cmult_gen engine b ~ctrl ~a:((p - (a mod p)) mod p) ~p ~x ~target

let controlled_swap b ~ctrl ~x ~t =
  (* Shared: modexp swaps the same register pair under a different control
     each round, but for a fixed (ctrl, x, t) wire triple — e.g. the two
     swaps inside one cmult_inplace round — the ladder is one node. *)
  Builder.with_shared b "cswap_reg" @@ fun () ->
  for i = 0 to Register.length x - 1 do
    let xi = Register.get x i and ti = Register.get t i in
    Builder.cnot b ~control:ti ~target:xi;
    Builder.toffoli b ~c1:ctrl ~c2:xi ~target:ti;
    Builder.cnot b ~control:ti ~target:xi
  done

let cmult_inplace engine b ~ctrl ~a ~p ~x =
  Builder.with_span b (Printf.sprintf "cmult_inplace[%s]" engine.name) @@ fun () ->
  let n = Register.length x in
  let a = ((a mod p) + p) mod p in
  let a_inv = modinv ~a ~p in
  Builder.with_ancilla_register b "mul" n (fun t ->
      cmult_add engine b ~ctrl ~a ~p ~x ~target:t;
      controlled_swap b ~ctrl ~x ~t;
      cmult_sub engine b ~ctrl ~a:a_inv ~p ~x ~target:t)

let modexp engine b ~a ~p ~e ~x =
  if p >= 1 lsl 31 then
    invalid_arg "Mod_mul.modexp: modulus too large for exact squaring";
  Builder.with_span b (Printf.sprintf "modexp[%s]" engine.name) @@ fun () ->
  let a = ((a mod p) + p) mod p in
  let ak = ref a in
  for j = 0 to Register.length e - 1 do
    cmult_inplace engine b ~ctrl:(Register.get e j) ~a:!ak ~p ~x;
    ak := !ak * !ak mod p
  done

let cmult_add_windowed ?(window = 2) ?(mbu = true) spec b ~ctrl ~a ~p ~x ~target =
  check_mul "Mod_mul.cmult_add_windowed" ~p ~x ~target;
  if window < 1 || window > 10 then
    invalid_arg "Mod_mul.cmult_add_windowed: window out of range";
  Builder.with_span b
    (Printf.sprintf "cmult_win%d[%s]%s" window (Mod_add.spec_name spec)
       (if mbu then "+mbu" else ""))
  @@ fun () ->
  let n = Register.length x in
  let a = ((a mod p) + p) mod p in
  (* a.2^i mod p by repeated doubling *)
  let shifted = Array.make (n + 1) a in
  for i = 1 to n do
    shifted.(i) <- shifted.(i - 1) * 2 mod p
  done;
  Builder.with_ancilla_register b "win" n (fun temp ->
      let i = ref 0 in
      while !i < n do
        let w = min window (n - !i) in
        (* address = ctrl : window bits (ctrl is the most significant) *)
        let addr =
          Register.extend (Register.sub x ~pos:!i ~len:w) ctrl
        in
        let data =
          Array.init (1 lsl (w + 1)) (fun idx ->
              if idx lsr w = 0 then 0
              else
                let u = idx land ((1 lsl w) - 1) in
                let rec acc j v =
                  if j >= w then v
                  else
                    acc (j + 1)
                      (if (u lsr j) land 1 = 1 then (v + shifted.(!i + j)) mod p
                       else v)
                in
                acc 0 0)
        in
        Qrom.lookup b ~address:addr ~target:temp ~data;
        Mod_add.modadd ~mbu spec b ~p ~x:temp ~y:target;
        Qrom.unlookup b ~address:addr ~target:temp ~data;
        i := !i + w
      done)

let mult_add engine b ~a ~p ~x ~target =
  check_mul "Mod_mul.mult_add" ~p ~x ~target;
  Builder.with_span b (Printf.sprintf "mult_add[%s]" engine.name) @@ fun () ->
  let n = Register.length x in
  let ai = ref (((a mod p) + p) mod p) in
  for i = 0 to n - 1 do
    if !ai <> 0 then
      engine.c_modadd_const b ~ctrl:(Register.get x i) ~p ~a:!ai ~x:target;
    ai := !ai * 2 mod p
  done

let mult_inplace engine b ~a ~p ~x =
  Builder.with_span b (Printf.sprintf "mult_inplace[%s]" engine.name) @@ fun () ->
  let n = Register.length x in
  let a = ((a mod p) + p) mod p in
  let a_inv = modinv ~a ~p in
  Builder.with_ancilla_register b "mul" n (fun t ->
      mult_add engine b ~a ~p ~x ~target:t;
      (* swap x and t, then clear t = x_old via the inverse multiplier *)
      for i = 0 to n - 1 do
        Builder.swap b (Register.get x i) (Register.get t i)
      done;
      mult_add engine b ~a:((p - (a_inv mod p)) mod p) ~p ~x ~target:t)

let mul_register engine b ~x ~y ~p ~target =
  check_mul "Mod_mul.mul_register" ~p ~x ~target;
  if Register.length y <> Register.length x then
    invalid_arg "Mod_mul.mul_register: unequal lengths";
  Builder.with_span b (Printf.sprintf "mul_register[%s]" engine.name) @@ fun () ->
  let n = Register.length x in
  Builder.with_ancilla b (fun g ->
      let wi = ref 1 in
      for i = 0 to n - 1 do
        let wj = ref !wi in
        for j = 0 to n - 1 do
          if !wj <> 0 then begin
            let xi = Register.get x i and yj = Register.get y j in
            Logical_and.compute b ~c1:xi ~c2:yj ~target:g;
            engine.c_modadd_const b ~ctrl:g ~p ~a:!wj ~x:target;
            Logical_and.uncompute b ~c1:xi ~c2:yj ~target:g
          end;
          wj := !wj * 2 mod p
        done;
        wi := !wi * 2 mod p
      done)

(* target += x^2 mod p: pairs (i, j) with i < j contribute 2^{i+j+1} under
   the AND of both bits; the diagonal contributes 2^{2i} under x_i alone. *)
let square_register engine b ~x ~p ~target =
  check_mul "Mod_mul.square_register" ~p ~x ~target;
  Builder.with_span b (Printf.sprintf "square[%s]" engine.name) @@ fun () ->
  let n = Register.length x in
  let pow2 k =
    let rec go acc k = if k = 0 then acc else go (acc * 2 mod p) (k - 1) in
    go (1 mod p) k
  in
  for i = 0 to n - 1 do
    let d = pow2 (2 * i) in
    if d <> 0 then
      engine.c_modadd_const b ~ctrl:(Register.get x i) ~p ~a:d ~x:target
  done;
  Builder.with_ancilla b (fun g ->
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let d = pow2 (i + j + 1) in
          if d <> 0 then begin
            let xi = Register.get x i and xj = Register.get x j in
            Logical_and.compute b ~c1:xi ~c2:xj ~target:g;
            engine.c_modadd_const b ~ctrl:g ~p ~a:d ~x:target;
            Logical_and.uncompute b ~c1:xi ~c2:xj ~target:g
          end
        done
      done)

let cmult_inplace_windowed ?window spec b ~ctrl ~a ~p ~x =
  Builder.with_span b "cmult_inplace_win" @@ fun () ->
  let n = Register.length x in
  let a = ((a mod p) + p) mod p in
  let a_inv = modinv ~a ~p in
  Builder.with_ancilla_register b "mul" n (fun t ->
      cmult_add_windowed ?window spec b ~ctrl ~a ~p ~x ~target:t;
      controlled_swap b ~ctrl ~x ~t;
      cmult_add_windowed ?window spec b ~ctrl ~a:((p - a_inv) mod p) ~p ~x
        ~target:t)

let modexp_windowed ?window spec b ~a ~p ~e ~x =
  if p >= 1 lsl 31 then
    invalid_arg "Mod_mul.modexp_windowed: modulus too large for exact squaring";
  Builder.with_span b "modexp_win" @@ fun () ->
  let a = ((a mod p) + p) mod p in
  let ak = ref a in
  for j = 0 to Register.length e - 1 do
    cmult_inplace_windowed ?window spec b ~ctrl:(Register.get e j) ~a:!ak ~p ~x;
    ak := !ak * !ak mod p
  done
