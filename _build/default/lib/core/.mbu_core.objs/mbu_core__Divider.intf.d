lib/core/divider.mli: Adder Builder Mbu_circuit Register
