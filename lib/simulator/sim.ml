open Mbu_circuit
open Mbu_telemetry

(* Runtime instruments, registered at module init so no registry work ever
   lands inside a measured run. Counters stripe per domain, so the parallel
   shot runner bumps them contention-free; totals merge on read. *)
let m_runs = Telemetry.counter ~help:"Completed Sim.run executions" "mbu_sim_runs"

let m_run_seconds =
  Telemetry.histogram ~help:"Per-run wall-clock latency in seconds"
    "mbu_sim_run_seconds"

let m_gc_minor_words =
  Telemetry.counter ~help:"Minor-heap words allocated during runs"
    "mbu_sim_gc_minor_words"

let m_gc_major_words =
  Telemetry.counter ~help:"Major-heap words allocated during runs"
    "mbu_sim_gc_major_words"

let m_gates =
  Telemetry.counter ~help:"Program gates applied (injected faults excluded)"
    "mbu_sim_gates"

let m_measurements =
  Telemetry.counter ~help:"Measurements performed" "mbu_sim_measurements"

let m_branches =
  Telemetry.counter ~help:"If_bit branches evaluated" "mbu_sim_branches"

let m_branches_taken =
  Telemetry.counter ~help:"If_bit branches whose body executed"
    "mbu_sim_branches_taken"

let m_peak_terms =
  Telemetry.gauge
    ~help:"Sparse-state support size sampled at run start and measurements"
    "mbu_sim_peak_terms"

type run = {
  state : State.t;
  bits : bool array;
  executed : Counts.t;
  injected : int;
}

type event =
  | Gate_applied of Gate.t
  | Measured of { qubit : Gate.qubit; bit : int; outcome : bool }
  | Branch of { bit : int; value : bool; taken : bool }
  | Span_enter of { label : string; path : string list }
  | Span_exit of { label : string; path : string list }

type engine = Fast | Sparse | Reference

(* Every [run] without [?rng] gets its own freshly seeded generator: a
   shared global would make results depend on how many unseeded runs
   happened earlier in the process (test execution order, REPL history). *)
let default_seed = [| 0x6d62755f; 0x51432025 |]
let fresh_rng () = Random.State.make default_seed

(* Deterministic per-shot split: shot [i] of a multi-shot run draws from a
   generator derived only from the caller's seed and the shot index, so the
   outcome of shot [i] does not depend on the other shots — which is what
   makes the parallel runner's output independent of [jobs]. *)
let shot_rng ~seed i = Random.State.make [| 0x6d62755f; 0x51432025; seed; i |]

let draw_outcome rng p1 =
  if p1 <= 1e-12 then false
  else if p1 >= 1.0 -. 1e-12 then true
  else Random.State.float rng 1.0 < p1

(* Mutable gate tally for the run loop: integer bumps instead of a fresh
   Counts.t record per gate. *)
type tally = {
  mutable t_x : int;
  mutable t_z : int;
  mutable t_h : int;
  mutable t_phase : int;
  mutable t_cnot : int;
  mutable t_cz : int;
  mutable t_swap : int;
  mutable t_toffoli : int;
  mutable t_cphase : int;
  mutable t_measure : int;
}

let tally_gate t = function
  | Gate.X _ -> t.t_x <- t.t_x + 1
  | Gate.Z _ -> t.t_z <- t.t_z + 1
  | Gate.H _ -> t.t_h <- t.t_h + 1
  | Gate.Phase _ -> t.t_phase <- t.t_phase + 1
  | Gate.Cnot _ -> t.t_cnot <- t.t_cnot + 1
  | Gate.Cz _ -> t.t_cz <- t.t_cz + 1
  | Gate.Swap _ -> t.t_swap <- t.t_swap + 1
  | Gate.Toffoli _ -> t.t_toffoli <- t.t_toffoli + 1
  | Gate.Cphase _ -> t.t_cphase <- t.t_cphase + 1

let counts_of_tally t =
  { Counts.x = float_of_int t.t_x;
    z = float_of_int t.t_z;
    h = float_of_int t.t_h;
    phase = float_of_int t.t_phase;
    cnot = float_of_int t.t_cnot;
    cz = float_of_int t.t_cz;
    swap = float_of_int t.t_swap;
    toffoli = float_of_int t.t_toffoli;
    cphase = float_of_int t.t_cphase;
    measure = float_of_int t.t_measure }

let run ?rng ?on_event ?(engine = Fast) ?force ?(faults = []) ?max_terms
    (c : Circuit.t) ~init =
  let rng = match rng with Some r -> r | None -> fresh_rng () in
  if State.num_qubits init < c.num_qubits then
    Mbu_error.invalid ~subsystem:"Sim.run" "state narrower than circuit";
  let bits = Array.make (max c.num_bits 1) false in
  let executed =
    { t_x = 0; t_z = 0; t_h = 0; t_phase = 0; t_cnot = 0; t_cz = 0;
      t_swap = 0; t_toffoli = 0; t_cphase = 0; t_measure = 0 }
  in
  (* The runner owns a private copy, so the fast engines can mutate it in
     place; [Sparse] and [Reference] pin it to the sparse track. *)
  let state = ref (State.copy init) in
  if engine <> Fast then State.force_sparse !state;
  let apply_gate g =
    match engine with
    | Fast | Sparse -> State.apply_gate_inplace !state g
    | Reference -> state := State.Reference.apply_gate !state g
  in
  let project ~qubit ~value =
    match engine with
    | Fast | Sparse -> State.project_inplace !state ~qubit ~value
    | Reference -> state := State.Reference.project !state ~qubit ~value
  in
  let set_bit_zero ~qubit =
    match engine with
    | Fast | Sparse -> State.set_bit_zero_inplace !state ~qubit
    | Reference -> state := State.Reference.set_bit_zero !state ~qubit
  in
  (* Fault plan, indexed for O(1) lookup during execution. Pauli and skip
     faults key on the static instruction position (Fault's site
     numbering, which matches [Instr.count_instrs]); outcome flips key on
     the classical bit, which is unique per measurement. *)
  let pauli_at : (int, int * Gate.t list) Hashtbl.t = Hashtbl.create 8 in
  let flip_bit : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let skip_at : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (function
      | Fault.Pauli_after { pos; qubit; pauli } ->
          let n, gs =
            Option.value (Hashtbl.find_opt pauli_at pos) ~default:(0, [])
          in
          Hashtbl.replace pauli_at pos
            (n + 1, gs @ Fault.pauli_gates pauli qubit)
      | Fault.Flip_outcome { bit } -> Hashtbl.replace flip_bit bit ()
      | Fault.Skip_block { pos } -> Hashtbl.replace skip_at pos ())
    faults;
  (* Position tracking costs an [Instr.count_instrs] per untaken branch, so
     it only runs when a positional fault could fire. *)
  let need_pos = faults <> [] in
  let injected = ref 0 in
  (* Hoist the hook check out of the per-instruction loop: when no hook is
     installed, every event site below is a single always-false branch on
     an immutable bool (and no event block is ever allocated) instead of a
     per-event option match. *)
  let hooked, emit =
    match on_event with Some f -> (true, f) | None -> (false, ignore)
  in
  let track_path = hooked || Option.is_some max_terms in
  let t_start = Telemetry.now () in
  let gc_start = Gc.quick_stat () in
  let branches = ref 0 in
  let branches_taken = ref 0 in
  let peak_terms = ref (State.support_size !state) in
  let check_budget path =
    match max_terms with
    | Some limit ->
        let actual = State.support_size !state in
        if actual > limit then
          Mbu_error.resource_limit ~path ~limit ~actual ~subsystem:"Sim.run"
            "sparse state exceeds the term budget"
    | None -> ()
  in
  (* [exec path pos instrs] returns the static position one past [instrs].
     Event blocks are allocated only when a hook is installed. *)
  let rec exec path pos = function
    | [] -> pos
    | Instr.Gate g :: rest ->
        apply_gate g;
        tally_gate executed g;
        if hooked then emit (Gate_applied g);
        (if need_pos then
           match Hashtbl.find_opt pauli_at pos with
           | Some (n, gs) ->
               (* Injected Paulis are faults, not program gates: applied
                  through the engine but never tallied. *)
               List.iter apply_gate gs;
               injected := !injected + n
           | None -> ());
        check_budget path;
        exec path (pos + 1) rest
    | Instr.Measure { qubit; bit; reset } :: rest ->
        (* Support size peaks just before a measurement collapses the
           state, so sampling here (O(1)) catches the run's high-water
           without a per-gate probe. *)
        let terms = State.support_size !state in
        if terms > !peak_terms then peak_terms := terms;
        let p1 = State.prob_bit_one !state qubit in
        let outcome =
          match force with
          | Some f -> (
              match f bit with
              | Some v ->
                  if (if v then p1 <= 1e-12 else p1 >= 1.0 -. 1e-12) then
                    Mbu_error.invalid ~subsystem:"Sim.run" ~qubit ~bit ~path
                      (Printf.sprintf
                         "forced outcome %b has probability zero"
                         v)
                  else v
              | None -> draw_outcome rng p1)
          | None -> draw_outcome rng p1
        in
        project ~qubit ~value:outcome;
        let recorded =
          if need_pos && Hashtbl.mem flip_bit bit then begin
            incr injected;
            not outcome
          end
          else outcome
        in
        bits.(bit) <- recorded;
        (* Reset is an X conditioned on the *recorded* outcome, so a
           misread fault leaves the qubit physically wrong — exactly the
           failure mode the campaigns probe. *)
        if reset && recorded then
          if outcome then set_bit_zero ~qubit else apply_gate (Gate.X qubit);
        executed.t_measure <- executed.t_measure + 1;
        if hooked then emit (Measured { qubit; bit; outcome = recorded });
        exec path (pos + 1) rest
    | Instr.If_bit { bit; value; body } :: rest ->
        let taken = bits.(bit) = value in
        let taken =
          if need_pos && Hashtbl.mem skip_at pos then begin
            if taken then incr injected;
            false
          end
          else taken
        in
        incr branches;
        if taken then incr branches_taken;
        if hooked then emit (Branch { bit; value; taken });
        let pos_end =
          if taken then exec path (pos + 1) body
          else if need_pos then pos + 1 + Instr.count_instrs body
          else pos
        in
        exec path pos_end rest
    | Instr.Span { label; body; _ } :: rest ->
        let pos =
          if track_path then begin
            let spath = path @ [ label ] in
            if hooked then emit (Span_enter { label; path = spath });
            let p = exec spath pos body in
            if hooked then emit (Span_exit { label; path = spath });
            p
          end
          else exec path pos body
        in
        exec path pos rest
    | Instr.Call { body; _ } :: rest ->
        (* Lazy expansion: a reference executes its body in place; nothing
           is materialized, so sharing is free at simulation time too. *)
        let pos = exec path pos body in
        exec path pos rest
  in
  ignore (exec [] 0 c.instrs);
  (* Per-run telemetry lands once per run, not per instruction, so the
     hot loop above pays nothing for it. GC deltas use [Gc.quick_stat]
     (cheap, and per-domain on OCaml 5, so a shot's delta is its own
     allocation even under the parallel runner). *)
  Telemetry.incr m_runs;
  Telemetry.observe m_run_seconds (Telemetry.now () -. t_start);
  let gc_end = Gc.quick_stat () in
  Telemetry.add m_gc_minor_words
    (max 0 (int_of_float (gc_end.Gc.minor_words -. gc_start.Gc.minor_words)));
  Telemetry.add m_gc_major_words
    (max 0 (int_of_float (gc_end.Gc.major_words -. gc_start.Gc.major_words)));
  Telemetry.add m_gates
    (executed.t_x + executed.t_z + executed.t_h + executed.t_phase
   + executed.t_cnot + executed.t_cz + executed.t_swap + executed.t_toffoli
   + executed.t_cphase);
  Telemetry.add m_measurements executed.t_measure;
  Telemetry.add m_branches !branches;
  Telemetry.add m_branches_taken !branches_taken;
  Telemetry.observe_max m_peak_terms !peak_terms;
  { state = !state; bits; executed = counts_of_tally executed;
    injected = !injected }

let init_registers ~num_qubits assignments =
  let idx = ref 0 in
  List.iter
    (fun (reg, v) ->
      let n = Register.length reg in
      (* [v lsr n] instead of [v >= 1 lsl n]: the latter overflows for wide
         registers, and the seed guard silently skipped validation whenever
         [n >= 62]. Shifts of [Sys.int_size] or more are unspecified, but a
         register that wide holds any non-negative int. *)
      if v < 0 || (n < Sys.int_size && v lsr n <> 0) then
        Mbu_error.invalid ~subsystem:"Sim.init_registers"
          ~register:(Register.name reg)
          (Printf.sprintf "%d does not fit %s" v (Register.name reg));
      for i = 0 to n - 1 do
        if (v lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get reg i)
      done)
    assignments;
  State.basis ~num_qubits !idx

let run_builder ?rng ?on_event ?engine ?force ?faults ?max_terms b ~inits =
  let c = Builder.to_circuit b in
  let init = init_registers ~num_qubits:(Builder.num_qubits b) inits in
  run ?rng ?on_event ?engine ?force ?faults ?max_terms c ~init

(* ------------------------------------------------------------------ *)
(* Aggregate branch / outcome statistics over Monte-Carlo runs *)

type stats = {
  mutable runs : int;
  branch : (int, int * int) Hashtbl.t;  (* bit -> taken, seen *)
  outcome : (int, int * int) Hashtbl.t;  (* bit -> ones, measured *)
}

let new_stats () = { runs = 0; branch = Hashtbl.create 16; outcome = Hashtbl.create 16 }

let bump tbl key hit =
  let a, b = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0) in
  Hashtbl.replace tbl key ((if hit then a + 1 else a), b + 1)

let stats_hook st = function
  | Branch { bit; taken; _ } -> bump st.branch bit taken
  | Measured { bit; outcome; _ } -> bump st.outcome bit outcome
  | Gate_applied _ | Span_enter _ | Span_exit _ -> ()

let record_run st = st.runs <- st.runs + 1
let runs st = st.runs

let merge_stats ~into src =
  into.runs <- into.runs + src.runs;
  let merge dst tbl =
    Hashtbl.iter
      (fun k (a, b) ->
        let a0, b0 = Option.value (Hashtbl.find_opt dst k) ~default:(0, 0) in
        Hashtbl.replace dst k (a0 + a, b0 + b))
      tbl
  in
  merge into.branch src.branch;
  merge into.outcome src.outcome

let freq = function
  | _, 0 -> None
  | taken, seen -> Some (float_of_int taken /. float_of_int seen)

let bit_taken_frequency st bit =
  Option.bind (Hashtbl.find_opt st.branch bit) (fun c -> freq c)

let taken_frequency st =
  let taken, seen =
    Hashtbl.fold (fun _ (t, s) (at, as_) -> (at + t, as_ + s)) st.branch (0, 0)
  in
  freq (taken, seen)

let measured_one_frequency st bit =
  Option.bind (Hashtbl.find_opt st.outcome bit) (fun c -> freq c)

let branch_bits st = Hashtbl.fold (fun k _ acc -> k :: acc) st.branch [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Parallel multi-shot runner *)

let default_jobs = Parallel.default_jobs
let parallel_backend = Parallel.backend

let run_shots ?(seed = 0) ?jobs ?stats ?(engine = Fast) ?force ?faults
    ?max_terms ~shots c ~init =
  if shots < 0 then
    Mbu_error.invalid ~subsystem:"Sim.run_shots" "negative shot count";
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallel.default_jobs ()
  in
  (* Position tracking (active only with a fault plan) reads Instr's
     per-node memo tables; populate them here, on one thread, so the
     parallel shots below only ever hit the tables read-only. *)
  (match faults with
  | Some (_ :: _) -> ignore (Instr.count_instrs c.Circuit.instrs)
  | Some [] | None -> ());
  let collect = Option.is_some stats in
  let shot i =
    let rng = shot_rng ~seed i in
    if collect then begin
      let st = new_stats () in
      let r =
        run ~rng ~on_event:(stats_hook st) ~engine ?force ?faults ?max_terms c
          ~init
      in
      record_run st;
      (r, Some st)
    end
    else (run ~rng ~engine ?force ?faults ?max_terms c ~init, None)
  in
  let results = Parallel.map_tasks ~jobs ~tasks:shots shot in
  (match stats with
  | Some acc ->
      Array.iter
        (fun (_, st) -> Option.iter (fun st -> merge_stats ~into:acc st) st)
        results
  | None -> ());
  Array.map fst results

let run_shots_builder ?seed ?jobs ?stats ?engine ?force ?faults ?max_terms
    ~shots b ~inits =
  let c = Builder.to_circuit b in
  let init = init_registers ~num_qubits:(Builder.num_qubits b) inits in
  run_shots ?seed ?jobs ?stats ?engine ?force ?faults ?max_terms ~shots c ~init

let register_value state reg =
  (* Accumulate from the MSB down so bit i lands at weight 2^i. *)
  let rec from_msb acc i =
    if i < 0 then Some acc
    else
      match State.bit_value state (Register.get reg i) with
      | Some b -> from_msb ((acc lsl 1) lor (if b then 1 else 0)) (i - 1)
      | None -> None
  in
  from_msb 0 (Register.length reg - 1)

let register_value_exn state reg =
  match register_value state reg with
  | Some v -> v
  | None ->
      Mbu_error.invalid ~subsystem:"Sim.register_value_exn"
        ~register:(Register.name reg)
        (Printf.sprintf "%s is in superposition" (Register.name reg))

let wires_zero state ~except =
  let marked = Hashtbl.create 64 in
  List.iter
    (fun r -> Array.iter (fun q -> Hashtbl.replace marked q ()) (Register.qubits r))
    except;
  let n = State.num_qubits state in
  let rec check q =
    if q >= n then true
    else if Hashtbl.mem marked q then check (q + 1)
    else
      match State.bit_value state q with
      | Some false -> check (q + 1)
      | Some true | None -> false
  in
  check 0

(* Sample one register value from a final state, consuming the given rng.
   Mutates [state] (the caller passes a run-private state). *)
let measure_register rng state reg =
  let v = ref 0 in
  for i = Register.length reg - 1 downto 0 do
    let q = Register.get reg i in
    let p1 = State.prob_bit_one state q in
    let bit = draw_outcome rng p1 in
    State.project_inplace state ~qubit:q ~value:bit;
    v := (!v lsl 1) lor (if bit then 1 else 0)
  done;
  !v

let tally_of_values values =
  let tally = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      Hashtbl.replace tally v
        (1 + Option.value (Hashtbl.find_opt tally v) ~default:0))
    values;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort (fun (va, a) (vb, b) ->
         if a <> b then compare b a else compare va vb)

let sample_register ?rng ?(seed = 0) ?jobs ~shots c ~init reg =
  match rng with
  | Some rng ->
      (* Legacy sequential path: a caller-supplied generator is shared
         across shots, so the shots must run in order on one thread. *)
      let values = Array.make shots 0 in
      for i = 0 to shots - 1 do
        let r = run ~rng c ~init in
        values.(i) <- measure_register rng r.state reg
      done;
      tally_of_values values
  | None ->
      let jobs =
        match jobs with Some j -> max 1 j | None -> Parallel.default_jobs ()
      in
      let values =
        Parallel.map_tasks ~jobs ~tasks:shots (fun i ->
            let rng = shot_rng ~seed i in
            let r = run ~rng c ~init in
            measure_register rng r.state reg)
      in
      tally_of_values values

let unitary_column (c : Circuit.t) j =
  if not (Circuit.is_unitary c) then
    invalid_arg "Sim.unitary_column: circuit contains measurements";
  (run c ~init:(State.basis ~num_qubits:c.Circuit.num_qubits j)).state

let circuits_equal_unitary ?dim_qubits a b =
  let n =
    match dim_qubits with
    | Some n -> n
    | None -> max a.Circuit.num_qubits b.Circuit.num_qubits
  in
  if n > 12 then invalid_arg "Sim.circuits_equal_unitary: too wide";
  let widen (c : Circuit.t) =
    Circuit.make ~num_qubits:n ~num_bits:c.Circuit.num_bits c.Circuit.instrs
  in
  let a = widen a and b = widen b in
  (* Columns must match up to a single global phase shared across all
     columns. Compare the relative phase of each column against column 0 by
     checking U_a |+...+> against U_b |+...+> as well as each basis state. *)
  let dim = 1 lsl n in
  let col_ok = ref true in
  for j = 0 to dim - 1 do
    if State.fidelity (unitary_column a j) (unitary_column b j) < 1. -. 1e-9 then
      col_ok := false
  done;
  (* catching relative-phase differences between columns: feed the uniform
     superposition through both *)
  let uniform =
    let amp : Complex.t = { re = 1.0 /. sqrt (float_of_int dim); im = 0.0 } in
    State.of_alist ~num_qubits:n (List.init dim (fun j -> (j, amp)))
  in
  let through (c : Circuit.t) = (run c ~init:uniform).state in
  !col_ok && State.fidelity (through a) (through b) > 1. -. 1e-9
