examples/grover.ml: Adder Builder Fun List Mbu Mbu_circuit Mbu_core Mbu_simulator Mcx Mod_add Mod_mul Printf Random Register Sim String
