(* Quickstart: build a modular adder, look at it, run it, and see what
   measurement-based uncomputation saves.

     dune exec examples/quickstart.exe *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let () =
  print_endline "=== 1. A 2-qubit CDKPM plain adder, drawn ===";
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 2 in
  let y = Builder.fresh_register b "y" 3 in
  Adder_cdkpm.add b ~x ~y;
  print_string (Draw.render_registers [ x; y ] (Builder.to_circuit b));
  Printf.printf "(stars are controls, + are targets; %d qubits total)\n\n"
    (Builder.num_qubits b)

let () =
  print_endline "=== 2. Modular addition: (x + y) mod p on the simulator ===";
  let n = 5 and p = 29 in
  let run x_val y_val =
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    Mod_add.modadd ~mbu:true Mod_add.spec_mixed b ~p ~x ~y;
    let r = Sim.run_builder b ~inits:[ (x, x_val); (y, y_val) ] in
    Sim.register_value_exn r.Sim.state y
  in
  List.iter
    (fun (x_val, y_val) ->
      Printf.printf "  (%2d + %2d) mod %d = %2d\n" x_val y_val p (run x_val y_val))
    [ (17, 25); (28, 28); (3, 9) ];
  print_newline ()

let () =
  print_endline "=== 3. What MBU saves (expected gate counts, n = 16) ===";
  let n = 16 and p = (1 lsl 16) - 15 in
  let measure ~mbu spec =
    Resources.measure ~n
      ~build:(fun b ->
        let x = Builder.fresh_register b "x" n in
        let y = Builder.fresh_register b "y" n in
        Mod_add.modadd ~mbu spec b ~p ~x ~y)
      ()
  in
  Printf.printf "  %-14s %10s %10s %9s\n" "modular adder" "Tof (w/o)" "Tof (MBU)" "saving";
  List.iter
    (fun (name, spec) ->
      let plain = measure ~mbu:false spec and mbu = measure ~mbu:true spec in
      Printf.printf "  %-14s %10.1f %10.1f %8.1f%%\n" name plain.Resources.toffoli
        mbu.Resources.toffoli
        (100. *. (plain.Resources.toffoli -. mbu.Resources.toffoli)
        /. plain.Resources.toffoli))
    [ ("CDKPM", Mod_add.spec_cdkpm); ("Gidney", Mod_add.spec_gidney);
      ("Gidney+CDKPM", Mod_add.spec_mixed) ];
  print_newline ()

let () =
  print_endline "=== 4. The MBU lemma in action (figure 24) ===";
  (* Put a garbage bit g(x) = x0 AND x1 next to a superposed register, erase
     it with MBU, and check the state is exactly restored. *)
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 2 in
  let g = Builder.fresh_register b "g" 1 in
  Array.iter (fun q -> Builder.h b q) (Register.qubits x);
  let gq = Register.get g 0 in
  let ug () =
    Builder.toffoli b ~c1:(Register.get x 0) ~c2:(Register.get x 1) ~target:gq
  in
  ug ();
  (* the garbage is now entangled with x; erase it probabilistically *)
  Mbu.uncompute_bit b ~garbage:gq ~ug;
  let r = Sim.run_builder b ~inits:[] in
  Printf.printf "  garbage erased, final state (4 flat terms expected):\n";
  Format.printf "  @[%a@]@." State.pp r.Sim.state;
  let counts = Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b) in
  Format.printf "  expected gate counts: %a@." Counts.pp counts
