open Mbu_circuit

(* Figure 24. After H + measure:
   - outcome 0: the garbage qubit is |0>, done;
   - outcome 1: the data carries a phase (-1)^{g(x)} and the qubit is |1>.
     H returns the qubit to |->; U_g kicks back exactly (-1)^{g(x)},
     cancelling the phase; H + X return the qubit to |0>. *)
let uncompute_bit b ~garbage ~ug =
  Builder.with_span b "mbu.uncompute_bit" @@ fun () ->
  Builder.h b garbage;
  let bit = Builder.measure b garbage in
  Builder.if_bit b bit (fun () ->
      Builder.h b garbage;
      ug ();
      Builder.h b garbage;
      Builder.x b garbage)

let uncompute_bit_direct _b ~garbage:_ ~ug = ug ()

let in_range ?(mbu = true) style b ~x ~y ~z ~target =
  let n = Register.length x in
  if Register.length y <> n || Register.length z <> n then
    invalid_arg "Mbu.in_range: unequal register lengths";
  Builder.with_span b
    (Printf.sprintf "mbu.in_range[%s]%s" (Adder.style_name style)
       (if mbu then "+mbu" else ""))
  @@ fun () ->
  Builder.with_ancilla b (fun t1 ->
      (* t1 <- 1[y < x], i.e. 1[x > y]. *)
      let lower () = Adder.compare style b ~x ~y ~target:t1 in
      lower ();
      (* target <- target XOR (t1 AND 1[x < z]), with 1[x < z] = 1[z > x]. *)
      Adder.compare_controlled style b ~ctrl:t1 ~x:z ~y:x ~target;
      (* Erase the intermediate comparison — the circuit the MBU lemma can
         skip half the time. *)
      if mbu then uncompute_bit b ~garbage:t1 ~ug:lower else lower ())
