test/test_qrom.ml: Alcotest Array Builder Circuit Complex Counts Helpers List Mbu_circuit Mbu_core Mbu_simulator Printf Qrom Random Register Sim State
