lib/circuit/draw.mli: Circuit Register
