(** Gidney's temporary-logical-AND adder (proposition 2.4, figures 12--13)
    and its derived circuits.

    Each carry is computed into a fresh ancilla by one logical-AND (one
    Toffoli) and erased on the way down by measurement-based uncomputation —
    an X-basis measurement plus a probability-1/2 classically controlled CZ —
    so the adder costs [n] Toffoli and [n] ancillas. Because of the
    measurements these circuits are not invertible by [Builder.emit_adjoint];
    subtraction uses the complement identity of theorem 2.22 instead
    (see {!Adder.sub}).

    Register conventions as in {!Adder_vbe}. *)

open Mbu_circuit

val add : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Proposition 2.4: [n] Toffoli, [n] ancillas. *)

val add_controlled :
  Builder.t -> ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> unit
(** Proposition 2.11: [2n + 1] Toffoli (paper quotes 2n), [n] ancillas. *)

val compare :
  Builder.t -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** Proposition 2.28: [target XOR= 1\[x > y\]] with [n] Toffoli and [n]
    ancillas — the descent erases every carry by MBU, costing no Toffoli. *)

val compare_controlled :
  Builder.t ->
  ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** Proposition 2.31: [target XOR= ctrl AND 1\[x > y\]], [n + 1] Toffoli. *)

val add_mod : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Equal-length addition modulo [2^m] (no overflow qubit):
    [y <- (x + y) mod 2^m]. *)
