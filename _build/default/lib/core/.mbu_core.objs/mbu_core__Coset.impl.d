lib/core/coset.ml: Adder Builder Mbu_circuit Register
