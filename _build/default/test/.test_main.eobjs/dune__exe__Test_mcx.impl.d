test/test_mcx.ml: Alcotest Array Builder Circuit Complex Counts Helpers List Mbu_circuit Mbu_core Mbu_simulator Mcx Printf Register Sim State
