lib/circuit/register.mli: Format Gate
