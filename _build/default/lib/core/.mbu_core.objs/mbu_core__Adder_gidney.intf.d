lib/core/adder_gidney.mli: Builder Gate Mbu_circuit Register
