lib/core/adder_cla.mli: Builder Gate Mbu_circuit Register
