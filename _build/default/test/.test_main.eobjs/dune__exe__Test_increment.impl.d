test/test_increment.ml: Adder Alcotest Array Builder Circuit Complex Counts Helpers Increment List Mbu_circuit Mbu_core Mbu_simulator Printf Register Sim State
