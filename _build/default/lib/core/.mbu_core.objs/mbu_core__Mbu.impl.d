lib/core/mbu.ml: Adder Builder Mbu_circuit Register
