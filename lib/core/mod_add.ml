open Mbu_circuit

type spec = {
  q_add : Adder.style;
  q_comp_const : Adder.style;
  c_q_sub_const : Adder.style;
  q_comp : Adder.style;
}

let spec_cdkpm =
  { q_add = Cdkpm; q_comp_const = Cdkpm; c_q_sub_const = Cdkpm; q_comp = Cdkpm }

let spec_gidney =
  { q_add = Gidney; q_comp_const = Gidney; c_q_sub_const = Gidney; q_comp = Gidney }

(* Theorem 3.6: Gidney for the two register-register stages (cheap Toffoli),
   CDKPM for the two constant stages (no carry-ancilla register). *)
let spec_mixed =
  { q_add = Gidney; q_comp_const = Cdkpm; c_q_sub_const = Cdkpm; q_comp = Gidney }

let spec_name s =
  if s = spec_cdkpm then "cdkpm"
  else if s = spec_gidney then "gidney"
  else if s = spec_mixed then "gidney+cdkpm"
  else
    Printf.sprintf "%s/%s/%s/%s"
      (Adder.style_name s.q_add)
      (Adder.style_name s.q_comp_const)
      (Adder.style_name s.c_q_sub_const)
      (Adder.style_name s.q_comp)

(* Comparison of the (n+1)-bit sum register against the modulus. For the
   Draper family the sum's own sign qubit serves as the comparator output
   source (proposition 3.7's composition), avoiding an extra ancilla and
   letting adjacent QFT/IQFT blocks cancel. *)
let compare_with_modulus style b ~p ~sum ~target =
  match (style : Adder.style) with
  | Adder.Draper -> Adder_draper.compare_const_msb b ~a:p ~x:sum ~target
  | Adder.Vbe | Adder.Cdkpm | Adder.Gidney ->
      Adder.compare_const style b ~a:p ~x:sum ~target

let check_modulus name ~p ~n =
  if n <= 0 || n >= 62 then invalid_arg (name ^ ": register width out of range");
  if p <= 0 || p lsr n <> 0 then
    invalid_arg (Printf.sprintf "%s: modulus %d does not fit %d qubits" name p n)

let uncompute ~mbu b ~garbage ~ug =
  if mbu then Mbu.uncompute_bit b ~garbage ~ug else ug ()

(* Span label for a modular-adder variant: "modadd[gidney+cdkpm]+mbu". *)
let span_label name ~mbu spec =
  Printf.sprintf "%s[%s]%s" name (spec_name spec) (if mbu then "+mbu" else "")

let fixed_label name ~mbu = name ^ if mbu then "+mbu" else ""

(* Proposition 3.2 / theorem 4.2. Stages:
   1. plain addition into the (n+1)-qubit extension of y;
   2. t <- 1[x+y < p], flipped to d = 1[x+y >= p];
   3. subtract p from the sum when d;
   4. erase d, using d = 1[x > (x+y) mod p] (valid because y < p). *)
let modadd ?(mbu = false) spec b ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Mod_add.modadd: unequal lengths";
  check_modulus "Mod_add.modadd" ~p ~n;
  Builder.with_span b (span_label "modadd" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Builder.with_shared b "modadd.add" (fun () -> Adder.add spec.q_add b ~x ~y:ys);
      Builder.with_ancilla b (fun t ->
          Builder.with_shared b "modadd.comp_p" (fun () ->
              compare_with_modulus spec.q_comp_const b ~p ~sum:ys ~target:t;
              Builder.x b t);
          Builder.with_shared b "modadd.csub_p" (fun () ->
              Adder.sub_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p ~y:ys);
          Builder.with_shared b "modadd.uncomp" (fun () ->
              uncompute ~mbu b ~garbage:t ~ug:(fun () ->
                  Adder.compare spec.q_comp b ~x ~y ~target:t))))

(* Proposition 3.9 / theorem 4.7: only the first adder and the erasing
   comparator carry the control. *)
let modadd_controlled ?(mbu = false) spec b ~ctrl ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then
    invalid_arg "Mod_add.modadd_controlled: unequal lengths";
  check_modulus "Mod_add.modadd_controlled" ~p ~n;
  Builder.with_span b (span_label "cmodadd" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Builder.with_shared b "modadd.add" (fun () ->
          Adder.add_controlled spec.q_add b ~ctrl ~x ~y:ys);
      Builder.with_ancilla b (fun t ->
          Builder.with_shared b "modadd.comp_p" (fun () ->
              compare_with_modulus spec.q_comp_const b ~p ~sum:ys ~target:t;
              Builder.x b t);
          Builder.with_shared b "modadd.csub_p" (fun () ->
              Adder.sub_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p ~y:ys);
          Builder.with_shared b "modadd.uncomp" (fun () ->
              uncompute ~mbu b ~garbage:t ~ug:(fun () ->
                  Adder.compare_controlled spec.q_comp b ~ctrl ~x ~y ~target:t))))

(* Theorem 3.14 / theorem 4.10: the VBE architecture specialized to a
   classical addend; the erasure uses d = 1[(x+a) mod p < a]. *)
let modadd_const ?(mbu = false) spec b ~p ~a ~x =
  let n = Register.length x in
  check_modulus "Mod_add.modadd_const" ~p ~n;
  if a < 0 || a >= p then invalid_arg "Mod_add.modadd_const: need 0 <= a < p";
  Builder.with_span b (span_label "modadd_const" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let xs = Register.extend x high in
      Builder.with_shared b "modadd.add" (fun () ->
          Adder.add_const spec.q_add b ~a ~y:xs);
      Builder.with_ancilla b (fun t ->
          Builder.with_shared b "modadd.comp_p" (fun () ->
              compare_with_modulus spec.q_comp_const b ~p ~sum:xs ~target:t;
              Builder.x b t);
          Builder.with_shared b "modadd.csub_p" (fun () ->
              Adder.sub_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p ~y:xs);
          Builder.with_shared b "modadd.uncomp" (fun () ->
              uncompute ~mbu b ~garbage:t ~ug:(fun () ->
                  Adder.compare_const spec.q_comp b ~a ~x ~target:t))))

(* Proposition 3.15 / theorem 4.11 (Takahashi): subtract p - a, re-add p
   under the sign qubit, erase the sign with one constant comparison and a
   NOT. Uses q_add for the additive stages and q_comp for the erasure. *)
let modadd_const_takahashi ?(mbu = false) spec b ~p ~a ~x =
  let n = Register.length x in
  check_modulus "Mod_add.modadd_const_takahashi" ~p ~n;
  if a < 0 || a >= p then
    invalid_arg "Mod_add.modadd_const_takahashi: need 0 <= a < p";
  if a = 0 then ()
  else
    Builder.with_span b (span_label "modadd_const_tak" ~mbu spec) @@ fun () ->
    Builder.with_ancilla b (fun sign ->
        let xs = Register.extend x sign in
        Adder.sub_const spec.q_add b ~a:(p - a) ~y:xs;
        (* sign = 1[x < p - a] = 1[x + a < p]; re-add p to the low n bits *)
        Adder.add_const_mod_controlled spec.q_add b ~ctrl:sign ~a:p ~y:x;
        let ug () =
          Adder.compare_const spec.q_comp b ~a ~x ~target:sign;
          Builder.x b sign
        in
        uncompute ~mbu b ~garbage:sign ~ug)

(* Proposition 3.18 / theorem 4.12. *)
let modadd_const_controlled ?(mbu = false) spec b ~ctrl ~p ~a ~x =
  let n = Register.length x in
  check_modulus "Mod_add.modadd_const_controlled" ~p ~n;
  if a < 0 || a >= p then
    invalid_arg "Mod_add.modadd_const_controlled: need 0 <= a < p";
  Builder.with_span b (span_label "cmodadd_const" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let xs = Register.extend x high in
      Adder.add_const_controlled spec.q_add b ~ctrl ~a ~y:xs;
      Builder.with_ancilla b (fun t ->
          (* The reduce stage depends only on p, never on the addend a, so
             across the n iterations of a product loop it is one shared
             node referenced n times. *)
          Builder.with_shared b "modadd.reduce" (fun () ->
              compare_with_modulus spec.q_comp_const b ~p ~sum:xs ~target:t;
              Builder.x b t;
              Adder.sub_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p
                ~y:xs);
          uncompute ~mbu b ~garbage:t ~ug:(fun () ->
              Adder.compare_const_controlled spec.q_comp b ~ctrl ~a ~x ~target:t)))

(* Proposition 3.13: lift a constant to a loaded register. *)
let modadd_const_via_load ?(mbu = false) spec b ~p ~a ~x =
  let n = Register.length x in
  check_modulus "Mod_add.modadd_const_via_load" ~p ~n;
  if a < 0 || a >= p then
    invalid_arg "Mod_add.modadd_const_via_load: need 0 <= a < p";
  Builder.with_span b (span_label "modadd_const_load" ~mbu spec) @@ fun () ->
  Builder.with_ancilla_register b "ka" n (fun ka ->
      Adder.load_const b ~a ka;
      modadd ~mbu spec b ~p ~x:ka ~y:x;
      Adder.load_const b ~a ka)

(* ------------------------------------------------------------------ *)
(* The original VBE modular adders of table 1 *)

let with_loaded b ~n ~load f =
  Builder.with_ancilla_register b "kp" n (fun kp ->
      load kp;
      f kp;
      load kp)

(* Five plain adders: ADD, SUB(p), conditional re-ADD(p), and an erasing
   SUB(x)/ADD(x) pair. The condition bit t = 1[x+y < p] is produced by the
   sign of the subtraction and consumed by a t-controlled load of p. *)
let modadd_vbe_5adder ?(mbu = false) b ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then
    invalid_arg "Mod_add.modadd_vbe_5adder: unequal lengths";
  check_modulus "Mod_add.modadd_vbe_5adder" ~p ~n;
  Builder.with_span b (fixed_label "modadd_vbe5" ~mbu) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Adder_vbe.add b ~x ~y:ys;
      Builder.with_ancilla b (fun t ->
          (* SUB(p) and read the sign. *)
          with_loaded b ~n ~load:(fun kp -> Adder.load_const b ~a:p kp)
            (fun kp -> Builder.emit_adjoint b (fun () -> Adder_vbe.add b ~x:kp ~y:ys));
          Builder.cnot b ~control:high ~target:t;
          (* Re-add p exactly when the subtraction underflowed. *)
          with_loaded b ~n
            ~load:(fun kp -> Adder.load_const_controlled b ~ctrl:t ~a:p kp)
            (fun kp -> Adder_vbe.add b ~x:kp ~y:ys);
          (* t = 1[x+y < p] = NOT 1[x > (x+y) mod p]: erase it with a
             subtract/read/add-back pair and a NOT. *)
          let ug () =
            Builder.emit_adjoint b (fun () -> Adder_vbe.add b ~x ~y:ys);
            Builder.cnot b ~control:high ~target:t;
            Adder_vbe.add b ~x ~y:ys;
            Builder.x b t
          in
          uncompute ~mbu b ~garbage:t ~ug))

(* Four plain-adder-equivalents: the erasing pair becomes one VBE
   carry-chain comparator. *)
let modadd_vbe_4adder ?(mbu = false) b ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then
    invalid_arg "Mod_add.modadd_vbe_4adder: unequal lengths";
  check_modulus "Mod_add.modadd_vbe_4adder" ~p ~n;
  Builder.with_span b (fixed_label "modadd_vbe4" ~mbu) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Adder_vbe.add b ~x ~y:ys;
      Builder.with_ancilla b (fun t ->
          with_loaded b ~n ~load:(fun kp -> Adder.load_const b ~a:p kp)
            (fun kp -> Builder.emit_adjoint b (fun () -> Adder_vbe.add b ~x:kp ~y:ys));
          Builder.cnot b ~control:high ~target:t;
          with_loaded b ~n
            ~load:(fun kp -> Adder.load_const_controlled b ~ctrl:t ~a:p kp)
            (fun kp -> Adder_vbe.add b ~x:kp ~y:ys);
          let ug () =
            Adder_vbe.compare b ~x ~y ~target:t;
            Builder.x b t
          in
          uncompute ~mbu b ~garbage:t ~ug))

(* ------------------------------------------------------------------ *)
(* Draper/Beauregard (proposition 3.7 / theorem 4.6) *)

let modadd_draper ?(mbu = false) b ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then
    invalid_arg "Mod_add.modadd_draper: unequal lengths";
  check_modulus "Mod_add.modadd_draper" ~p ~n;
  Builder.with_span b (fixed_label "modadd_draper" ~mbu) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Builder.with_ancilla b (fun t ->
          Qft.apply b ys;
          Adder_draper.phi_add b ~x ~phi_y:ys;
          Adder_draper.phi_sub_const b ~a:p ~phi_y:ys;
          Qft.apply_inverse b ys;
          Builder.cnot b ~control:high ~target:t;
          Qft.apply b ys;
          Adder_draper.phi_add_const b ~a:p ~phi_y:ys;
          Builder.x b t;
          Adder_draper.c_phi_sub_const b ~ctrl:t ~a:p ~phi_y:ys;
          (* The register is still Fourier-encoded here; the erasing
             comparator dips back into the computational basis to read the
             sign, so its QFT pair is what MBU saves half of. *)
          let ug () =
            Builder.emit_adjoint b (fun () -> Adder_draper.phi_add b ~x ~phi_y:ys);
            Qft.apply_inverse b ys;
            Builder.cnot b ~control:high ~target:t;
            Qft.apply b ys;
            Adder_draper.phi_add b ~x ~phi_y:ys
          in
          uncompute ~mbu b ~garbage:t ~ug;
          Qft.apply_inverse b ys))

(* Constant Beauregard modular adder (figure 23 skeleton). *)
let modadd_const_draper ?(mbu = false) b ~p ~a ~x =
  let n = Register.length x in
  check_modulus "Mod_add.modadd_const_draper" ~p ~n;
  if a < 0 || a >= p then
    invalid_arg "Mod_add.modadd_const_draper: need 0 <= a < p";
  Builder.with_span b (fixed_label "modadd_const_draper" ~mbu) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let xs = Register.extend x high in
      Builder.with_ancilla b (fun t ->
          Qft.apply b xs;
          Adder_draper.phi_add_const b ~a ~phi_y:xs;
          Adder_draper.phi_sub_const b ~a:p ~phi_y:xs;
          Qft.apply_inverse b xs;
          Builder.cnot b ~control:high ~target:t;
          Qft.apply b xs;
          Adder_draper.phi_add_const b ~a:p ~phi_y:xs;
          Builder.x b t;
          Adder_draper.c_phi_sub_const b ~ctrl:t ~a:p ~phi_y:xs;
          (* erase t = 1[x+a >= p] = 1[(x+a) mod p < a] *)
          let ug () =
            Adder_draper.phi_sub_const b ~a ~phi_y:xs;
            Qft.apply_inverse b xs;
            Builder.cnot b ~control:high ~target:t;
            Qft.apply b xs;
            Adder_draper.phi_add_const b ~a ~phi_y:xs
          in
          uncompute ~mbu b ~garbage:t ~ug;
          Qft.apply_inverse b xs))

(* Proposition 3.19: same skeleton, first addition controlled, erasure read
   through a Toffoli so that nothing happens when the control is off. *)
let modadd_const_controlled_draper ?(mbu = false) b ~ctrl ~p ~a ~x =
  let n = Register.length x in
  check_modulus "Mod_add.modadd_const_controlled_draper" ~p ~n;
  if a < 0 || a >= p then
    invalid_arg "Mod_add.modadd_const_controlled_draper: need 0 <= a < p";
  Builder.with_span b (fixed_label "cmodadd_const_draper" ~mbu) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let xs = Register.extend x high in
      Builder.with_ancilla b (fun t ->
          Qft.apply b xs;
          Adder_draper.c_phi_add_const b ~ctrl ~a ~phi_y:xs;
          Adder_draper.phi_sub_const b ~a:p ~phi_y:xs;
          Qft.apply_inverse b xs;
          Builder.cnot b ~control:high ~target:t;
          Qft.apply b xs;
          Adder_draper.phi_add_const b ~a:p ~phi_y:xs;
          Builder.x b t;
          Adder_draper.c_phi_sub_const b ~ctrl:t ~a:p ~phi_y:xs;
          (* t = d, and d = ctrl AND 1[(x + ctrl.a) mod p < a]. *)
          let ug () =
            Adder_draper.phi_sub_const b ~a ~phi_y:xs;
            Qft.apply_inverse b xs;
            Builder.toffoli b ~c1:ctrl ~c2:high ~target:t;
            Qft.apply b xs;
            Adder_draper.phi_add_const b ~a ~phi_y:xs
          in
          uncompute ~mbu b ~garbage:t ~ug;
          Qft.apply_inverse b xs))

(* Remark 3.3: reduce an (n+1)-bit value < 2p modulo p, exposing the
   quotient bit. *)
let reduce ?(mbu = false) spec b ~p ~x ~flag =
  ignore mbu;
  let n = Register.length x - 1 in
  check_modulus "Mod_add.reduce" ~p ~n;
  Builder.with_span b (span_label "modreduce" ~mbu:false spec) @@ fun () ->
  compare_with_modulus spec.q_comp_const b ~p ~sum:x ~target:flag;
  Builder.x b flag;
  Adder.sub_const_controlled spec.c_q_sub_const b ~ctrl:flag ~a:p ~y:x

(* The mirror of modadd: set d = 1[x > y] with a cheap comparator, re-add p
   under d, erase d against the (y + d.p)-vs-p comparison, subtract x. *)
let modsub ?(mbu = false) spec b ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Mod_add.modsub: unequal lengths";
  check_modulus "Mod_add.modsub" ~p ~n;
  Builder.with_span b (span_label "modsub" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Builder.with_ancilla b (fun t ->
          Adder.compare spec.q_comp b ~x ~y ~target:t;
          Adder.add_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p ~y:ys;
          (* t holds d = 1[x > y]; ys = y + d.p; erase d: the sum is below p
             exactly when d = 0 *)
          let ug () =
            compare_with_modulus spec.q_comp_const b ~p ~sum:ys ~target:t;
            Builder.x b t
          in
          uncompute ~mbu b ~garbage:t ~ug);
      Adder.sub spec.q_add b ~x ~y:ys)

let modsub_const ?mbu spec b ~p ~a ~x =
  if a < 0 || a >= p then invalid_arg "Mod_add.modsub_const: need 0 <= a < p";
  modadd_const ?mbu spec b ~p ~a:((p - a) mod p) ~x

(* Figure 23: the double control collapses into one logical-AND ancilla. *)
let modadd_const_double_controlled_draper ?(mbu = false) b ~ctrl1 ~ctrl2 ~p ~a ~x =
  Builder.with_span b (fixed_label "ccmodadd_const_draper" ~mbu) @@ fun () ->
  Builder.with_ancilla b (fun g ->
      Logical_and.compute b ~c1:ctrl1 ~c2:ctrl2 ~target:g;
      modadd_const_controlled_draper ~mbu b ~ctrl:g ~p ~a ~x;
      Logical_and.uncompute b ~c1:ctrl1 ~c2:ctrl2 ~target:g)

(* ------------------------------------------------------------------ *)
(* Arbitrary-width moduli: same pipelines, constants as bit strings. *)

let check_modulus_big name ~p ~n =
  let open Mbu_bitstring in
  if n <= 0 then invalid_arg (name ^ ": empty register");
  if Bitstring.hamming_weight p = 0 then invalid_arg (name ^ ": zero modulus");
  for i = n to Bitstring.length p - 1 do
    if Bitstring.get p i then
      invalid_arg (name ^ ": modulus does not fit the register")
  done

let modadd_big ?(mbu = false) spec b ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Mod_add.modadd_big: unequal lengths";
  check_modulus_big "Mod_add.modadd_big" ~p ~n;
  Builder.with_span b (span_label "modadd_big" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Adder.add spec.q_add b ~x ~y:ys;
      Builder.with_ancilla b (fun t ->
          Adder_big.compare_const spec.q_comp_const b ~a:p ~x:ys ~target:t;
          Builder.x b t;
          Adder_big.sub_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p ~y:ys;
          uncompute ~mbu b ~garbage:t ~ug:(fun () ->
              Adder.compare spec.q_comp b ~x ~y ~target:t)))

let modadd_controlled_big ?(mbu = false) spec b ~ctrl ~p ~x ~y =
  let n = Register.length x in
  if Register.length y <> n then
    invalid_arg "Mod_add.modadd_controlled_big: unequal lengths";
  check_modulus_big "Mod_add.modadd_controlled_big" ~p ~n;
  Builder.with_span b (span_label "cmodadd_big" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let ys = Register.extend y high in
      Adder.add_controlled spec.q_add b ~ctrl ~x ~y:ys;
      Builder.with_ancilla b (fun t ->
          Adder_big.compare_const spec.q_comp_const b ~a:p ~x:ys ~target:t;
          Builder.x b t;
          Adder_big.sub_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p ~y:ys;
          uncompute ~mbu b ~garbage:t ~ug:(fun () ->
              Adder.compare_controlled spec.q_comp b ~ctrl ~x ~y ~target:t)))

let modadd_const_big ?(mbu = false) spec b ~p ~a ~x =
  let open Mbu_bitstring in
  let n = Register.length x in
  check_modulus_big "Mod_add.modadd_const_big" ~p ~n;
  let width = max (Bitstring.length a) (Bitstring.length p) in
  if not (Bitstring.lt (Bitstring.pad a width) (Bitstring.pad p width)) then
    invalid_arg "Mod_add.modadd_const_big: need a < p";
  Builder.with_span b (span_label "modadd_const_big" ~mbu spec) @@ fun () ->
  Builder.with_ancilla b (fun high ->
      let xs = Register.extend x high in
      Adder_big.add_const spec.q_add b ~a ~y:xs;
      Builder.with_ancilla b (fun t ->
          Adder_big.compare_const spec.q_comp_const b ~a:p ~x:xs ~target:t;
          Builder.x b t;
          Adder_big.sub_const_controlled spec.c_q_sub_const b ~ctrl:t ~a:p ~y:xs;
          uncompute ~mbu b ~garbage:t ~ug:(fun () ->
              Adder_big.compare_const spec.q_comp b ~a ~x ~target:t)))
