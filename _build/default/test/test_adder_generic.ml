(* The uniform Adder interface: subtraction (theorem 2.22), generic
   controlled addition (theorem 2.9 / corollary 2.10), arithmetic by
   constants (propositions 2.16--2.20), and the comparator family
   (propositions 2.25, 2.34--2.38). Each construction is validated for every
   adder style it supports. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng

let value st reg = Sim.register_value_exn st reg

let name_of style tag = Printf.sprintf "%s-%s" (Adder.style_name style) tag

(* ------------------------------------------------------------------ *)
(* Subtraction: y <- y - x in (n+1)-bit 2's complement (definition 2.21). *)

let check_sub ~name sub n =
  for x_val = 0 to (1 lsl n) - 1 do
    for y_val = 0 to (1 lsl n) - 1 do
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      sub b ~x ~y;
      let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
      let expect = (y_val - x_val) land ((1 lsl (n + 1)) - 1) in
      Alcotest.(check int)
        (Printf.sprintf "%s n=%d y-x (x=%d y=%d)" name n x_val y_val)
        expect (value r.Sim.state y);
      Alcotest.(check int) (name ^ " x kept") x_val (value r.Sim.state x);
      Alcotest.(check bool) (name ^ " clean") true
        (Sim.wires_zero r.Sim.state ~except:[ x; y ])
    done
  done

let test_sub_all_styles () =
  List.iter
    (fun style ->
      check_sub ~name:(name_of style "sub") (fun b ~x ~y -> Adder.sub style b ~x ~y) 3)
    Adder.all_styles

let test_sub_via_complement () =
  List.iter
    (fun style ->
      check_sub
        ~name:(name_of style "sub-complement")
        (fun b ~x ~y -> Adder.sub_via_complement style b ~x ~y)
        2)
    Adder.all_styles

let test_sub_msb_is_comparison () =
  (* Proposition A.3 realized in-circuit: MSB of y - x is 1[x > y]. *)
  let n = 3 in
  for x_val = 0 to (1 lsl n) - 1 do
    for y_val = 0 to (1 lsl n) - 1 do
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder.sub Cdkpm b ~x ~y;
      let r = Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val) ] in
      let msb = (value r.Sim.state y lsr n) land 1 in
      Alcotest.(check int)
        (Printf.sprintf "msb(y-x)=1[x>y] (x=%d y=%d)" x_val y_val)
        (if x_val > y_val then 1 else 0)
        msb
    done
  done

(* ------------------------------------------------------------------ *)
(* Controlled addition: all three implementations, every style. *)

let test_controlled_impls () =
  let impls =
    [ ("native", Adder.Native); ("load-tof", Adder.Load_toffoli);
      ("load-and", Adder.Load_and_mbu) ]
  in
  List.iter
    (fun style ->
      List.iter
        (fun (iname, impl) ->
          Helpers.check_controlled_adder_exhaustive ~reps:2
            ~name:(name_of style ("cadd-" ^ iname))
            (fun b ~ctrl ~x ~y -> Adder.add_controlled ~impl style b ~ctrl ~x ~y)
            2)
        impls)
    Adder.all_styles

let test_sub_controlled () =
  let n = 2 in
  List.iter
    (fun style ->
      for ctrl_val = 0 to 1 do
        for x_val = 0 to (1 lsl n) - 1 do
          for y_val = 0 to (1 lsl n) - 1 do
            let b = Builder.create () in
            let c = Builder.fresh_register b "c" 1 in
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" (n + 1) in
            Adder.sub_controlled style b ~ctrl:(Register.get c 0) ~x ~y;
            let r =
              Sim.run_builder ~rng b
                ~inits:[ (c, ctrl_val); (x, x_val); (y, y_val) ]
            in
            let expect = (y_val - (ctrl_val * x_val)) land ((1 lsl (n + 1)) - 1) in
            Alcotest.(check int)
              (Printf.sprintf "%s c=%d x=%d y=%d" (name_of style "csub") ctrl_val
                 x_val y_val)
              expect (value r.Sim.state y)
          done
        done
      done)
    Adder.all_styles

(* ------------------------------------------------------------------ *)
(* Constants *)

let test_add_const () =
  let n = 3 in
  List.iter
    (fun style ->
      for a = 0 to (1 lsl n) - 1 do
        for v = 0 to (1 lsl n) - 1 do
          let b = Builder.create () in
          let y = Builder.fresh_register b "y" (n + 1) in
          Adder.add_const style b ~a ~y;
          let r = Sim.run_builder ~rng b ~inits:[ (y, v) ] in
          Alcotest.(check int)
            (Printf.sprintf "%s a=%d v=%d" (name_of style "addc") a v)
            (a + v) (value r.Sim.state y);
          Alcotest.(check bool)
            (name_of style "addc clean")
            true
            (Sim.wires_zero r.Sim.state ~except:[ y ])
        done
      done)
    Adder.all_styles

let test_sub_const () =
  let n = 3 in
  List.iter
    (fun style ->
      for a = 0 to (1 lsl n) - 1 do
        (* include values with a dirty MSB: the modular adder subtracts p
           from an (n+1)-bit register holding up to 2p - 2 *)
        for v = 0 to (1 lsl (n + 1)) - 1 do
          let b = Builder.create () in
          let y = Builder.fresh_register b "y" (n + 1) in
          Adder.sub_const style b ~a ~y;
          let r = Sim.run_builder ~rng b ~inits:[ (y, v) ] in
          Alcotest.(check int)
            (Printf.sprintf "%s a=%d v=%d" (name_of style "subc") a v)
            ((v - a) land ((1 lsl (n + 1)) - 1))
            (value r.Sim.state y)
        done
      done)
    Adder.all_styles

let test_const_controlled () =
  let n = 2 in
  List.iter
    (fun style ->
      for ctrl_val = 0 to 1 do
        for a = 0 to (1 lsl n) - 1 do
          for v = 0 to (1 lsl n) - 1 do
            let badd = Builder.create () in
            let c = Builder.fresh_register badd "c" 1 in
            let y = Builder.fresh_register badd "y" (n + 1) in
            Adder.add_const_controlled style badd ~ctrl:(Register.get c 0) ~a ~y;
            let r = Sim.run_builder ~rng badd ~inits:[ (c, ctrl_val); (y, v) ] in
            Alcotest.(check int)
              (Printf.sprintf "%s c=%d a=%d v=%d" (name_of style "caddc")
                 ctrl_val a v)
              (v + (ctrl_val * a))
              (value r.Sim.state y);
            let bsub = Builder.create () in
            let c = Builder.fresh_register bsub "c" 1 in
            let y = Builder.fresh_register bsub "y" (n + 1) in
            Adder.sub_const_controlled style bsub ~ctrl:(Register.get c 0) ~a ~y;
            let r = Sim.run_builder ~rng bsub ~inits:[ (c, ctrl_val); (y, v) ] in
            Alcotest.(check int)
              (Printf.sprintf "%s c=%d a=%d v=%d" (name_of style "csubc")
                 ctrl_val a v)
              ((v - (ctrl_val * a)) land ((1 lsl (n + 1)) - 1))
              (value r.Sim.state y)
          done
        done
      done)
    Adder.all_styles

(* ------------------------------------------------------------------ *)
(* Comparators *)

let test_compare_generic () =
  List.iter
    (fun style ->
      Helpers.check_comparator_exhaustive ~reps:2
        ~name:(name_of style "cmp-generic")
        (fun b ~x ~y ~target -> Adder.compare_generic style b ~x ~y ~target)
        2)
    Adder.all_styles

let check_compare_const ~name cmp n =
  for a = 0 to (1 lsl n) - 1 do
    for v = 0 to (1 lsl n) - 1 do
      for t_val = 0 to 1 do
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let t = Builder.fresh_register b "t" 1 in
        cmp b ~a ~x ~target:(Register.get t 0);
        let r = Sim.run_builder ~rng b ~inits:[ (x, v); (t, t_val) ] in
        Alcotest.(check int)
          (Printf.sprintf "%s a=%d v=%d t=%d" name a v t_val)
          (t_val lxor (if v < a then 1 else 0))
          (value r.Sim.state t);
        Alcotest.(check int) (name ^ " x kept") v (value r.Sim.state x);
        Alcotest.(check bool) (name ^ " clean") true
          (Sim.wires_zero r.Sim.state ~except:[ x; t ])
      done
    done
  done

let test_compare_const () =
  List.iter
    (fun style ->
      check_compare_const
        ~name:(name_of style "cmpc")
        (fun b ~a ~x ~target -> Adder.compare_const style b ~a ~x ~target)
        3)
    Adder.all_styles

let test_compare_const_via_sub () =
  List.iter
    (fun style ->
      check_compare_const
        ~name:(name_of style "cmpc-sub")
        (fun b ~a ~x ~target -> Adder.compare_const_via_sub style b ~a ~x ~target)
        2)
    Adder.all_styles

let test_compare_const_controlled () =
  let n = 2 in
  List.iter
    (fun style ->
      for ctrl_val = 0 to 1 do
        for a = 0 to (1 lsl n) - 1 do
          for v = 0 to (1 lsl n) - 1 do
            let b = Builder.create () in
            let c = Builder.fresh_register b "c" 1 in
            let x = Builder.fresh_register b "x" n in
            let t = Builder.fresh_register b "t" 1 in
            Adder.compare_const_controlled style b ~ctrl:(Register.get c 0) ~a ~x
              ~target:(Register.get t 0);
            let r =
              Sim.run_builder ~rng b ~inits:[ (c, ctrl_val); (x, v); (t, 0) ]
            in
            (* definition 2.37: t XOR= 1[x < c.a] *)
            let expect = if v < ctrl_val * a then 1 else 0 in
            Alcotest.(check int)
              (Printf.sprintf "%s c=%d a=%d v=%d" (name_of style "ccmpc")
                 ctrl_val a v)
              expect (value r.Sim.state t)
          done
        done
      done)
    Adder.all_styles

let test_compare_ge_const () =
  let n = 3 in
  for a = 0 to (1 lsl n) - 1 do
    let v = (a * 5 + 2) land ((1 lsl n) - 1) in
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let t = Builder.fresh_register b "t" 1 in
    Adder.compare_ge_const Cdkpm b ~a ~x ~target:(Register.get t 0);
    let r = Sim.run_builder ~rng b ~inits:[ (x, v); (t, 0) ] in
    Alcotest.(check int)
      (Printf.sprintf "ge a=%d v=%d" a v)
      (if v >= a then 1 else 0)
      (value r.Sim.state t)
  done

(* Cost sanity: corollary 2.10 beats theorem 2.9 by n Toffoli. *)
let test_controlled_impl_costs () =
  let n = 8 in
  let count impl =
    let b = Builder.create () in
    let c = Builder.fresh_register b "c" 1 in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" (n + 1) in
    Adder.add_controlled ~impl Cdkpm b ~ctrl:(Register.get c 0) ~x ~y;
    (Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b)).Counts.toffoli
  in
  let tof_load = count Adder.Load_toffoli and tof_and = count Adder.Load_and_mbu in
  Alcotest.(check (float 0.)) "thm 2.9: r + 2n" (float_of_int ((2 * n) + (2 * n))) tof_load;
  Alcotest.(check (float 0.)) "cor 2.10: r + n" (float_of_int ((2 * n) + n)) tof_and

let suite =
  ( "adder-generic",
    [ Alcotest.test_case "sub all styles" `Quick test_sub_all_styles;
      Alcotest.test_case "sub via complement (thm 2.22)" `Quick test_sub_via_complement;
      Alcotest.test_case "sub msb = comparison (prop A.3)" `Quick
        test_sub_msb_is_comparison;
      Alcotest.test_case "controlled impls (thm 2.9/cor 2.10)" `Quick
        test_controlled_impls;
      Alcotest.test_case "controlled subtraction" `Quick test_sub_controlled;
      Alcotest.test_case "add const (prop 2.16/2.17)" `Quick test_add_const;
      Alcotest.test_case "sub const" `Quick test_sub_const;
      Alcotest.test_case "controlled const (props 2.19/2.20)" `Quick
        test_const_controlled;
      Alcotest.test_case "compare generic (prop 2.25)" `Quick test_compare_generic;
      Alcotest.test_case "compare const (props 2.34/2.36)" `Quick test_compare_const;
      Alcotest.test_case "compare const via sub (thm 2.35)" `Quick
        test_compare_const_via_sub;
      Alcotest.test_case "controlled compare const (thm 2.38)" `Quick
        test_compare_const_controlled;
      Alcotest.test_case "ge comparison (remark 2.39)" `Quick test_compare_ge_const;
      Alcotest.test_case "controlled impl costs" `Quick test_controlled_impl_costs ] )
