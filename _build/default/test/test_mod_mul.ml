(* Modular multiplication / exponentiation extension, built from the paper's
   controlled constant modular adders. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let rng = Helpers.rng
let value = Sim.register_value_exn

let test_modinv () =
  Alcotest.(check int) "3^-1 mod 7" 5 (Mod_mul.modinv ~a:3 ~p:7);
  Alcotest.(check int) "1^-1 mod 5" 1 (Mod_mul.modinv ~a:1 ~p:5);
  Alcotest.(check int) "4^-1 mod 7" 2 (Mod_mul.modinv ~a:4 ~p:7);
  for a = 1 to 28 do
    if a mod 29 <> 0 then
      Alcotest.(check int)
        (Printf.sprintf "inv %d mod 29" a)
        1
        (a * Mod_mul.modinv ~a ~p:29 mod 29)
  done;
  Alcotest.check_raises "non-coprime"
    (Invalid_argument "Mod_mul.modinv: not coprime") (fun () ->
      ignore (Mod_mul.modinv ~a:6 ~p:9))

let engines =
  [ ("ripple-cdkpm+mbu", Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm);
    ("ripple-mixed", Mod_mul.ripple_engine ~mbu:false Mod_add.spec_mixed);
    ("draper+mbu", Mod_mul.draper_engine ~mbu:true ()) ]

let test_cmult_add () =
  let n = 3 and p = 7 in
  List.iter
    (fun (name, engine) ->
      for ctrl_val = 0 to 1 do
        List.iter
          (fun a ->
            for x_val = 0 to p - 1 do
              let t_val = (x_val * 3 + 1) mod p in
              let b = Builder.create () in
              let c = Builder.fresh_register b "c" 1 in
              let x = Builder.fresh_register b "x" n in
              let t = Builder.fresh_register b "t" n in
              Mod_mul.cmult_add engine b ~ctrl:(Register.get c 0) ~a ~p ~x ~target:t;
              let r =
                Sim.run_builder ~rng b
                  ~inits:[ (c, ctrl_val); (x, x_val); (t, t_val) ]
              in
              let msg = Printf.sprintf "%s c=%d a=%d x=%d t=%d" name ctrl_val a x_val t_val in
              Alcotest.(check int) msg
                ((t_val + (ctrl_val * a * x_val)) mod p)
                (value r.Sim.state t);
              Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x);
              Alcotest.(check bool) (msg ^ " clean") true
                (Sim.wires_zero r.Sim.state ~except:[ c; x; t ])
            done)
          [ 1; 3; 5 ]
      done)
    engines

let test_cmult_inplace () =
  let n = 3 and p = 7 in
  List.iter
    (fun (name, engine) ->
      for ctrl_val = 0 to 1 do
        List.iter
          (fun a ->
            for x_val = 0 to p - 1 do
              let b = Builder.create () in
              let c = Builder.fresh_register b "c" 1 in
              let x = Builder.fresh_register b "x" n in
              Mod_mul.cmult_inplace engine b ~ctrl:(Register.get c 0) ~a ~p ~x;
              let r = Sim.run_builder ~rng b ~inits:[ (c, ctrl_val); (x, x_val) ] in
              let msg = Printf.sprintf "%s c=%d a=%d x=%d" name ctrl_val a x_val in
              let expect = if ctrl_val = 1 then a * x_val mod p else x_val in
              Alcotest.(check int) msg expect (value r.Sim.state x);
              Alcotest.(check bool) (msg ^ " clean") true
                (Sim.wires_zero r.Sim.state ~except:[ c; x ])
            done)
          [ 2; 3 ]
      done)
    engines

let test_modexp () =
  let n = 3 and p = 7 and a = 3 in
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_mixed in
  for e_val = 0 to 3 do
    for x_val = 1 to p - 1 do
      let b = Builder.create () in
      let e = Builder.fresh_register b "e" 2 in
      let x = Builder.fresh_register b "x" n in
      Mod_mul.modexp engine b ~a ~p ~e ~x;
      let r = Sim.run_builder ~rng b ~inits:[ (e, e_val); (x, x_val) ] in
      let rec pow acc k = if k = 0 then acc else pow (acc * a mod p) (k - 1) in
      let msg = Printf.sprintf "modexp e=%d x=%d" e_val x_val in
      Alcotest.(check int) msg (pow x_val e_val) (value r.Sim.state x);
      Alcotest.(check int) (msg ^ " e kept") e_val (value r.Sim.state e);
      Alcotest.(check bool) (msg ^ " clean") true
        (Sim.wires_zero r.Sim.state ~except:[ e; x ])
    done
  done

(* Shor-flavoured check: modexp on a superposed exponent register gives the
   entangled sum_e |e>|a^e mod p>. *)
let test_modexp_superposition () =
  let n = 3 and p = 7 and a = 2 in
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm in
  let b = Builder.create () in
  let e = Builder.fresh_register b "e" 2 in
  let x = Builder.fresh_register b "x" n in
  Array.iter (fun q -> Builder.h b q) (Register.qubits e);
  Mod_mul.modexp engine b ~a ~p ~e ~x;
  let r = Sim.run_builder ~rng b ~inits:[ (x, 1) ] in
  let amp : Complex.t = { re = 0.5; im = 0.0 } in
  let idx e_val x_val =
    let i = ref 0 in
    for k = 0 to 1 do
      if (e_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get e k)
    done;
    for k = 0 to n - 1 do
      if (x_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get x k)
    done;
    !i
  in
  let rec pow acc k = if k = 0 then acc else pow (acc * a mod p) (k - 1) in
  let expected =
    State.of_alist ~num_qubits:(State.num_qubits r.Sim.state)
      (List.init 4 (fun e_val -> (idx e_val (pow 1 e_val), amp)))
  in
  let f = State.fidelity r.Sim.state expected in
  Alcotest.(check bool)
    (Printf.sprintf "shor-style entangled state, fidelity %.6f" f)
    true (f > 1. -. 1e-9)

(* MBU should strictly reduce the expected Toffoli count of a multiplier. *)
let test_cmult_mbu_saves () =
  let n = 6 and p = 53 and a = 29 in
  let count mbu =
    let b = Builder.create () in
    let c = Builder.fresh_register b "c" 1 in
    let x = Builder.fresh_register b "x" n in
    let t = Builder.fresh_register b "t" n in
    let engine = Mod_mul.ripple_engine ~mbu Mod_add.spec_cdkpm in
    Mod_mul.cmult_add engine b ~ctrl:(Register.get c 0) ~a ~p ~x ~target:t;
    (Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b)).Counts.toffoli
  in
  let without = count false and with_mbu = count true in
  Alcotest.(check bool)
    (Printf.sprintf "mbu multiplier cheaper (%.1f < %.1f)" with_mbu without)
    true
    (with_mbu < without)


(* Windowed multiply-accumulate (Gidney's windowed arithmetic on top of the
   paper's modular adders + QROM unlookup). *)
let test_cmult_windowed () =
  let n = 4 and p = 13 in
  List.iter
    (fun window ->
      for ctrl_val = 0 to 1 do
        List.iter
          (fun a ->
            List.iter
              (fun (x_val, t_val) ->
                let b = Builder.create () in
                let c = Builder.fresh_register b "c" 1 in
                let x = Builder.fresh_register b "x" n in
                let t = Builder.fresh_register b "t" n in
                Mod_mul.cmult_add_windowed ~window ~mbu:true Mod_add.spec_cdkpm
                  b ~ctrl:(Register.get c 0) ~a ~p ~x ~target:t;
                let r =
                  Sim.run_builder ~rng b
                    ~inits:[ (c, ctrl_val); (x, x_val); (t, t_val) ]
                in
                let msg =
                  Printf.sprintf "w=%d c=%d a=%d x=%d t=%d" window ctrl_val a
                    x_val t_val
                in
                Alcotest.(check int) msg
                  ((t_val + (ctrl_val * a * x_val)) mod p)
                  (value r.Sim.state t);
                Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x);
                Alcotest.(check bool) (msg ^ " clean") true
                  (Sim.wires_zero r.Sim.state ~except:[ c; x; t ]))
              [ (0, 0); (5, 7); (12, 12); (9, 1); (11, 6) ])
          [ 1; 5; 12 ]
      done)
    [ 1; 2; 3 ]

let test_windowed_beats_bitwise () =
  (* at moderate width the windowed ladder needs fewer Toffoli than the
     bit-at-a-time ladder *)
  let n = 16 and p = 54613 and a = 12345 in
  let tof build =
    let b = Builder.create () in
    let c = Builder.fresh_register b "c" 1 in
    let x = Builder.fresh_register b "x" n in
    let t = Builder.fresh_register b "t" n in
    build b ~ctrl:(Register.get c 0) ~x ~t;
    (Circuit.counts ~mode:(Counts.Expected 0.5) (Builder.to_circuit b)).Counts.toffoli
  in
  let bitwise =
    tof (fun b ~ctrl ~x ~t ->
        Mod_mul.cmult_add (Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm) b
          ~ctrl ~a ~p ~x ~target:t)
  in
  let windowed =
    tof (fun b ~ctrl ~x ~t ->
        Mod_mul.cmult_add_windowed ~window:4 ~mbu:true Mod_add.spec_cdkpm b
          ~ctrl ~a ~p ~x ~target:t)
  in
  Alcotest.(check bool)
    (Printf.sprintf "windowed %.0f < bitwise %.0f" windowed bitwise)
    true
    (windowed < bitwise)


(* Uncontrolled multiplication and fully quantum multiply-accumulate. *)
let test_mult_inplace () =
  let n = 3 and p = 7 in
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm in
  List.iter
    (fun a ->
      for x_val = 0 to p - 1 do
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        Mod_mul.mult_inplace engine b ~a ~p ~x;
        let r = Sim.run_builder ~rng b ~inits:[ (x, x_val) ] in
        let msg = Printf.sprintf "a=%d x=%d" a x_val in
        Alcotest.(check int) msg (a * x_val mod p) (value r.Sim.state x);
        Alcotest.(check bool) (msg ^ " clean") true
          (Sim.wires_zero r.Sim.state ~except:[ x ])
      done)
    [ 1; 2; 3; 4; 5; 6 ]

let test_mul_register () =
  let n = 3 and p = 7 in
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm in
  for x_val = 0 to p - 1 do
    for y_val = 0 to p - 1 do
      let t_val = (x_val + (2 * y_val)) mod p in
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" n in
      let t = Builder.fresh_register b "t" n in
      Mod_mul.mul_register engine b ~x ~y ~p ~target:t;
      let r =
        Sim.run_builder ~rng b ~inits:[ (x, x_val); (y, y_val); (t, t_val) ]
      in
      let msg = Printf.sprintf "x=%d y=%d t=%d" x_val y_val t_val in
      Alcotest.(check int) msg
        ((t_val + (x_val * y_val)) mod p)
        (value r.Sim.state t);
      Alcotest.(check int) (msg ^ " x kept") x_val (value r.Sim.state x);
      Alcotest.(check int) (msg ^ " y kept") y_val (value r.Sim.state y);
      Alcotest.(check bool) (msg ^ " clean") true
        (Sim.wires_zero r.Sim.state ~except:[ x; y; t ])
    done
  done

let test_mul_register_superposition () =
  (* quantum-quantum product on superposed operands stays entangled and
     phase-flat *)
  let n = 2 and p = 3 in
  let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm in
  (* superpose x over {1, 3}: H on bit 1 with bit 0 set *)
  let b2 = Builder.create () in
  let x = Builder.fresh_register b2 "x" n in
  let y = Builder.fresh_register b2 "y" n in
  let t = Builder.fresh_register b2 "t" n in
  Builder.x b2 (Register.get x 0);
  Builder.h b2 (Register.get x 1);
  Mod_mul.mul_register engine b2 ~x ~y ~p ~target:t;
  let res = Sim.run_builder ~rng b2 ~inits:[ (y, 2); (t, 0) ] in
  let amp : Complex.t = { re = 1.0 /. sqrt 2.0; im = 0.0 } in
  let idx x_val t_val =
    let i = ref 0 in
    for k = 0 to n - 1 do
      if (x_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get x k);
      if (2 lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get y k);
      if (t_val lsr k) land 1 = 1 then i := !i lor (1 lsl Register.get t k)
    done;
    !i
  in
  let expected =
    State.of_alist ~num_qubits:(State.num_qubits res.Sim.state)
      [ (idx 1 (1 * 2 mod p), amp); (idx 3 (3 * 2 mod p), amp) ]
  in
  Alcotest.(check bool) "entangled product" true
    (State.fidelity res.Sim.state expected > 1. -. 1e-9)

let suite =
  ( "mod-mul",
    [ Alcotest.test_case "modular inverse" `Quick test_modinv;
      Alcotest.test_case "controlled multiply-accumulate" `Quick test_cmult_add;
      Alcotest.test_case "in-place controlled multiplication" `Quick
        test_cmult_inplace;
      Alcotest.test_case "modular exponentiation" `Quick test_modexp;
      Alcotest.test_case "modexp on superposed exponent" `Quick
        test_modexp_superposition;
      Alcotest.test_case "mbu reduces multiplier cost" `Quick test_cmult_mbu_saves;
      Alcotest.test_case "windowed multiply (Gid19c)" `Quick test_cmult_windowed;
      Alcotest.test_case "windowed beats bitwise" `Quick test_windowed_beats_bitwise;
      Alcotest.test_case "uncontrolled in-place multiply" `Quick test_mult_inplace;
      Alcotest.test_case "register-register multiply" `Quick test_mul_register;
      Alcotest.test_case "register multiply superposition" `Quick
        test_mul_register_superposition ] )
