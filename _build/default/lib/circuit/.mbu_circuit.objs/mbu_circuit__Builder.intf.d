lib/circuit/builder.mli: Circuit Gate Instr Phase Register
