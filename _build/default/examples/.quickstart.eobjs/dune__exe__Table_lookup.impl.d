examples/table_lookup.ml: Array Builder Circuit Counts Format List Mbu_circuit Mbu_core Mbu_simulator Printf Qrom Register Sim State
