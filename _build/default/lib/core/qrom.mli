(** QROM table lookup and measurement-based unlookup.

    The paper's related-work section highlights the most dramatic use of MBU
    in the literature \[Bab+18; Gid19c\]: a table lookup over [L = 2^k]
    entries costs [~L] Toffoli, but *un*looking it up costs only
    [O(sqrt L)] — measure the target in the X basis, and fix the leftover
    data-dependent phase with a much smaller lookup that combines a one-hot
    (unary) encoding of the low address bits with a phase lookup over the
    high ones.

    [lookup] uses the standard unary-iteration tree: one temporary
    logical-AND per internal node (erased by MBU on the way out), [k - 1]
    live ancillas.

    [unlookup] implements the measurement-based uncomputation: each target
    qubit is X-measured; for every outcome-1 bit, a phase fixup
    [(-1)^{l_a\[j\]}] is applied via a [~3 sqrt L]-Toffoli one-hot/phase-
    lookup sandwich. (The literature folds all fixups into a single lookup
    of the XOR mask, which requires classically recomputing the table from
    the outcomes at run time; this implementation applies one conditional
    fixup per data bit instead — identical semantics, a factor [w/2] in the
    expected fixup cost for [w]-bit payloads, and still asymptotically
    [O(sqrt L)] per bit versus the [O(L)] naive unlookup.)

    Addresses and data are little-endian; [data] must have exactly
    [2^(length address)] entries, each fitting in [length target] bits. *)

open Mbu_circuit

val lookup :
  Builder.t -> address:Register.t -> target:Register.t -> data:int array -> unit
(** [|a>|t> -> |a>|t XOR data.(a)>] — equation (4). *)

val unlookup :
  Builder.t -> address:Register.t -> target:Register.t -> data:int array -> unit
(** Erase [|a>|data.(a)> -> |a>|0>] by measurement-based uncomputation. *)

val unlookup_via_lookup :
  Builder.t -> address:Register.t -> target:Register.t -> data:int array -> unit
(** The naive [O(L)] uncomputation (the lookup is self-inverse), kept as the
    baseline for the benchmark. *)

val phase_lookup : Builder.t -> address:Register.t -> table:bool array -> unit
(** [|a> -> (-1)^{table.(a)} |a>] with [~3 sqrt L] Toffoli — the fixup
    subroutine, exposed for reuse and testing. *)
