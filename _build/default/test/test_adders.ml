(* Correctness of the four plain adder families (section 2) against the
   classical semantics, on exhaustive small inputs, random larger inputs and
   uniform superpositions. *)

open Mbu_circuit
open Mbu_core

let vbe b ~x ~y = Adder_vbe.add b ~x ~y
let cdkpm b ~x ~y = Adder_cdkpm.add b ~x ~y
let gidney b ~x ~y = Adder_gidney.add b ~x ~y
let draper b ~x ~y = Adder_draper.add b ~x ~y

(* ------------------------------------------------------------------ *)
(* Plain adders (propositions 2.2, 2.3, 2.4, corollary 2.7) *)

let test_vbe_exhaustive () =
  List.iter (Helpers.check_adder_exhaustive ~name:"vbe" vbe) [ 1; 2; 3; 4 ]

let test_cdkpm_exhaustive () =
  List.iter (Helpers.check_adder_exhaustive ~name:"cdkpm" cdkpm) [ 1; 2; 3; 4 ]

let test_gidney_exhaustive () =
  (* reps > 1: different measurement outcomes in the AND erasures *)
  List.iter (Helpers.check_adder_exhaustive ~reps:3 ~name:"gidney" gidney) [ 1; 2; 3; 4 ]

let test_draper_exhaustive () =
  List.iter (Helpers.check_adder_exhaustive ~name:"draper" draper) [ 1; 2; 3 ]

let test_adders_random_wide () =
  Helpers.check_adder_random ~name:"vbe" vbe 9;
  Helpers.check_adder_random ~name:"cdkpm" cdkpm 11;
  Helpers.check_adder_random ~reps:2 ~name:"gidney" gidney 10;
  Helpers.check_adder_random ~cases:10 ~name:"draper" draper 6

let test_adders_superposition () =
  Helpers.check_adder_superposition ~name:"vbe" vbe 3 5;
  Helpers.check_adder_superposition ~name:"cdkpm" cdkpm 3 2;
  Helpers.check_adder_superposition ~name:"gidney" gidney 3 6;
  Helpers.check_adder_superposition ~name:"draper" draper 3 3

(* ------------------------------------------------------------------ *)
(* MAJ/UMA algebra (figures 6, 7, 9) *)

let run3 gates init =
  let b = Builder.create () in
  let r = Mbu_circuit.Builder.fresh_register b "r" 3 in
  gates b r;
  let res = Mbu_simulator.Sim.run_builder ~rng:Helpers.rng b ~inits:[ (r, init) ] in
  Mbu_simulator.Sim.register_value_exn res.Mbu_simulator.Sim.state r

let test_maj_mapping () =
  (* wires (c, y, x) at indices (0, 1, 2):
     |c,y,x> -> |c XOR x, y XOR x, maj(x,y,c)> *)
  for v = 0 to 7 do
    let c = v land 1 and y = (v lsr 1) land 1 and x = (v lsr 2) land 1 in
    let out =
      run3
        (fun b r ->
          Adder_cdkpm.maj b ~c:(Register.get r 0) ~y:(Register.get r 1)
            ~x:(Register.get r 2))
        v
    in
    let maj = if x + y + c >= 2 then 1 else 0 in
    let expect = (c lxor x) lor ((y lxor x) lsl 1) lor (maj lsl 2) in
    Alcotest.(check int) (Printf.sprintf "maj on %d" v) expect out
  done

let test_maj_uma_identity () =
  (* figure 9: MAJ then UMA maps |c, y, x> to |c, y XOR x XOR c, x>. *)
  let variants =
    [ ("uma", Adder_cdkpm.uma); ("uma3", Adder_cdkpm.uma_3cnot) ]
  in
  List.iter
    (fun (name, uma) ->
      for v = 0 to 7 do
        let c = v land 1 and y = (v lsr 1) land 1 and x = (v lsr 2) land 1 in
        let out =
          run3
            (fun b r ->
              let cq = Register.get r 0
              and yq = Register.get r 1
              and xq = Register.get r 2 in
              Adder_cdkpm.maj b ~c:cq ~y:yq ~x:xq;
              uma b ~c:cq ~y:yq ~x:xq)
            v
        in
        let expect = c lor ((y lxor x lxor c) lsl 1) lor (x lsl 2) in
        Alcotest.(check int) (Printf.sprintf "%s maj+uma on %d" name v) expect out
      done)
    variants

let test_vbe_carry_mapping () =
  (* CARRY: |c, x, y, c'> -> |c, x, y XOR x, c' XOR maj(x,y,c)> *)
  for v = 0 to 15 do
    let c = v land 1 and x = (v lsr 1) land 1 in
    let y = (v lsr 2) land 1 and c' = (v lsr 3) land 1 in
    let b = Builder.create () in
    let r = Builder.fresh_register b "r" 4 in
    Adder_vbe.carry b ~c_in:(Register.get r 0) ~x:(Register.get r 1)
      ~y:(Register.get r 2) ~c_out:(Register.get r 3);
    let res = Mbu_simulator.Sim.run_builder ~rng:Helpers.rng b ~inits:[ (r, v) ] in
    let out = Mbu_simulator.Sim.register_value_exn res.Mbu_simulator.Sim.state r in
    let maj = if x + y + c >= 2 then 1 else 0 in
    let expect = c lor (x lsl 1) lor ((y lxor x) lsl 2) lor ((c' lxor maj) lsl 3) in
    Alcotest.(check int) (Printf.sprintf "carry on %d" v) expect out
  done

(* ------------------------------------------------------------------ *)
(* Controlled adders (theorem 2.12, proposition 2.11, theorems 2.13/2.14) *)

let test_cdkpm_controlled () =
  List.iter
    (Helpers.check_controlled_adder_exhaustive ~name:"c-cdkpm"
       (fun b ~ctrl ~x ~y -> Adder_cdkpm.add_controlled b ~ctrl ~x ~y))
    [ 1; 2; 3 ]

let test_gidney_controlled () =
  List.iter
    (Helpers.check_controlled_adder_exhaustive ~reps:2 ~name:"c-gidney"
       (fun b ~ctrl ~x ~y -> Adder_gidney.add_controlled b ~ctrl ~x ~y))
    [ 1; 2; 3 ]

let test_draper_controlled () =
  List.iter
    (Helpers.check_controlled_adder_exhaustive ~reps:2 ~name:"c-draper"
       (fun b ~ctrl ~x ~y -> Adder_draper.add_controlled b ~ctrl ~x ~y))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Comparators (propositions 2.26, 2.27, 2.28) *)

let test_cdkpm_comparator () =
  List.iter
    (Helpers.check_comparator_exhaustive ~name:"cmp-cdkpm"
       (fun b ~x ~y ~target -> Adder_cdkpm.compare b ~x ~y ~target))
    [ 1; 2; 3 ]

let test_gidney_comparator () =
  List.iter
    (Helpers.check_comparator_exhaustive ~reps:2 ~name:"cmp-gidney"
       (fun b ~x ~y ~target -> Adder_gidney.compare b ~x ~y ~target))
    [ 1; 2; 3 ]

let test_vbe_comparator () =
  List.iter
    (Helpers.check_comparator_exhaustive ~name:"cmp-vbe"
       (fun b ~x ~y ~target -> Adder_vbe.compare b ~x ~y ~target))
    [ 1; 2; 3 ]

let test_draper_comparator () =
  List.iter
    (Helpers.check_comparator_exhaustive ~name:"cmp-draper"
       (fun b ~x ~y ~target -> Adder_draper.compare b ~x ~y ~target))
    [ 1; 2 ]

let test_controlled_comparators () =
  List.iter
    (Helpers.check_controlled_comparator_exhaustive ~name:"ccmp-cdkpm"
       (fun b ~ctrl ~x ~y ~target ->
         Adder_cdkpm.compare_controlled b ~ctrl ~x ~y ~target))
    [ 1; 2; 3 ];
  List.iter
    (Helpers.check_controlled_comparator_exhaustive ~reps:2 ~name:"ccmp-gidney"
       (fun b ~ctrl ~x ~y ~target ->
         Adder_gidney.compare_controlled b ~ctrl ~x ~y ~target))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Draper building blocks *)

let test_phi_add_const_roundtrip () =
  (* QFT; Phi_ADD(a); IQFT adds a (proposition 2.17). *)
  for n = 1 to 3 do
    for a = 0 to (1 lsl n) - 1 do
      for v = 0 to (1 lsl n) - 1 do
        let b = Builder.create () in
        let y = Builder.fresh_register b "y" (n + 1) in
        Adder_draper.add_const b ~a ~y;
        let r = Mbu_simulator.Sim.run_builder ~rng:Helpers.rng b ~inits:[ (y, v) ] in
        Alcotest.(check int)
          (Printf.sprintf "add_const n=%d a=%d v=%d" n a v)
          (a + v)
          (Mbu_simulator.Sim.register_value_exn r.Mbu_simulator.Sim.state y)
      done
    done
  done

let test_const_comparator_draper () =
  for n = 1 to 3 do
    for a = 0 to (1 lsl n) - 1 do
      for v = 0 to (1 lsl n) - 1 do
        let b = Builder.create () in
        let x = Builder.fresh_register b "x" n in
        let t = Builder.fresh_register b "t" 1 in
        Adder_draper.compare_const b ~a ~x ~target:(Register.get t 0);
        let r =
          Mbu_simulator.Sim.run_builder ~rng:Helpers.rng b
            ~inits:[ (x, v); (t, 0) ]
        in
        let expect = if v < a then 1 else 0 in
        Alcotest.(check int)
          (Printf.sprintf "cmp_const n=%d a=%d v=%d" n a v)
          expect
          (Mbu_simulator.Sim.register_value_exn r.Mbu_simulator.Sim.state t);
        Alcotest.(check int)
          (Printf.sprintf "cmp_const x kept n=%d a=%d v=%d" n a v)
          v
          (Mbu_simulator.Sim.register_value_exn r.Mbu_simulator.Sim.state x)
      done
    done
  done

let test_add_const_controlled_draper () =
  let n = 3 in
  for ctrl_val = 0 to 1 do
    for a = 0 to (1 lsl n) - 1 do
      let v = (a * 3 + 1) land ((1 lsl n) - 1) in
      let b = Builder.create () in
      let c = Builder.fresh_register b "c" 1 in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder_draper.add_const_controlled b ~ctrl:(Register.get c 0) ~a ~y;
      let r =
        Mbu_simulator.Sim.run_builder ~rng:Helpers.rng b
          ~inits:[ (c, ctrl_val); (y, v) ]
      in
      Alcotest.(check int)
        (Printf.sprintf "c-add_const c=%d a=%d v=%d" ctrl_val a v)
        (v + (ctrl_val * a))
        (Mbu_simulator.Sim.register_value_exn r.Mbu_simulator.Sim.state y)
    done
  done

(* Gate-count spot checks against table 2's leading terms. *)

let counts_of_adder build n =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" (n + 1) in
  build b ~x ~y;
  (Circuit.counts ~mode:Counts.Worst (Builder.to_circuit b), Builder.ancilla_qubits b)

let test_table2_counts () =
  let n = 16 in
  let fn = float_of_int n in
  let vbe_c, vbe_a = counts_of_adder vbe n in
  Alcotest.(check (float 0.))
    "vbe toffoli 4n-2" ((4. *. fn) -. 2.) vbe_c.Counts.toffoli;
  Alcotest.(check int) "vbe ancillas n" n vbe_a;
  let cdkpm_c, cdkpm_a = counts_of_adder cdkpm n in
  Alcotest.(check (float 0.)) "cdkpm toffoli 2n" (2. *. fn) cdkpm_c.Counts.toffoli;
  Alcotest.(check (float 0.))
    "cdkpm cnot 4n+1" ((4. *. fn) +. 1.) cdkpm_c.Counts.cnot;
  Alcotest.(check int) "cdkpm ancillas 1" 1 cdkpm_a;
  let gid_c, gid_a = counts_of_adder gidney n in
  Alcotest.(check (float 0.)) "gidney toffoli n" fn gid_c.Counts.toffoli;
  Alcotest.(check int) "gidney ancillas n-1" (n - 1) gid_a;
  let dra_c, dra_a = counts_of_adder draper n in
  Alcotest.(check int) "draper ancillas 0" 0 dra_a;
  (* cost bounded by 3 QFT_{n+1} (corollary 2.7) *)
  let units = Counts.qft_units ~m:(n + 1) dra_c in
  Alcotest.(check bool) "draper <= 3 QFT units" true (units <= 3.000001)

let suite =
  ( "adders",
    [ Alcotest.test_case "vbe exhaustive" `Quick test_vbe_exhaustive;
      Alcotest.test_case "cdkpm exhaustive" `Quick test_cdkpm_exhaustive;
      Alcotest.test_case "gidney exhaustive" `Quick test_gidney_exhaustive;
      Alcotest.test_case "draper exhaustive" `Quick test_draper_exhaustive;
      Alcotest.test_case "random wide" `Quick test_adders_random_wide;
      Alcotest.test_case "superposition inputs" `Quick test_adders_superposition;
      Alcotest.test_case "maj truth table" `Quick test_maj_mapping;
      Alcotest.test_case "maj+uma identity" `Quick test_maj_uma_identity;
      Alcotest.test_case "vbe carry gate" `Quick test_vbe_carry_mapping;
      Alcotest.test_case "cdkpm controlled" `Quick test_cdkpm_controlled;
      Alcotest.test_case "gidney controlled" `Quick test_gidney_controlled;
      Alcotest.test_case "draper controlled" `Quick test_draper_controlled;
      Alcotest.test_case "cdkpm comparator" `Quick test_cdkpm_comparator;
      Alcotest.test_case "gidney comparator" `Quick test_gidney_comparator;
      Alcotest.test_case "vbe comparator" `Quick test_vbe_comparator;
      Alcotest.test_case "draper comparator" `Quick test_draper_comparator;
      Alcotest.test_case "controlled comparators" `Quick test_controlled_comparators;
      Alcotest.test_case "draper constant add" `Quick test_phi_add_const_roundtrip;
      Alcotest.test_case "draper constant comparator" `Quick
        test_const_comparator_draper;
      Alcotest.test_case "draper controlled constant add" `Quick
        test_add_const_controlled_draper;
      Alcotest.test_case "table 2 gate counts" `Quick test_table2_counts ] )
