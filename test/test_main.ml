let () =
  Alcotest.run "mbu"
    [ Test_bitstring.suite; Test_circuit.suite; Test_simulator.suite;
      Test_adders.suite; Test_adder_generic.suite; Test_mod_add.suite;
      Test_mod_mul.suite; Test_resources.suite; Test_optimize.suite;
      Test_qasm.suite; Test_increment.suite; Test_qrom.suite;
      Test_decompose.suite; Test_properties.suite; Test_pebble.suite; Test_aqft.suite; Test_cla.suite; Test_mod_extras.suite; Test_draw.suite;
      Test_builder_edge.suite; Test_failure_injection.suite; Test_ft_estimate.suite; Test_mcx.suite; Test_unitary.suite; Test_divider.suite; Test_montgomery.suite; Test_coset.suite; Test_big_constants.suite; Test_trace.suite;
      Test_backends.suite; Test_dag.suite; Test_robustness.suite;
      Test_lint.suite; Test_telemetry.suite ]
