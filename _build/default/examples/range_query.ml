(* Range queries with the two-sided comparator (theorem 4.13).

   The paper's final application: an oracle that checks y < x < z between
   quantum registers — the building block of range-membership oracles in
   Grover-style searches and quantum walk filters. MBU erases the
   intermediate one-sided comparison for half price.

     dune exec examples/range_query.exe *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let n = 4

let () =
  print_endline "=== Range oracle |x,y,z,t> -> |x,y,z, t XOR [x in (y,z)]> ===";
  let cases = [ (5, 2, 9); (2, 2, 9); (9, 2, 9); (7, 3, 8); (1, 3, 8) ] in
  List.iter
    (fun (x_val, y_val, z_val) ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" n in
      let z = Builder.fresh_register b "z" n in
      let t = Builder.fresh_register b "t" 1 in
      Mbu.in_range ~mbu:true Adder.Cdkpm b ~x ~y ~z ~target:(Register.get t 0);
      let r =
        Sim.run_builder b ~inits:[ (x, x_val); (y, y_val); (z, z_val); (t, 0) ]
      in
      Printf.printf "  x=%2d in (%d, %d)?  ->  %d\n" x_val y_val z_val
        (Sim.register_value_exn r.Sim.state t))
    cases;
  print_newline ()

let () =
  print_endline "=== A superposed query: mark all x in (3, 10) at once ===";
  (* Grover-oracle style: t starts in |->; amplitudes of in-range x flip
     sign. Here we just write the flag bit and inspect the entangled state. *)
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  let z = Builder.fresh_register b "z" n in
  let t = Builder.fresh_register b "t" 1 in
  Array.iter (fun q -> Builder.h b q) (Register.qubits x);
  Mbu.in_range ~mbu:true Adder.Cdkpm b ~x ~y ~z ~target:(Register.get t 0);
  let r = Sim.run_builder b ~inits:[ (y, 3); (z, 10); (t, 0) ] in
  let marked = ref 0 and unmarked = ref 0 in
  List.iter
    (fun (idx, _) ->
      if (idx lsr Register.get t 0) land 1 = 1 then incr marked else incr unmarked)
    (State.to_alist r.Sim.state);
  Printf.printf "  of 16 superposed x values: %d marked, %d unmarked\n"
    !marked !unmarked;
  Printf.printf "  (expected: the 6 values 4..9 marked)\n\n"

let () =
  print_endline "=== Cost of the range oracle, with and without MBU ===";
  Printf.printf "  %4s | %9s %9s | %9s %9s | %s\n" "n" "Tof" "Tof+MBU" "TofDepth"
    "TD+MBU" "paper (thm 4.13)";
  List.iter
    (fun n ->
      let measure mbu =
        Resources.measure ~n
          ~build:(fun b ->
            let x = Builder.fresh_register b "x" n in
            let y = Builder.fresh_register b "y" n in
            let z = Builder.fresh_register b "z" n in
            let t = Builder.fresh_register b "t" 1 in
            Mbu.in_range ~mbu Adder.Cdkpm b ~x ~y ~z ~target:(Register.get t 0))
          ()
      in
      let plain = measure false and mbu = measure true in
      let params = Formulas.{ n; hp = 0; ha = 0 } in
      let fp = (Formulas.in_range ~mbu:false params).Formulas.toffoli in
      let fm = (Formulas.in_range ~mbu:true params).Formulas.toffoli in
      Printf.printf "  %4d | %9.1f %9.1f | %9.1f %9.1f | %.0f vs %.1f\n" n
        plain.Resources.toffoli mbu.Resources.toffoli
        plain.Resources.toffoli_depth mbu.Resources.toffoli_depth fp fm)
    [ 4; 8; 16; 32 ];
  print_endline
    "\n  The erased comparator is half of the 2 r_COMP share: a quarter of\n\
    \  the comparator cost disappears in expectation (the paper's ~25%)."
