test/test_decompose.ml: Adder Adder_gidney Alcotest Builder Circuit Counts Decompose Instr List Mbu_circuit Mbu_core Mbu_simulator Phase Printf Random Register Sim State
