type t =
  | Gate of Gate.t
  | Measure of { qubit : Gate.qubit; bit : int; reset : bool }
  | If_bit of { bit : int; value : bool; body : t list }
  | Span of { label : string; peak_ancillas : int; body : t list }

let rec adjoint instrs =
  let adj_one = function
    | Gate g -> Gate (Gate.adjoint g)
    | Span { label; peak_ancillas; body } ->
        Span { label; peak_ancillas; body = adjoint body }
    | Measure _ | If_bit _ ->
        invalid_arg "Instr.adjoint: circuit contains a measurement"
  in
  List.rev_map adj_one instrs

let rec iter_gates f = function
  | [] -> ()
  | Gate g :: rest ->
      f g;
      iter_gates f rest
  | Measure _ :: rest -> iter_gates f rest
  | (If_bit { body; _ } | Span { body; _ }) :: rest ->
      iter_gates f body;
      iter_gates f rest

let rec fold_instrs f acc = function
  | [] -> acc
  | (Gate _ as i) :: rest | (Measure _ as i) :: rest -> fold_instrs f (f acc i) rest
  | ((If_bit { body; _ } | Span { body; _ }) as i) :: rest ->
      fold_instrs f (fold_instrs f (f acc i) body) rest

let max_qubit instrs =
  fold_instrs
    (fun acc i ->
      match i with
      | Gate g -> List.fold_left max acc (Gate.qubits g)
      | Measure { qubit; _ } -> max acc qubit
      | If_bit _ | Span _ -> acc)
    (-1) instrs

let max_bit instrs =
  fold_instrs
    (fun acc i ->
      match i with
      | Gate _ -> acc
      | Measure { bit; _ } -> max acc bit
      | If_bit { bit; _ } -> max acc bit
      | Span _ -> acc)
    (-1) instrs

(* Spans are weightless bookkeeping: they never count as instructions. *)
let count_instrs instrs =
  fold_instrs (fun acc i -> match i with Span _ -> acc | _ -> acc + 1) 0 instrs

let count_spans instrs =
  fold_instrs (fun acc i -> match i with Span _ -> acc + 1 | _ -> acc) 0 instrs

let rec strip_spans = function
  | [] -> []
  | Span { body; _ } :: rest -> strip_spans body @ strip_spans rest
  | If_bit { bit; value; body } :: rest ->
      If_bit { bit; value; body = strip_spans body } :: strip_spans rest
  | ((Gate _ | Measure _) as i) :: rest -> i :: strip_spans rest

let rec pp fmt = function
  | Gate g -> Gate.pp fmt g
  | Measure { qubit; bit; reset } ->
      Format.fprintf fmt "M%s %d -> c%d" (if reset then "r" else "") qubit bit
  | If_bit { bit; value; body } ->
      Format.fprintf fmt "@[<v 2>if c%d = %b {%a}@]" bit value
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp)
        body
  | Span { label; body; _ } ->
      Format.fprintf fmt "@[<v 2>span %S {%a}@]" label
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp)
        body
