(* Builder and register edge cases: allocation discipline, misuse errors. *)

open Mbu_circuit

(* Builder misuse now raises the structured [Mbu_error.Error] with the
   offending wire attached, not a bare [Invalid_argument]. *)
let check_mbu_error name ~subsystem ?qubit f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Mbu_error.Error")
  | exception Mbu_error.Error e ->
      Alcotest.(check string) (name ^ " subsystem") subsystem e.Mbu_error.subsystem;
      (match qubit with
      | None -> ()
      | Some q ->
          Alcotest.(check (option int)) (name ^ " qubit") (Some q)
            e.Mbu_error.qubit)

let test_double_free_rejected () =
  let b = Builder.create () in
  let a = Builder.alloc_ancilla b in
  Builder.free_ancilla b a;
  check_mbu_error "double free" ~subsystem:"Builder.free_ancilla" ~qubit:a
    (fun () -> Builder.free_ancilla b a)

let test_inputs_before_ancillas () =
  let b = Builder.create () in
  let _a = Builder.alloc_ancilla b in
  check_mbu_error "input after ancilla" ~subsystem:"Builder.fresh_qubit"
    (fun () -> ignore (Builder.fresh_qubit b))

let test_unbalanced_capture () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  (* leak a capture frame on purpose via an exception *)
  (try
     ignore
       (Builder.capture b (fun () ->
            Builder.x b q;
            failwith "boom"))
   with Failure _ -> ());
  (* the frame was popped by the exception handler, so the builder is
     still usable *)
  Builder.x b q;
  let c = Builder.to_circuit b in
  Alcotest.(check int) "only the post-exception gate" 1 (Circuit.num_gates c)

let test_register_pool_reuse_order () =
  let b = Builder.create () in
  let r = Builder.alloc_ancilla_register b "a" 3 in
  let wires = Register.qubits r in
  Builder.free_ancilla_register b r;
  let r2 = Builder.alloc_ancilla_register b "b" 3 in
  Alcotest.(check bool) "register wires reused" true
    (Register.qubits r2 = wires);
  Builder.free_ancilla_register b r2;
  Alcotest.(check int) "no growth" 3 (Builder.num_qubits b)

let test_register_sub_append () =
  let b = Builder.create () in
  let r = Builder.fresh_register b "r" 6 in
  let lo = Register.sub r ~pos:0 ~len:3 and hi = Register.sub r ~pos:3 ~len:3 in
  let back = Register.append lo hi in
  Alcotest.(check bool) "append restores wires" true
    (Register.qubits back = Register.qubits r);
  Alcotest.check_raises "sub out of bounds" (Invalid_argument "Array.sub")
    (fun () -> ignore (Register.sub r ~pos:4 ~len:4))

let test_emit_adjoint_rejects_measurement () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Alcotest.check_raises "adjoint of measuring block"
    (Invalid_argument "Instr.adjoint: circuit contains a measurement")
    (fun () ->
      Builder.emit_adjoint b (fun () ->
          Builder.h b q;
          ignore (Builder.measure b q)))

let test_builder_gate_validation () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Alcotest.check_raises "self-controlled cnot"
    (Invalid_argument "Gate: repeated wire") (fun () ->
      Builder.cnot b ~control:q ~target:q)

let suite =
  ( "builder-edge",
    [ Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
      Alcotest.test_case "inputs before ancillas" `Quick test_inputs_before_ancillas;
      Alcotest.test_case "capture unwinds on exception" `Quick test_unbalanced_capture;
      Alcotest.test_case "ancilla register pool reuse" `Quick
        test_register_pool_reuse_order;
      Alcotest.test_case "register sub/append" `Quick test_register_sub_append;
      Alcotest.test_case "adjoint rejects measurement" `Quick
        test_emit_adjoint_rejects_measurement;
      Alcotest.test_case "gate validation at emit" `Quick
        test_builder_gate_validation ] )
