(** Increment gates (remark 2.23's "increment by one" \[Gid15\]).

    [y <- y + 1 mod 2^m] via a prefix-AND carry ladder: carry [c_{i+1}] is
    the AND of all bits below [i+1], computed with one temporary logical-AND
    per position and erased on the way down by measurement-based
    uncomputation — [m - 2] Toffoli in total, against the [2m] of a generic
    constant adder. Decrement conjugates the increment with complements
    ([NOT (NOT v + 1) = v - 1]), which also sidesteps the non-invertibility
    of the measurement-based ladder (remark 2.23). *)

open Mbu_circuit

val apply : Builder.t -> Register.t -> unit
(** [y <- y + 1 mod 2^m]. *)

val apply_decrement : Builder.t -> Register.t -> unit
(** [y <- y - 1 mod 2^m]. *)

val apply_controlled : Builder.t -> ctrl:Gate.qubit -> Register.t -> unit
(** [y <- y + ctrl mod 2^m]; [m - 1] Toffoli. *)

val apply_decrement_controlled : Builder.t -> ctrl:Gate.qubit -> Register.t -> unit
