examples/cryptanalysis.ml: Array Builder List Mbu_circuit Mbu_core Mbu_simulator Mod_add Mod_mul Printf Register Resources Sim State String
