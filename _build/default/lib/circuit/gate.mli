(** The gate set used by the paper's circuits.

    Qubits are identified by non-negative integers (wire indices). The set
    covers everything appearing in figures 3--25: Pauli X/Z, Hadamard, CNOT,
    CZ, SWAP, Toffoli, and (controlled) dyadic phase rotations [C-R(theta_k)]
    for the QFT-based constructions. [S] and [T] gates are expressible as
    [Phase] gates with angles [theta_2] and [theta_3]. *)

type qubit = int

type t =
  | X of qubit
  | Z of qubit
  | H of qubit
  | Phase of qubit * Phase.t  (** [diag (1, e^{i theta})] on one qubit. *)
  | Cnot of { control : qubit; target : qubit }
  | Cz of qubit * qubit  (** Symmetric. *)
  | Swap of qubit * qubit
  | Toffoli of { c1 : qubit; c2 : qubit; target : qubit }
  | Cphase of { control : qubit; target : qubit; phase : Phase.t }
      (** The controlled rotation [C_i-R_j(theta)] of figure 3; symmetric in
          control and target. *)

val qubits : t -> qubit list
(** The distinct wires the gate touches. *)

val adjoint : t -> t
(** Every gate in the set is either self-adjoint or has its adjoint in the
    set ([Phase]/[Cphase] negate their angle). *)

val map_qubits : (qubit -> qubit) -> t -> t

val validate : t -> unit
(** Raises [Invalid_argument] if the gate touches a negative wire or reuses
    the same wire twice (e.g. a CNOT with control = target). *)

val is_toffoli : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
