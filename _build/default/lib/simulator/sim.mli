(** Circuit execution.

    Runs an adaptive circuit (gates, measurements, classically controlled
    blocks) against a {!State.t}, drawing measurement outcomes from an RNG.
    Besides the final state it reports the classical outcome bits and the
    gate counts that were {e actually executed} — conditional blocks counted
    only when taken — which is what the Monte-Carlo validation of the
    paper's "in expectation" costs averages over. *)

open Mbu_circuit

type run = {
  state : State.t;
  bits : bool array;  (** classical bits, indexed by measurement bit id *)
  executed : Counts.t;  (** gates actually executed in this run *)
}

val run : ?rng:Random.State.t -> Circuit.t -> init:State.t -> run
(** [rng] defaults to a fixed-seed generator (deterministic tests). *)

val init_registers : num_qubits:int -> (Register.t * int) list -> State.t
(** Basis state with each register holding the given unsigned value (LSB
    first); unlisted wires start at |0>. Raises [Invalid_argument] if a value
    does not fit its register. *)

val run_builder :
  ?rng:Random.State.t -> Builder.t -> inits:(Register.t * int) list -> run
(** Convert the builder to a circuit and run it on a basis initialization. *)

val register_value : State.t -> Register.t -> int option
(** The register's value if it is definite across the whole superposition. *)

val register_value_exn : State.t -> Register.t -> int

val wires_zero : State.t -> except:Register.t list -> bool
(** True when every wire outside the given registers is definitely |0> —
    the "all ancillas correctly uncomputed" check. *)

val sample_register :
  ?rng:Random.State.t ->
  shots:int -> Mbu_circuit.Circuit.t -> init:State.t -> Mbu_circuit.Register.t ->
  (int * int) list
(** Run the circuit [shots] times and, for each run, sample the register in
    the computational basis from the final state; returns
    (value, occurrences) sorted by decreasing count. *)

val unitary_column : Circuit.t -> int -> State.t
(** [unitary_column c j] is [U |j>] for a measurement-free circuit — column
    [j] of the circuit unitary. Raises [Invalid_argument] on adaptive
    circuits. Useful for exact unitary-equality tests on small widths. *)

val circuits_equal_unitary : ?dim_qubits:int -> Circuit.t -> Circuit.t -> bool
(** Exact unitary equality up to global phase, checked column by column
    (fidelity 1 on every basis input {e and} matching relative phases via a
    shared reference column). Only for measurement-free circuits of small
    width ([dim_qubits] defaults to the wider circuit). *)
