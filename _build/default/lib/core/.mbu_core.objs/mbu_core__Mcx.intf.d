lib/core/mcx.mli: Builder Gate Mbu_circuit
