(* Invariant linter: clean on every catalogue circuit, and each check fires
   on a minimal seeded regression. *)

open Mbu_circuit
open Mbu_robustness

let n = 4
let p = 11

let find_check rep name =
  List.filter (fun (f : Lint.finding) -> f.Lint.check = name)
    rep.Lint.findings

(* Every Table-1 catalogue circuit — MBU conditionals, Gidney erasures,
   comparator ancillas and all — must lint clean. *)
let test_catalogue_clean () =
  List.iter
    (fun (e : Catalogue.entry) ->
      let rep = Catalogue.lint (e.Catalogue.make ~n ~p) in
      if not (Lint.is_clean rep) then
        Alcotest.fail
          (Printf.sprintf "%s should lint clean:\n%s" e.Catalogue.name
             (Lint.to_string rep)))
    Catalogue.all

(* Seeded regression: an ancilla set to |1> and never uncomputed is a
   definite leak the abstract interpretation must flag. *)
let test_ancilla_leak_flagged () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 2 in
  let a = Builder.alloc_ancilla b in
  Builder.cnot b ~control:(Register.get x 0) ~target:a;
  Builder.x b a;
  (* a is now Top (control unknown), no definite leak... *)
  let rep_top = Lint.check ~input_qubits:2 (Builder.to_circuit b) in
  Alcotest.(check bool) "data-dependent ancilla not flagged" true
    (Lint.is_clean rep_top);
  (* ...but a provable |1> is. *)
  let b2 = Builder.create () in
  let x2 = Builder.fresh_register b2 "x" 2 in
  let a2 = Builder.alloc_ancilla b2 in
  Builder.cnot b2 ~control:(Register.get x2 0) ~target:(Register.get x2 1);
  Builder.x b2 a2;
  let rep = Lint.check ~input_qubits:2 (Builder.to_circuit b2) in
  Alcotest.(check bool) "leak is an error" false (Lint.is_clean rep);
  (match Lint.errors rep with
  | [ f ] ->
      Alcotest.(check string) "check id" "ancilla-leak" f.Lint.check;
      Alcotest.(check (option int)) "offending wire" (Some a2) f.Lint.qubit
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one error, got %d" (List.length fs)));
  (* the default input_qubits (all wires are inputs) disables the check *)
  Alcotest.(check bool) "no ancillas, no leak check" true
    (Lint.is_clean (Lint.check (Builder.to_circuit b2)))

(* A conditional keyed on a classical bit no measurement ever wrote. *)
let test_unwritten_bit_flagged () =
  let instrs =
    [ Instr.Gate (Gate.X 0);
      Instr.If_bit { bit = 3; value = true; body = [ Instr.Gate (Gate.X 0) ] } ]
  in
  let rep = Lint.check_instrs ~num_qubits:1 ~num_bits:4 instrs in
  match find_check rep "unwritten-bit" with
  | [ f ] ->
      Alcotest.(check bool) "error severity" true (f.Lint.severity = Lint.Error);
      Alcotest.(check (option int)) "offending bit" (Some 3) f.Lint.bit
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected one unwritten-bit finding, got %d"
           (List.length fs))

(* Wire / bit indices outside the declared widths (only reachable through
   raw instruction lists — [Circuit.make] validates). *)
let test_escapes_flagged () =
  let instrs =
    [ Instr.Gate (Gate.X 5);
      Instr.Measure { qubit = 0; bit = 9; reset = false } ]
  in
  let rep = Lint.check_instrs ~num_qubits:2 ~num_bits:1 instrs in
  Alcotest.(check bool) "escapes are errors" false (Lint.is_clean rep);
  Alcotest.(check int) "wire escape found" 1
    (List.length (find_check rep "wire-escape"));
  Alcotest.(check int) "bit escape found" 1
    (List.length (find_check rep "bit-escape"))

(* Reusing a measured-and-not-reset wire outside the conditional that
   consumes its outcome: a warning, not an error. *)
let test_use_after_measure_warned () =
  let b = Builder.create () in
  let q = Builder.fresh_qubit b in
  Builder.h b q;
  ignore (Builder.measure b q);
  Builder.x b q;
  let rep = Lint.check (Builder.to_circuit b) in
  Alcotest.(check bool) "warnings keep the report clean" true
    (Lint.is_clean rep);
  (match find_check rep "use-after-measure" with
  | [ f ] ->
      Alcotest.(check bool) "warning severity" true
        (f.Lint.severity = Lint.Warning)
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected one use-after-measure warning, got %d"
           (List.length fs)));
  (* the same reuse inside the correction block keyed on the outcome is the
     MBU idiom and stays silent *)
  let b2 = Builder.create () in
  let q2 = Builder.fresh_qubit b2 in
  Builder.h b2 q2;
  let bit = Builder.measure b2 q2 in
  Builder.if_bit b2 bit (fun () -> Builder.x b2 q2);
  let rep2 = Lint.check (Builder.to_circuit b2) in
  Alcotest.(check int) "correction-block reuse not warned" 0
    (List.length (find_check rep2 "use-after-measure"))

let suite =
  ( "lint",
    [ Alcotest.test_case "catalogue lints clean" `Quick test_catalogue_clean;
      Alcotest.test_case "ancilla leak flagged" `Quick
        test_ancilla_leak_flagged;
      Alcotest.test_case "unwritten bit flagged" `Quick
        test_unwritten_bit_flagged;
      Alcotest.test_case "index escapes flagged" `Quick test_escapes_flagged;
      Alcotest.test_case "use-after-measure warned" `Quick
        test_use_after_measure_warned ] )
