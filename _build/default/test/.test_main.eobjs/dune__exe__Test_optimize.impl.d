test/test_optimize.ml: Adder Alcotest Builder Circuit Counts Gate Instr List Mbu_circuit Mbu_core Mbu_simulator Mod_add Optimize Phase Printf Qft Random Register Sim State
