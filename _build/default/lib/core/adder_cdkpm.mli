(** The Cuccaro–Draper–Kutin–Petrie-Moulton ripple-carry adder
    (proposition 2.3, figures 6--9) and its derived circuits.

    Register conventions as in {!Adder_vbe}: [x] has [n] qubits and is
    restored; [y] has [n+1] qubits (MSB initially |0>) and receives the sum.

    Resources: 1 ancilla and [2n] Toffoli for the plain adder; 1 ancilla and
    [3n + 1] Toffoli for the controlled adder (theorem 2.12 quotes 3n); 1
    ancilla and [2n] Toffoli for the comparator (proposition 2.27). *)

open Mbu_circuit

val maj : Builder.t -> c:Gate.qubit -> y:Gate.qubit -> x:Gate.qubit -> unit
(** Figure 6: [|c, y, x> -> |c XOR x, y XOR x, maj (x, y, c)>]. *)

val uma : Builder.t -> c:Gate.qubit -> y:Gate.qubit -> x:Gate.qubit -> unit
(** Figure 7 (2-CNOT version); [maj] then [uma] on the same wires yields
    [|c, y XOR x XOR c, x>] (figure 9). *)

val uma_3cnot : Builder.t -> c:Gate.qubit -> y:Gate.qubit -> x:Gate.qubit -> unit
(** The 3-CNOT variant of figure 7 — same unitary action within the adder,
    one more CNOT but allows a shallower pipeline; provided for the depth
    ablation. *)

val c_uma :
  Builder.t ->
  ctrl:Gate.qubit -> c:Gate.qubit -> y:Gate.qubit -> x:Gate.qubit -> unit
(** Controlled unmajority (figure 16): after [maj], applies the sum to [y]
    only when [ctrl] is set, restoring [y] otherwise. Two Toffoli. *)

val add : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Proposition 2.3. *)

val add_controlled :
  Builder.t -> ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> unit
(** Theorem 2.12: controlled addition with a single ancilla, via C-UMA. *)

val compare :
  Builder.t -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** Proposition 2.27 (figure 21): [target XOR= 1\[x > y\]] with half a
    subtractor. [x] and [y] have equal length and are restored. *)

val compare_controlled :
  Builder.t ->
  ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** Proposition 2.30: [target XOR= ctrl AND 1\[x > y\]]; the copy-out CNOT
    becomes a Toffoli ([2n + 1] Toffoli total, no extra ancilla). *)

val add_mod : Builder.t -> x:Register.t -> y:Register.t -> unit
(** Equal-length addition modulo [2^m] (no overflow qubit):
    [y <- (x + y) mod 2^m]. Saves the top MAJ/UMA pair. *)

val add_3cnot : Builder.t -> x:Register.t -> y:Register.t -> unit
(** The adder with the 3-CNOT UMA variant of figure 7 — one extra CNOT per
    bit but a shorter critical path through the carry wire, kept for the
    depth ablation. *)
