(** The uniform arithmetic-circuit interface over the four adder families,
    together with the paper's generic constructions (sections 2.1--2.5):
    controlled addition by load/unload, addition/subtraction by a constant,
    subtraction via complements, and the comparator family.

    Register conventions: addition targets are [(n+1)]-qubit registers whose
    most significant qubit starts at |0> (definition 2.1); comparators take
    equal-length registers and a single target qubit. Classical constants are
    non-negative OCaml [int]s that must fit the register they are combined
    with. *)

open Mbu_circuit

type style = Vbe | Cdkpm | Gidney | Draper

val all_styles : style list
val style_name : style -> string

(** {1 Plain addition and subtraction} *)

val add : style -> Builder.t -> x:Register.t -> y:Register.t -> unit
(** [y <- x + y] (definition 2.1); [length y = length x + 1]. *)

val sub : style -> Builder.t -> x:Register.t -> y:Register.t -> unit
(** [y <- y - x] modulo [2^(n+1)], in 2's complement (definition 2.21):
    the adjoint adder for the unitary families, and theorem 2.22's
    complement construction for Gidney (whose adder is not invertible,
    remark 2.23). *)

val sub_via_complement : style -> Builder.t -> x:Register.t -> y:Register.t -> unit
(** Circuit (8) of theorem 2.22 explicitly, for any style. *)

(** {1 Controlled addition (section 2.1)} *)

type controlled_impl =
  | Native  (** theorem 2.12 / proposition 2.11 / theorem 2.14 per style *)
  | Load_toffoli  (** theorem 2.9: load [c.x] with [n] Toffoli, unload with [n] more *)
  | Load_and_mbu  (** corollary 2.10: load with [n] logical-ANDs, unload by MBU *)

val add_controlled :
  ?impl:controlled_impl ->
  style -> Builder.t -> ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> unit
(** [y <- y + ctrl.x] (definition 2.8). [Native] (the default) falls back to
    [Load_and_mbu] for VBE, which has no bespoke controlled adder. *)

val sub_controlled :
  style -> Builder.t -> ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> unit
(** [y <- y - ctrl.x] modulo [2^(n+1)]. *)

(** {1 Arithmetic by classical constants (sections 2.2--2.3)} *)

val add_const : style -> Builder.t -> a:int -> y:Register.t -> unit
(** [y <- y + a] (definition 2.15, proposition 2.16 / 2.17). [y] has [n+1]
    qubits (MSB initially 0) and [0 <= a < 2^n]. *)

val sub_const : style -> Builder.t -> a:int -> y:Register.t -> unit
(** [y <- y - a] modulo [2^(n+1)] on the whole [(n+1)]-qubit register. *)

val add_const_controlled :
  style -> Builder.t -> ctrl:Gate.qubit -> a:int -> y:Register.t -> unit
(** [y <- y + ctrl.a] (definition 2.18, propositions 2.19 / 2.20). *)

val sub_const_controlled :
  style -> Builder.t -> ctrl:Gate.qubit -> a:int -> y:Register.t -> unit

(** {1 Comparators (section 2.5)} *)

val compare : style -> Builder.t -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** [target XOR= 1\[x > y\]] (definition 2.24), native per family
    (propositions 2.26 / 2.27 / 2.28, VBE carry-chain). *)

val compare_generic :
  style -> Builder.t -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** Proposition 2.25: comparator from a full subtractor and adder, for any
    style — twice the cost of the native half-subtractor comparators, kept
    for the ablation benchmarks. *)

val compare_controlled :
  style -> Builder.t ->
  ctrl:Gate.qubit -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** [target XOR= ctrl AND 1\[x > y\]] (definition 2.29, propositions
    2.30 / 2.31). *)

val compare_const :
  style -> Builder.t -> a:int -> x:Register.t -> target:Gate.qubit -> unit
(** [target XOR= 1\[x < a\]] (definition 2.33): proposition 2.34 (load [a],
    compare) for the ripple families, proposition 2.36 for Draper.
    [0 <= a < 2^(length x)]. *)

val compare_const_via_sub :
  style -> Builder.t -> a:int -> x:Register.t -> target:Gate.qubit -> unit
(** Theorem 2.35: comparator by constant from a constant subtractor and a
    constant adder, reading the sign qubit in between. *)

val compare_const_controlled :
  style -> Builder.t ->
  ctrl:Gate.qubit -> a:int -> x:Register.t -> target:Gate.qubit -> unit
(** [target XOR= 1\[x < ctrl.a\]] (definition 2.37, theorem 2.38). *)

val compare_ge_const :
  style -> Builder.t -> a:int -> x:Register.t -> target:Gate.qubit -> unit
(** [target XOR= 1\[x >= a\]] — remark 2.39's postcomposed X. *)

(** {1 Constant loading helpers} *)

val load_const : Builder.t -> a:int -> Register.t -> unit
(** [|a|] X gates, one per set bit (used by propositions 2.16 / 2.34). *)

val load_const_controlled : Builder.t -> ctrl:Gate.qubit -> a:int -> Register.t -> unit
(** [|a|] CNOTs (propositions 2.19, theorem 2.38). *)

(** {1 Equal-length modular-[2^m] addition} *)

val add_mod : style -> Builder.t -> x:Register.t -> y:Register.t -> unit
(** [y <- (x + y) mod 2^m] on two [m]-qubit registers (no overflow qubit). *)

val add_const_mod : style -> Builder.t -> a:int -> y:Register.t -> unit
(** [y <- (y + a) mod 2^m] on an [m]-qubit register. *)

val add_const_mod_controlled :
  style -> Builder.t -> ctrl:Gate.qubit -> a:int -> y:Register.t -> unit
(** [y <- (y + ctrl.a) mod 2^m] — the conditional re-addition of the modulus
    in Takahashi's constant modular adder (proposition 3.15). *)

val sub_via_twos_complement : style -> Builder.t -> x:Register.t -> y:Register.t -> unit
(** Circuit (9) of theorem 2.22: [y <- y - x] by temporarily replacing [x]
    (zero-extended by one borrowed qubit) with its 2's complement
    ([NOT then +1], proposition A.1) and adding. The increments use the
    measurement-based ladder of {!Increment}. *)

val compare_unequal :
  style -> Builder.t -> x:Register.t -> y:Register.t -> target:Gate.qubit -> unit
(** Remark 2.32: compare registers of unequal width,
    [target XOR= 1\[x > y\]] with [length y = length x + 1], using
    [1\[x > y\] = 1\[x > y_low\] AND (NOT y_top)] — one extra Toffoli
    instead of padding [x]. *)
