examples/range_query.ml: Adder Array Builder Formulas List Mbu Mbu_circuit Mbu_core Mbu_simulator Printf Register Resources Sim State
