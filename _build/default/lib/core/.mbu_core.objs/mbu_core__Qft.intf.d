lib/core/qft.mli: Builder Counts Mbu_circuit Register
