(** Adaptive circuit instructions.

    On top of unitary gates, the paper's circuits need two non-unitary
    primitives: single-qubit computational-basis measurement, and blocks of
    gates executed conditionally on a classical measurement outcome. These
    appear in Gidney's measurement-based uncomputation of the temporary
    logical-AND (figure 11) and in the MBU lemma itself (figure 24).

    Programs are hash-consed DAGs rather than trees: a [Call] node is a
    reference to an interned shared block, so a subcircuit that is emitted
    many times (the per-bit controlled modular adders of [Mod_mul], QROM
    one-hot ladders, pebbling rounds, MCX conjunction ladders) is built and
    analysed once. Every consumer treats [Call n] exactly as the inline
    expansion of [n.body]; metric passes memoize per distinct node. *)

type t =
  | Gate of Gate.t
  | Measure of { qubit : Gate.qubit; bit : int; reset : bool }
      (** Measure [qubit] in the computational basis, store the outcome in
          classical [bit]. If [reset], the qubit is returned to |0> after the
          measurement (an outcome-conditioned X that we do not count as a
          gate, matching the usual measure-and-reset primitive). *)
  | If_bit of { bit : int; value : bool; body : t list }
      (** Execute [body] iff classical [bit] equals [value]. *)
  | Span of { label : string; peak_ancillas : int; body : t list }
      (** A named, semantically transparent grouping of [body] — the unit of
          attribution for {!Trace} profiles. [label] names the subroutine
          that emitted the block (e.g. ["modadd.comp_p"]); [peak_ancillas]
          records the builder's live-ancilla high-water mark while the span
          was open. Spans nest, forming the hierarchical call tree of the
          circuit's construction. Every consumer (counting, depth,
          optimization, serialization, simulation) treats a span exactly as
          its body. *)
  | Call of node
      (** Reference to an interned shared block: semantically identical to
          splicing [node.body] in place. Obtain one with {!share}; never
          construct a node by hand. *)

and node = private { id : int; hkey : int; body : t list }
(** An interned block. [id] is a process-unique identifier (memo key for
    metric passes), [hkey] the structural hash under which the body was
    interned. Structurally equal bodies always yield the physically same
    node. *)

val share : t list -> t
(** [share body] interns [body] and returns a [Call] reference to its
    canonical node. Two calls with structurally equal bodies (including
    [Call] children, which compare by node identity) return the same node. *)

val expand_calls : t list -> t list
(** Expand every [Call] back into its body, recursively — the materialized
    instruction tree the program denotes. Used as the reference
    representation in tests and benchmarks. *)

val shared_nodes : unit -> int
(** Number of distinct interned nodes in the process-wide table. *)

type summary = {
  max_qubit : int;  (** largest wire index touched, or [-1] *)
  max_bit : int;  (** largest classical bit index used, or [-1] *)
  instr_count : int;  (** expanded instruction count (spans weightless) *)
  span_count : int;  (** expanded number of [Span] nodes *)
  unitary : bool;  (** no [Measure]/[If_bit] anywhere *)
}

val scan : ?validate:bool -> t list -> summary
(** One fused traversal computing the whole {!summary}; when [validate] is
    set, every gate is checked with [Gate.validate] in the same pass. Work
    inside shared nodes is memoized by node id (validation included), so a
    block referenced [k] times is visited once, not [k] times. *)

val adjoint : t list -> t list
(** Adjoint of a measurement-free instruction sequence. Spans are preserved
    (same label, adjointed body); the adjoint of a shared block is itself
    shared, and memoized so that double-adjoint returns the original node.
    Raises [Invalid_argument] if the sequence contains [Measure] or [If_bit]
    (remark 2.23: circuits involving a measurement are generally not
    invertible). *)

val iter_gates : (Gate.t -> unit) -> t list -> unit
(** Visit every gate, including those inside conditional bodies and shared
    blocks (a block referenced [k] times is visited [k] times — this is the
    expansion semantics the simulator uses). *)

val max_qubit : t list -> int
(** Largest wire index touched, or [-1] for the empty program. *)

val max_bit : t list -> int
(** Largest classical bit index used, or [-1]. *)

val count_instrs : t list -> int
(** Total number of instructions, conditionals counted with their bodies and
    [Call]s counted as their expansion; spans are weightless. *)

val count_spans : t list -> int
(** Number of [Span] nodes anywhere in the (expanded) program. *)

val is_unitary : t list -> bool
(** [true] iff the program contains no [Measure] and no [If_bit]. *)

val strip_spans : t list -> t list
(** Erase the span structure and expand shared blocks, splicing every body
    in place. The result is gate-for-gate the same program without
    attribution markers. *)

val pp : Format.formatter -> t -> unit
