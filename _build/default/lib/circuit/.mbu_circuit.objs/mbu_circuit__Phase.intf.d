lib/circuit/phase.mli: Format
