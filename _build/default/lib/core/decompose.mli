(** Clifford+T decompositions and T-counting.

    The paper counts Toffoli gates; fault-tolerant estimates count T gates.
    This module provides the two decompositions behind the Tof/T accounting:

    - the textbook 7-T Toffoli;
    - figure 10's temporary logical-AND: when the target is a fresh |0>
      qubit, 4 T gates suffice (the phase defect [e^{-i pi ab / 2}] left by
      the shorter phase polynomial is repaired by one S on the freshly
      computed AND bit). Its uncomputation (figure 11) costs no T at all —
      this is where "halving the cost of quantum addition" comes from: a
      CDKPM adder costs [14n] T, a Gidney adder [4n].

    [circuit] rewrites every Toffoli of a circuit into Clifford+T.
    [t_count] counts T gates ([R(theta_3)] rotations and their adjoints)
    under the usual expectation accounting. *)

open Mbu_circuit

val toffoli_7t : c1:Gate.qubit -> c2:Gate.qubit -> target:Gate.qubit -> Gate.t list
(** Exactly the Toffoli unitary. *)

val and_4t : c1:Gate.qubit -> c2:Gate.qubit -> target:Gate.qubit -> Gate.t list
(** Computes [target <- c1 AND c2]; requires [target] = |0>. *)

val circuit : ?fresh_target_and:bool -> Circuit.t -> Circuit.t
(** Replace every Toffoli with {!toffoli_7t}. With [fresh_target_and] the
    rewrite is invalid in general and is exposed only for cost studies where
    every Toffoli is known to be a logical-AND onto |0> (default false). *)

val t_count : mode:Counts.mode -> Instr.t list -> float
(** Number of [T]/[T!] gates (single-qubit rotations by [±pi/4]), with
    conditional blocks weighted as in {!Counts.of_instrs}. *)
