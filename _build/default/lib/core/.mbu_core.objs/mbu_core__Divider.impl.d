lib/core/divider.ml: Adder Builder Mbu_circuit Register
