test/test_ft_estimate.ml: Alcotest Builder Ft_estimate Mbu_circuit Mbu_core Mod_add Printf Resources
