(** Measured resource extraction: build a circuit and report the quantities
    the paper's tables use, in a given accounting mode. This is what the
    benchmark harness prints next to the {!Formulas} predictions, and what
    the Monte-Carlo validation compares against. *)

open Mbu_circuit

type t = {
  toffoli : float;
  cnot : float;
  cz : float;
  cnot_cz : float;
  x : float;
  h : float;
  phase : float;
  cphase : float;
  measure : float;
  qft_units : float;  (** rotation+H content in units of one [QFT_{n+1}] *)
  qubits : int;  (** total wires (inputs + peak ancillas) *)
  ancillas : int;  (** peak ancilla usage *)
  total_depth : float;
  toffoli_depth : float;
}

val measure :
  ?mode:Counts.mode -> n:int -> build:(Builder.t -> unit) -> unit -> t
(** [measure ~mode ~n ~build ()] runs [build] on a fresh builder — [build]
    allocates its own input registers — and extracts counts and ASAP depths.
    [mode] defaults to [Counts.Expected 0.5] (the paper's accounting);
    [qft_units] is normalized by [QFT_{n+1}]. Depths use [`Worst] for
    [Counts.Worst] and [`Expected p] otherwise. *)

val monte_carlo_toffoli :
  ?shots:int ->
  ?rng:Random.State.t ->
  ?seed:int ->
  ?jobs:int ->
  build:(Builder.t -> (Mbu_circuit.Register.t * int) list) -> unit -> float
(** Average {e executed} Toffoli count over simulator runs: [build] returns
    the register initialization; measurement outcomes vary per shot. Used to
    validate that the analytic "in expectation" numbers are the true mean.
    Without [?rng] the shots go through the parallel multi-shot runner with
    deterministic per-shot seeds derived from [seed] ([jobs] defaults to
    {!Mbu_simulator.Sim.default_jobs}); passing [?rng] keeps the legacy
    sequential shared-generator path. *)
