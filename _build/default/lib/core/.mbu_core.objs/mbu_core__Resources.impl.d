lib/core/resources.ml: Builder Circuit Counts Depth Mbu_circuit Mbu_simulator Random
