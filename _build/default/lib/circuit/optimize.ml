let disjoint g h =
  let qs = Gate.qubits g in
  List.for_all (fun q -> not (List.mem q qs)) (Gate.qubits h)

(* Try to fuse [g] with an earlier gate, walking back through gates on
   disjoint wires. Returns the updated reversed-prefix when something
   happened. *)
let rec fuse_back rev_prefix g =
  match rev_prefix with
  | [] -> None
  | h :: rest -> (
      match g, h with
      (* merge single-qubit rotations on the same wire *)
      | Gate.Phase (q, p), Gate.Phase (q', p') when q = q' ->
          let p'' = Phase.add p p' in
          if Phase.is_zero p'' then Some rest
          else Some (Gate.Phase (q, p'') :: rest)
      (* merge controlled rotations on the same wire pair *)
      | ( Gate.Cphase { control = c; target = t; phase = p },
          Gate.Cphase { control = c'; target = t'; phase = p' } )
        when (c = c' && t = t') || (c = t' && t = c') ->
          let p'' = Phase.add p p' in
          if Phase.is_zero p'' then Some rest
          else Some (Gate.Cphase { control = c; target = t; phase = p'' } :: rest)
      (* adjacent inverse pair *)
      | _ when Gate.equal h (Gate.adjoint g) -> Some rest
      (* slide past disjoint gates *)
      | _ when disjoint g h -> (
          match fuse_back rest g with
          | Some rest' -> Some (h :: rest')
          | None -> None)
      | _ -> None)

let optimize_gates gates =
  let step acc g =
    match fuse_back acc g with Some acc' -> acc' | None -> g :: acc
  in
  List.rev (List.fold_left step [] gates)

(* Split into maximal gate runs; measurements/conditionals are barriers. *)
let rec optimize_instrs instrs =
  let flush run acc =
    if run = [] then acc
    else
      List.rev_append
        (List.map (fun g -> Instr.Gate g) (optimize_gates (List.rev run)))
        acc
  in
  let rec go run acc = function
    | [] -> List.rev (flush run acc)
    | Instr.Gate g :: rest -> go (g :: run) acc rest
    | (Instr.Measure _ as i) :: rest -> go [] (i :: flush run acc) rest
    | Instr.If_bit { bit; value; body } :: rest ->
        let body = optimize_instrs body in
        go [] (Instr.If_bit { bit; value; body } :: flush run acc) rest
  in
  go [] [] instrs

let rec fixpoint prev =
  let next = optimize_instrs prev in
  if Instr.count_instrs next = Instr.count_instrs prev then next
  else fixpoint next

let instrs = fixpoint

let circuit (c : Circuit.t) =
  Circuit.make ~num_qubits:c.Circuit.num_qubits ~num_bits:c.Circuit.num_bits
    (instrs c.Circuit.instrs)
