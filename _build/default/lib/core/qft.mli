(** Quantum Fourier transform in the "phase-encoding" convention used by
    Draper's adder (proposition 2.5).

    [apply b r] maps a basis value [|y>] of register [r] (LSB first, length
    [m]) to the product state in which qubit [i] holds
    [|0> + exp(2 i pi y / 2^{i+1}) |1>] — the paper's [|phi(y)>]. This is the
    textbook QFT up to qubit ordering, with no terminal swaps, which is the
    convention under which [Phi_ADD] acts qubit-locally. *)

open Mbu_circuit

val apply : Builder.t -> Register.t -> unit
(** [QFT_m]. *)

val apply_inverse : Builder.t -> Register.t -> unit
(** [IQFT_m]. *)

val gate_counts : int -> Counts.t
(** Gate count of [QFT_m] in this convention: [m] Hadamards and
    [m (m-1) / 2] controlled rotations (remark 1.1). *)

val apply_approx : Builder.t -> cutoff:int -> Register.t -> unit
(** Approximate QFT: controlled rotations by angles smaller than
    [2 pi / 2^cutoff] are dropped, reducing the rotation count from
    [m (m-1) / 2] to [O(m . cutoff)] at the price of an
    [O(m / 2^cutoff)]-size phase error — the standard trade applied in
    QFT-adder implementations. [cutoff >= m] reproduces the exact QFT. *)

val apply_approx_inverse : Builder.t -> cutoff:int -> Register.t -> unit
