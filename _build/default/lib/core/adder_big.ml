open Mbu_circuit
open Mbu_bitstring

let require_ripple name = function
  | Adder.Vbe | Adder.Cdkpm | Adder.Gidney -> ()
  | Adder.Draper ->
      invalid_arg (name ^ ": Draper constants are capped at 61 bits; use Adder")

let check_width name ~a reg =
  (* any set bit of [a] above the register width is an error *)
  let w = Register.length reg in
  for i = w to Bitstring.length a - 1 do
    if Bitstring.get a i then
      invalid_arg (Printf.sprintf "%s: constant does not fit %d qubits" name w)
  done

let bit a i = i < Bitstring.length a && Bitstring.get a i

let load_const b ~a reg =
  check_width "Adder_big.load_const" ~a reg;
  for i = 0 to Register.length reg - 1 do
    if bit a i then Builder.x b (Register.get reg i)
  done

let load_const_controlled b ~ctrl ~a reg =
  check_width "Adder_big.load_const_controlled" ~a reg;
  for i = 0 to Register.length reg - 1 do
    if bit a i then Builder.cnot b ~control:ctrl ~target:(Register.get reg i)
  done

let with_loaded b ~n ~load f =
  Builder.with_ancilla_register b "kb" n (fun ka ->
      load ka;
      f ka;
      load ka)

let add_const style b ~a ~y =
  require_ripple "Adder_big.add_const" style;
  with_loaded b ~n:(Register.length y - 1)
    ~load:(fun ka -> load_const b ~a ka)
    (fun ka -> Adder.add style b ~x:ka ~y)

let sub_const style b ~a ~y =
  require_ripple "Adder_big.sub_const" style;
  with_loaded b ~n:(Register.length y - 1)
    ~load:(fun ka -> load_const b ~a ka)
    (fun ka -> Adder.sub style b ~x:ka ~y)

let add_const_controlled style b ~ctrl ~a ~y =
  require_ripple "Adder_big.add_const_controlled" style;
  with_loaded b ~n:(Register.length y - 1)
    ~load:(fun ka -> load_const_controlled b ~ctrl ~a ka)
    (fun ka -> Adder.add style b ~x:ka ~y)

let sub_const_controlled style b ~ctrl ~a ~y =
  require_ripple "Adder_big.sub_const_controlled" style;
  with_loaded b ~n:(Register.length y - 1)
    ~load:(fun ka -> load_const_controlled b ~ctrl ~a ka)
    (fun ka -> Adder.sub style b ~x:ka ~y)

let add_const_mod_controlled style b ~ctrl ~a ~y =
  require_ripple "Adder_big.add_const_mod_controlled" style;
  with_loaded b ~n:(Register.length y)
    ~load:(fun ka -> load_const_controlled b ~ctrl ~a ka)
    (fun ka -> Adder.add_mod style b ~x:ka ~y)

let compare_const style b ~a ~x ~target =
  require_ripple "Adder_big.compare_const" style;
  with_loaded b ~n:(Register.length x)
    ~load:(fun ka -> load_const b ~a ka)
    (fun ka -> Adder.compare style b ~x:ka ~y:x ~target)

let compare_ge_const style b ~a ~x ~target =
  compare_const style b ~a ~x ~target;
  Builder.x b target

let compare_const_controlled style b ~ctrl ~a ~x ~target =
  require_ripple "Adder_big.compare_const_controlled" style;
  with_loaded b ~n:(Register.length x)
    ~load:(fun ka -> load_const_controlled b ~ctrl ~a ka)
    (fun ka -> Adder.compare style b ~x:ka ~y:x ~target)
