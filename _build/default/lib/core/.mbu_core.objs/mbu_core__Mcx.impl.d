lib/core/mcx.ml: Builder Logical_and Mbu_circuit
