lib/core/logical_and.mli: Builder Gate Mbu_circuit
