(* Cross-cutting property tests (qcheck): random widths, random operands,
   random styles — the shrinking harness around the invariants the rest of
   the suite checks pointwise. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let qtest = QCheck_alcotest.to_alcotest

let style_of_int i =
  match i mod 4 with
  | 0 -> Adder.Vbe
  | 1 -> Adder.Cdkpm
  | 2 -> Adder.Gidney
  | _ -> Adder.Draper

let print_case (s, n, x, y) =
  Printf.sprintf "style=%d n=%d x=%d y=%d" s n x y

(* width kept small enough for the dense Draper simulations *)
let gen_adder_case =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    map3
      (fun s x y -> (s, n, x, y))
      (int_bound 3)
      (int_bound ((1 lsl n) - 1))
      (int_bound ((1 lsl n) - 1)))

let arb_adder_case = QCheck.make gen_adder_case ~print:print_case

let run_fresh build inits =
  (Sim.run_builder ~rng:(Random.State.make [| 0xbeef |]) build ~inits).Sim.state

let prop_adder_universal =
  QCheck.Test.make ~name:"any style adds at any width (def 2.1)" ~count:120
    arb_adder_case (fun (s, n, x_val, y_val) ->
      let style = style_of_int s in
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder.add style b ~x ~y;
      let st = run_fresh b [ (x, x_val); (y, y_val) ] in
      Sim.register_value st y = Some (x_val + y_val)
      && Sim.register_value st x = Some x_val
      && Sim.wires_zero st ~except:[ x; y ])

let prop_add_then_sub_is_identity =
  QCheck.Test.make ~name:"sub inverts add for every style" ~count:100
    arb_adder_case (fun (s, n, x_val, y_val) ->
      let style = style_of_int s in
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" (n + 1) in
      Adder.add style b ~x ~y;
      Adder.sub style b ~x ~y;
      let st = run_fresh b [ (x, x_val); (y, y_val) ] in
      Sim.register_value st y = Some y_val && Sim.register_value st x = Some x_val)

let prop_modadd_universal =
  let gen =
    QCheck.Gen.(
      int_range 2 4 >>= fun n ->
      int_range 2 ((1 lsl n) - 1) >>= fun p ->
      map3
        (fun s x y -> (s, n, p, x mod p, y mod p))
        (int_bound 2)
        (int_bound (p - 1))
        (int_bound (p - 1)))
  in
  let arb =
    QCheck.make gen ~print:(fun (s, n, p, x, y) ->
        Printf.sprintf "spec=%d n=%d p=%d x=%d y=%d" s n p x y)
  in
  QCheck.Test.make ~name:"modadd for random spec/modulus/operands" ~count:80
    arb (fun (s, n, p, x_val, y_val) ->
      let spec =
        match s with
        | 0 -> Mod_add.spec_cdkpm
        | 1 -> Mod_add.spec_gidney
        | _ -> Mod_add.spec_mixed
      in
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" n in
      Mod_add.modadd ~mbu:true spec b ~p ~x ~y;
      let st = run_fresh b [ (x, x_val); (y, y_val) ] in
      Sim.register_value st y = Some ((x_val + y_val) mod p)
      && Sim.wires_zero st ~except:[ x; y ])

let prop_comparator_antisymmetry =
  QCheck.Test.make ~name:"compare(x,y) XOR compare(y,x) = [x<>y]" ~count:80
    arb_adder_case (fun (s, n, x_val, y_val) ->
      let style = style_of_int s in
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let y = Builder.fresh_register b "y" n in
      let t = Builder.fresh_register b "t" 1 in
      Adder.compare style b ~x ~y ~target:(Register.get t 0);
      Adder.compare style b ~x:y ~y:x ~target:(Register.get t 0);
      let st = run_fresh b [ (x, x_val); (y, y_val); (t, 0) ] in
      Sim.register_value st t = Some (if x_val <> y_val then 1 else 0))

(* Counting-mode ordering on random adaptive circuits. *)
let prop_count_mode_ordering =
  let arb = QCheck.make QCheck.Gen.(pair (int_range 2 4) (int_range 5 40))
      ~print:(fun (q, l) -> Printf.sprintf "qubits=%d len=%d" q l)
  in
  QCheck.Test.make ~name:"best <= expected <= worst counts" ~count:80 arb
    (fun (num_qubits, len) ->
      let rng = Random.State.make [| num_qubits; len |] in
      let c, _ = Test_optimize.random_circuit rng ~num_qubits ~len in
      let total mode = Counts.total_gates (Circuit.counts ~mode c) in
      let best = total Counts.Best
      and expected = total (Counts.Expected 0.5)
      and worst = total Counts.Worst in
      best <= expected +. 1e-9 && expected <= worst +. 1e-9)

let prop_depth_bounds =
  let arb = QCheck.make QCheck.Gen.(pair (int_range 2 4) (int_range 5 40))
      ~print:(fun (q, l) -> Printf.sprintf "qubits=%d len=%d" q l)
  in
  QCheck.Test.make ~name:"toffoli depth <= toffoli count <= depth bound"
    ~count:80 arb (fun (num_qubits, len) ->
      let rng = Random.State.make [| num_qubits + 17; len |] in
      let c, _ = Test_optimize.random_circuit rng ~num_qubits ~len in
      let counts = Circuit.counts ~mode:Counts.Worst c in
      let d = Depth.of_circuit ~mode:`Worst c in
      d.Depth.toffoli <= counts.Counts.toffoli +. 1e-9
      && d.Depth.total
         <= Counts.total_gates counts +. counts.Counts.measure +. 1e-9
      && d.Depth.toffoli <= d.Depth.total +. 1e-9)

(* Unitary circuits compose with their adjoint to the identity. *)
let prop_adjoint_identity =
  let arb = QCheck.make QCheck.Gen.(pair (int_range 2 4) (int_range 3 25))
      ~print:(fun (q, l) -> Printf.sprintf "qubits=%d len=%d" q l)
  in
  QCheck.Test.make ~name:"U then U-adjoint = identity" ~count:60 arb
    (fun (num_qubits, len) ->
      let rng = Random.State.make [| num_qubits + 3; len + 1 |] in
      let b = Builder.create () in
      let r = Builder.fresh_register b "r" num_qubits in
      let q () = Register.get r (Random.State.int rng num_qubits) in
      let emit () =
        for _ = 1 to len do
          match Random.State.int rng 5 with
          | 0 -> Builder.h b (q ())
          | 1 -> Builder.x b (q ())
          | 2 -> Builder.phase b (q ()) (Phase.theta (1 + Random.State.int rng 4))
          | 3 ->
              let a = q () in
              let rec other () = let c = q () in if c = a then other () else c in
              Builder.cnot b ~control:a ~target:(other ())
          | _ -> Builder.z b (q ())
        done
      in
      let (), body = Builder.capture b emit in
      Builder.emit b body;
      Builder.emit b (Instr.adjoint body);
      let init = Random.State.int rng (1 lsl num_qubits) in
      let st = run_fresh b [ (r, init) ] in
      Sim.register_value st r = Some init)

(* The expected executed-gate total over many shots sits between best and
   worst for the MBU modular adder. *)
let prop_executed_within_bounds =
  let arb = QCheck.make QCheck.Gen.(int_range 0 1000) ~print:string_of_int in
  QCheck.Test.make ~name:"executed gates within best/worst envelope" ~count:25
    arb (fun seed ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" 3 in
      let y = Builder.fresh_register b "y" 3 in
      Mod_add.modadd ~mbu:true Mod_add.spec_gidney b ~p:7 ~x ~y;
      let c = Builder.to_circuit b in
      let init =
        Sim.init_registers ~num_qubits:c.Circuit.num_qubits
          [ (x, seed mod 7); (y, seed / 7 mod 7) ]
      in
      let r = Sim.run ~rng:(Random.State.make [| seed |]) c ~init in
      let executed = Counts.total_gates r.Sim.executed in
      let best = Counts.total_gates (Circuit.counts ~mode:Counts.Best c) in
      let worst = Counts.total_gates (Circuit.counts ~mode:Counts.Worst c) in
      best -. 1e-9 <= executed && executed <= worst +. 1e-9)

let suite =
  ( "properties",
    [ qtest prop_adder_universal;
      qtest prop_add_then_sub_is_identity;
      qtest prop_modadd_universal;
      qtest prop_comparator_antisymmetry;
      qtest prop_count_mode_ordering;
      qtest prop_depth_bounds;
      qtest prop_adjoint_identity;
      qtest prop_executed_within_bounds ] )
