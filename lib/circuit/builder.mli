(** Imperative circuit builder.

    All arithmetic constructors in [mbu.core] are functions that take a
    builder plus the registers they act on and emit instructions into it.
    This makes the paper's compositional style direct: a modular adder is
    literally the sequence "plain adder; comparator; controlled subtractor;
    comparator" emitted into one builder.

    Ancilla discipline: {!alloc_ancilla} hands out a |0> wire, reusing
    previously freed ones before widening the circuit, so the final
    {!num_qubits} is the high-water mark of simultaneously live qubits —
    the quantity the paper's "ancillas"/"logical qubits" columns measure.
    {!free_ancilla} must only be called on wires that the emitted circuit
    returns to |0> (this is checked at simulation time by
    [Sim.run_on_basis ~check_ancillas]).

    Misuse (double free, inputs allocated after ancillas, repeating a
    measuring body, unbalanced capture) raises {!Mbu_error.Error} with the
    offending wire attached. *)

type t

val create : unit -> t

(** {1 Allocation} *)

val fresh_qubit : t -> Gate.qubit
val fresh_register : t -> string -> int -> Register.t
val fresh_bit : t -> int

val alloc_ancilla : t -> Gate.qubit
val free_ancilla : t -> Gate.qubit -> unit

val alloc_ancilla_register : t -> string -> int -> Register.t
val free_ancilla_register : t -> Register.t -> unit

val with_ancilla : t -> (Gate.qubit -> 'a) -> 'a
val with_ancilla_register : t -> string -> int -> (Register.t -> 'a) -> 'a

val num_qubits : t -> int
(** High-water mark so far. *)

val input_qubits : t -> int
(** Number of wires allocated with {!fresh_qubit} / {!fresh_register} (i.e.
    non-ancilla wires). *)

val ancilla_qubits : t -> int
(** [num_qubits - input_qubits]: peak ancilla usage. *)

(** {1 Emission} *)

val gate : t -> Gate.t -> unit
val x : t -> Gate.qubit -> unit
val z : t -> Gate.qubit -> unit
val h : t -> Gate.qubit -> unit
val phase : t -> Gate.qubit -> Phase.t -> unit
val cnot : t -> control:Gate.qubit -> target:Gate.qubit -> unit
val cz : t -> Gate.qubit -> Gate.qubit -> unit
val swap : t -> Gate.qubit -> Gate.qubit -> unit
val toffoli : t -> c1:Gate.qubit -> c2:Gate.qubit -> target:Gate.qubit -> unit
val cphase : t -> control:Gate.qubit -> target:Gate.qubit -> Phase.t -> unit

val measure : ?reset:bool -> t -> Gate.qubit -> int
(** Emits a measurement into a fresh classical bit and returns the bit.
    [reset] defaults to [false]. *)

val if_bit : ?value:bool -> t -> int -> (unit -> unit) -> unit
(** [if_bit b bit f] runs [f], collecting everything it emits into a block
    conditioned on [bit = value] ([value] defaults to [true]). *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span b label f] runs [f] and wraps everything it emits in a named
    {!Instr.Span} block. Spans are semantically transparent — counting,
    depth, optimization, serialization and simulation all treat the block as
    its body — but give {!Trace.profile} a hierarchical tree to attribute
    gates, depth and ancillas to. The span records the live-ancilla
    high-water mark reached while it was open. Nest freely; every arithmetic
    constructor in [mbu.core] opens one. *)

val with_shared : t -> string -> (unit -> 'a) -> 'a
(** Like {!with_span}, but the emitted span is interned with {!Instr.share}
    and pushed as an {!Instr.Call} reference. If a structurally identical
    block (same gates on the same wires, same label and ancilla high-water)
    was emitted before — e.g. the per-bit controlled modular adder of a
    product loop, whose LIFO ancilla reuse makes every iteration
    wire-identical — the reference points at the existing node and metric
    passes evaluate it only once. Bodies containing measurements are legal
    but never deduplicate (each measurement uses a fresh classical bit). *)

val shared : t -> (unit -> 'a) -> 'a
(** Like {!with_shared} but anonymous: the emitted instructions are interned
    and referenced with no span wrapper, so traces, counts, QASM and drawing
    are indistinguishable from inline emission — only the representation
    (and the metric memoization) changes. Use it for small repeated layers
    that are not worth a line of attribution, e.g. constant load layers.
    Emitting nothing pushes nothing. *)

val repeat : ?label:string -> t -> times:int -> (unit -> 'a) -> 'a
(** [repeat b ~times f] runs [f] {e once}, interns what it emitted
    (optionally wrapped in a span [label]) and pushes [times] references to
    it. The body must be measurement-free — a reference replays the same
    classical bits, so measuring bodies raise {!Mbu_error.Error}. [times]
    must be at least 1 (the builder's allocation effects of [f] happen
    regardless). *)

val capture : t -> (unit -> 'a) -> 'a * Instr.t list
(** [capture b f] runs [f] and returns what it emitted {e without} adding it
    to the circuit. Allocation effects (fresh wires, ancilla pool) persist. *)

val emit : t -> Instr.t list -> unit

val emit_adjoint : t -> (unit -> unit) -> unit
(** [emit_adjoint b f] emits the adjoint of what [f] emits. [f] must emit a
    measurement-free sequence. This is how "use [Q_ADD]{^ †} as a subtractor"
    (theorem 2.22) is expressed. *)

val to_circuit : t -> Circuit.t
