lib/core/decompose.mli: Circuit Counts Gate Instr Mbu_circuit
