(** Gidney's temporary logical-AND (figures 10 and 11).

    [compute] writes [c1 AND c2] into a fresh |0> ancilla; at the abstraction
    level of the paper this costs one Toffoli ("we consider each temporary
    logical-AND gate implemented using a Tof gate"). [uncompute] erases it
    {e without} a Toffoli: an X-basis measurement (H + computational-basis
    measure-and-reset) followed, on outcome 1, by a classically controlled CZ
    on the two control wires — the measurement-based uncomputation at the
    heart of the paper. The CZ therefore executes with probability 1/2. *)

open Mbu_circuit

val compute : Builder.t -> c1:Gate.qubit -> c2:Gate.qubit -> target:Gate.qubit -> unit
(** [target] must be |0>; afterwards it holds [c1 AND c2]. *)

val uncompute : Builder.t -> c1:Gate.qubit -> c2:Gate.qubit -> target:Gate.qubit -> unit
(** [target] must hold [c1 AND c2] (with the same [c1], [c2] values as at
    compute time); afterwards it is |0>. *)
