(** Constant arithmetic with arbitrary-width constants.

    The [Adder] API takes classical constants as OCaml [int]s, which caps
    moduli at 61 bits. This module provides the same constant constructions
    with constants given as {!Mbu_bitstring.Bitstring.t}, so resource tables
    can be generated at cryptographic widths (RSA-2048-sized moduli). Only
    the ripple families are supported — the Draper constructions need exact
    dyadic phases whose denominators would overflow the phase
    representation; passing [Draper] raises [Invalid_argument].

    Semantics mirror [Adder] one for one; see there for definitions. *)

open Mbu_circuit
open Mbu_bitstring

val load_const : Builder.t -> a:Bitstring.t -> Register.t -> unit
val load_const_controlled :
  Builder.t -> ctrl:Gate.qubit -> a:Bitstring.t -> Register.t -> unit

val add_const : Adder.style -> Builder.t -> a:Bitstring.t -> y:Register.t -> unit
val sub_const : Adder.style -> Builder.t -> a:Bitstring.t -> y:Register.t -> unit

val add_const_controlled :
  Adder.style -> Builder.t -> ctrl:Gate.qubit -> a:Bitstring.t -> y:Register.t -> unit

val sub_const_controlled :
  Adder.style -> Builder.t -> ctrl:Gate.qubit -> a:Bitstring.t -> y:Register.t -> unit

val add_const_mod_controlled :
  Adder.style -> Builder.t -> ctrl:Gate.qubit -> a:Bitstring.t -> y:Register.t -> unit

val compare_const :
  Adder.style -> Builder.t -> a:Bitstring.t -> x:Register.t -> target:Gate.qubit -> unit
(** [target XOR= 1\[x < a\]]. *)

val compare_ge_const :
  Adder.style -> Builder.t -> a:Bitstring.t -> x:Register.t -> target:Gate.qubit -> unit

val compare_const_controlled :
  Adder.style -> Builder.t ->
  ctrl:Gate.qubit -> a:Bitstring.t -> x:Register.t -> target:Gate.qubit -> unit
