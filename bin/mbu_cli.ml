(* Command-line front end: build any circuit family from the paper, count
   its resources, draw it, or run it on the simulator.

     mbu-cli counts --circuit modadd --style mixed -n 16 --mbu
     mbu-cli draw --circuit adder --style cdkpm -n 2
     mbu-cli simulate --circuit modadd --style gidney -n 5 -p 29 -x 17 -y 25 *)

open Mbu_circuit
open Mbu_core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Circuit construction shared by all subcommands *)

type built = {
  builder : Builder.t;
  registers : Register.t list;  (* for drawing labels / initialization *)
  inits : (Register.t * int) list;
  outputs : Register.t list;  (* registers to print after simulation *)
}

let style_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "vbe" -> Ok Adder.Vbe
    | "cdkpm" -> Ok Adder.Cdkpm
    | "gidney" -> Ok Adder.Gidney
    | "draper" -> Ok Adder.Draper
    | _ -> Error (`Msg "style must be vbe | cdkpm | gidney | draper")
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Adder.style_name s))

let spec_of_style = function
  | Adder.Cdkpm -> Mod_add.spec_cdkpm
  | Adder.Gidney -> Mod_add.spec_gidney
  | Adder.Vbe ->
      Mod_add.{ q_add = Adder.Vbe; q_comp_const = Adder.Vbe;
                c_q_sub_const = Adder.Vbe; q_comp = Adder.Vbe }
  | Adder.Draper ->
      Mod_add.{ q_add = Adder.Draper; q_comp_const = Adder.Draper;
                c_q_sub_const = Adder.Draper; q_comp = Adder.Draper }

let default_p n = (1 lsl n) - 1

let build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val ~y_val =
  let b = Builder.create () in
  let p = match p with Some p -> p | None -> default_p n in
  let a = match a with Some a -> a | None -> p / 3 in
  let reg name len = Builder.fresh_register b name len in
  match circuit with
  | "adder" ->
      let x = reg "x" n and y = reg "y" (n + 1) in
      Adder.add style b ~x ~y;
      { builder = b; registers = [ x; y ]; inits = [ (x, x_val); (y, y_val) ];
        outputs = [ y ] }
  | "sub" ->
      let x = reg "x" n and y = reg "y" (n + 1) in
      Adder.sub style b ~x ~y;
      { builder = b; registers = [ x; y ]; inits = [ (x, x_val); (y, y_val) ];
        outputs = [ y ] }
  | "cadder" ->
      let c = reg "c" 1 and x = reg "x" n and y = reg "y" (n + 1) in
      Adder.add_controlled style b ~ctrl:(Register.get c 0) ~x ~y;
      { builder = b; registers = [ c; x; y ];
        inits = [ (c, 1); (x, x_val); (y, y_val) ]; outputs = [ y ] }
  | "adder-const" ->
      let y = reg "y" (n + 1) in
      Adder.add_const style b ~a ~y;
      { builder = b; registers = [ y ]; inits = [ (y, y_val) ]; outputs = [ y ] }
  | "compare" ->
      let x = reg "x" n and y = reg "y" n and t = reg "t" 1 in
      Adder.compare style b ~x ~y ~target:(Register.get t 0);
      { builder = b; registers = [ x; y; t ];
        inits = [ (x, x_val); (y, y_val); (t, 0) ]; outputs = [ t ] }
  | "compare-const" ->
      let x = reg "x" n and t = reg "t" 1 in
      Adder.compare_const style b ~a ~x ~target:(Register.get t 0);
      { builder = b; registers = [ x; t ]; inits = [ (x, x_val); (t, 0) ];
        outputs = [ t ] }
  | "modadd" ->
      let x = reg "x" n and y = reg "y" n in
      (if style = Adder.Draper then Mod_add.modadd_draper ~mbu b ~p ~x ~y
       else Mod_add.modadd ~mbu (spec_of_style style) b ~p ~x ~y);
      { builder = b; registers = [ x; y ];
        inits = [ (x, x_val mod p); (y, y_val mod p) ]; outputs = [ y ] }
  | "modadd-mixed" ->
      let x = reg "x" n and y = reg "y" n in
      Mod_add.modadd ~mbu Mod_add.spec_mixed b ~p ~x ~y;
      { builder = b; registers = [ x; y ];
        inits = [ (x, x_val mod p); (y, y_val mod p) ]; outputs = [ y ] }
  | "cmodadd" ->
      let c = reg "c" 1 and x = reg "x" n and y = reg "y" n in
      Mod_add.modadd_controlled ~mbu (spec_of_style style) b
        ~ctrl:(Register.get c 0) ~p ~x ~y;
      { builder = b; registers = [ c; x; y ];
        inits = [ (c, 1); (x, x_val mod p); (y, y_val mod p) ]; outputs = [ y ] }
  | "modadd-const" ->
      let x = reg "x" n in
      (if style = Adder.Draper then
         Mod_add.modadd_const_draper ~mbu b ~p ~a:(a mod p) ~x
       else Mod_add.modadd_const ~mbu (spec_of_style style) b ~p ~a:(a mod p) ~x);
      { builder = b; registers = [ x ]; inits = [ (x, x_val mod p) ]; outputs = [ x ] }
  | "takahashi" ->
      let x = reg "x" n in
      Mod_add.modadd_const_takahashi ~mbu (spec_of_style style) b ~p ~a:(a mod p) ~x;
      { builder = b; registers = [ x ]; inits = [ (x, x_val mod p) ]; outputs = [ x ] }
  | "in-range" ->
      let x = reg "x" n and y = reg "y" n and z = reg "z" n and t = reg "t" 1 in
      Mbu.in_range ~mbu style b ~x ~y ~z ~target:(Register.get t 0);
      { builder = b; registers = [ x; y; z; t ];
        inits = [ (x, x_val); (y, y_val); (z, a); (t, 0) ]; outputs = [ t ] }
  | "cmult" ->
      let c = reg "c" 1 and x = reg "x" n and t = reg "t" n in
      let engine =
        if style = Adder.Draper then Mod_mul.draper_engine ~mbu ()
        else Mod_mul.ripple_engine ~mbu (spec_of_style style)
      in
      Mod_mul.cmult_add engine b ~ctrl:(Register.get c 0) ~a ~p ~x ~target:t;
      { builder = b; registers = [ c; x; t ];
        inits = [ (c, 1); (x, x_val mod p); (t, y_val mod p) ]; outputs = [ t ] }
  | "adder-cla" ->
      let x = reg "x" n and y = reg "y" (n + 1) in
      Adder_cla.add ~mbu b ~x ~y;
      { builder = b; registers = [ x; y ]; inits = [ (x, x_val); (y, y_val) ];
        outputs = [ y ] }
  | "increment" ->
      let y = reg "y" n in
      Increment.apply b y;
      { builder = b; registers = [ y ]; inits = [ (y, y_val) ]; outputs = [ y ] }
  | "modsub" ->
      let x = reg "x" n and y = reg "y" n in
      Mod_add.modsub ~mbu (spec_of_style style) b ~p ~x ~y;
      { builder = b; registers = [ x; y ];
        inits = [ (x, x_val mod p); (y, y_val mod p) ]; outputs = [ y ] }
  | "lookup" ->
      let k = min n 10 in
      let address = reg "a" k and target = reg "t" (max 1 (min n 8)) in
      let data =
        Array.init (1 lsl k) (fun i -> (i * 37 + 5) land ((1 lsl Register.length target) - 1))
      in
      Qrom.lookup b ~address ~target ~data;
      if mbu then Qrom.unlookup b ~address ~target ~data;
      { builder = b; registers = [ address; target ];
        inits = [ (address, x_val land ((1 lsl k) - 1)) ]; outputs = [ target ] }
  | "cmult-windowed" ->
      let c = reg "c" 1 and x = reg "x" n and t = reg "t" n in
      Mod_mul.cmult_add_windowed ~mbu (spec_of_style style) b
        ~ctrl:(Register.get c 0) ~a ~p ~x ~target:t;
      { builder = b; registers = [ c; x; t ];
        inits = [ (c, 1); (x, x_val mod p); (t, y_val mod p) ]; outputs = [ t ] }
  | other -> failwith (Printf.sprintf "unknown circuit %S" other)

let circuits =
  [ "adder"; "sub"; "cadder"; "adder-const"; "compare"; "compare-const";
    "modadd"; "modadd-mixed"; "cmodadd"; "modadd-const"; "takahashi";
    "in-range"; "cmult"; "adder-cla"; "increment"; "modsub"; "lookup";
    "cmult-windowed" ]

(* ------------------------------------------------------------------ *)
(* Common arguments *)

let circuit_arg =
  let doc =
    Printf.sprintf "Circuit family: %s." (String.concat " | " circuits)
  in
  Arg.(value & opt string "modadd" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let style_arg =
  Arg.(value & opt style_conv Adder.Cdkpm
       & info [ "s"; "style" ] ~docv:"STYLE" ~doc:"Adder family.")

let n_arg = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Register width in qubits.")
let p_arg = Arg.(value & opt (some int) None & info [ "p" ] ~doc:"Modulus (default 2^n - 1).")
let a_arg = Arg.(value & opt (some int) None & info [ "a" ] ~doc:"Classical constant.")
let mbu_arg = Arg.(value & flag & info [ "mbu" ] ~doc:"Use measurement-based uncomputation.")
let x_arg = Arg.(value & opt int 3 & info [ "x" ] ~doc:"Value of register x.")
let y_arg = Arg.(value & opt int 5 & info [ "y" ] ~doc:"Value of register y.")

let mode_arg =
  let mode_conv =
    Arg.conv
      ( (fun s ->
          match String.lowercase_ascii s with
          | "worst" -> Ok Counts.Worst
          | "best" -> Ok Counts.Best
          | "expected" -> Ok (Counts.Expected 0.5)
          | _ -> Error (`Msg "mode must be worst | best | expected")),
        fun fmt -> function
          | Counts.Worst -> Format.pp_print_string fmt "worst"
          | Counts.Best -> Format.pp_print_string fmt "best"
          | Counts.Expected p -> Format.fprintf fmt "expected(%g)" p )
  in
  Arg.(value & opt mode_conv (Counts.Expected 0.5)
       & info [ "mode" ] ~doc:"Counting mode: worst | best | expected.")

(* ------------------------------------------------------------------ *)
(* Subcommands *)

let counts_cmd =
  let run circuit style mbu n p a mode =
    let { builder; _ } =
      build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val:0 ~y_val:0
    in
    let c = Builder.to_circuit builder in
    let counts = Circuit.counts ~mode c in
    let depth_mode =
      match mode with Counts.Worst -> `Worst | _ -> `Expected 0.5
    in
    let d = Depth.of_circuit ~mode:depth_mode c in
    Format.printf "circuit     : %s (%s%s), n = %d@." circuit
      (Adder.style_name style) (if mbu then ", MBU" else "") n;
    Format.printf "qubits      : %d (%d inputs + %d ancillas)@."
      (Builder.num_qubits builder) (Builder.input_qubits builder)
      (Builder.ancilla_qubits builder);
    Format.printf "counts      : %a@." Counts.pp counts;
    Format.printf "CNOT+CZ     : %g@." (Counts.cnot_cz counts);
    Format.printf "QFT units   : %.2f (of QFT_%d)@."
      (Counts.qft_units ~m:(n + 1) counts) (n + 1);
    Format.printf "depth       : %.1f (Toffoli depth %.1f)@." d.Depth.total
      d.Depth.toffoli
  in
  let term = Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg $ mode_arg) in
  Cmd.v (Cmd.info "counts" ~doc:"Print resource counts for a circuit family.") term

let draw_cmd =
  let run circuit style mbu n p a =
    let { builder; registers; _ } =
      build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val:0 ~y_val:0
    in
    print_string (Draw.render_registers registers (Builder.to_circuit builder))
  in
  let term = Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg) in
  Cmd.v
    (Cmd.info "draw" ~doc:"Render a small circuit as ASCII art (keep n <= 4).")
    term

let simulate_cmd =
  let run circuit style mbu n p a x_val y_val seed =
    let { builder; inits; outputs; _ } =
      build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val ~y_val
    in
    let rng = Random.State.make [| seed |] in
    let r = Mbu_simulator.Sim.run_builder ~rng builder ~inits in
    List.iter
      (fun (reg, v) -> Format.printf "in  %-4s = %d@." (Register.name reg) v)
      inits;
    List.iter
      (fun reg ->
        match Mbu_simulator.Sim.register_value r.Mbu_simulator.Sim.state reg with
        | Some v -> Format.printf "out %-4s = %d@." (Register.name reg) v
        | None -> Format.printf "out %-4s = (superposed)@." (Register.name reg))
      outputs;
    Format.printf "executed    : %a@." Counts.pp r.Mbu_simulator.Sim.executed
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let term =
    Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg
          $ x_arg $ y_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a circuit on the sparse simulator.") term


let qasm_cmd =
  let run circuit style mbu n p a optimize =
    let { builder; _ } =
      build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val:0 ~y_val:0
    in
    let c = Builder.to_circuit builder in
    let c = if optimize then Optimize.circuit c else c in
    print_string (Qasm.to_string c)
  in
  let optimize_arg =
    Arg.(value & flag
         & info [ "O"; "optimize" ] ~doc:"Run the peephole optimizer first.")
  in
  let term =
    Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg
          $ optimize_arg)
  in
  Cmd.v (Cmd.info "qasm" ~doc:"Export a circuit as OpenQASM 3.") term

let profile_cmd =
  let run circuit style_s mbu n p a mode json shots jobs max_depth no_merge seed
      =
    (* The profile subcommand also accepts the paper's mixed Gidney+CDKPM
       spec (theorem 3.6) as a pseudo-style. *)
    let circuit, style =
      match style_s with
      | "mixed" ->
          if circuit <> "modadd" then
            failwith "--style mixed is only defined for --circuit modadd";
          ("modadd-mixed", Adder.Cdkpm)
      | "vbe" -> (circuit, Adder.Vbe)
      | "gidney" -> (circuit, Adder.Gidney)
      | "draper" -> (circuit, Adder.Draper)
      | _ -> (circuit, Adder.Cdkpm)
    in
    let { builder; inits; _ } =
      build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val:3 ~y_val:5
    in
    let c = Builder.to_circuit builder in
    let root = Trace.of_circuit ~mode c in
    let run_shots_now () =
      let open Mbu_simulator in
      let st = Sim.new_stats () in
      let init =
        Sim.init_registers ~num_qubits:(Builder.num_qubits builder) inits
      in
      let jobs = match jobs with Some j -> j | None -> Sim.default_jobs () in
      let t0 = Unix.gettimeofday () in
      ignore (Sim.run_shots ~seed ~jobs ~stats:st ~shots c ~init);
      (st, jobs, Unix.gettimeofday () -. t0)
    in
    if json then begin
      (* Shots run before the document is emitted, so the counter overlay
         reflects this invocation's runtime telemetry. *)
      if shots > 0 then ignore (run_shots_now ());
      print_string
        (Trace.to_json
           ~counters:(Mbu_telemetry.Telemetry.counters_alist ())
           root)
    end
    else begin
      Format.printf "circuit     : %s (%s%s), n = %d@." circuit style_s
        (if mbu then ", MBU" else "") n;
      Format.printf "qubits      : %d (%d inputs + %d ancillas)@."
        (Builder.num_qubits builder) (Builder.input_qubits builder)
        (Builder.ancilla_qubits builder);
      Format.printf "spans       : %d@." (Instr.count_spans c.Circuit.instrs);
      Format.printf "mode        : %a@.@."
        (fun fmt -> function
          | Counts.Worst -> Format.pp_print_string fmt "worst"
          | Counts.Best -> Format.pp_print_string fmt "best"
          | Counts.Expected pr -> Format.fprintf fmt "expected(%g)" pr)
        mode;
      print_string (Trace.render ~merge:(not no_merge) ?max_depth root);
      if shots > 0 then begin
        let open Mbu_simulator in
        let st, jobs, dt = run_shots_now () in
        let modelled =
          match mode with
          | Counts.Expected pr -> Printf.sprintf "%g" pr
          | Counts.Worst -> "1, worst"
          | Counts.Best -> "0, best"
        in
        Format.printf "@.";
        Format.printf "simulator   : %s backend, jobs = %d, %.0f shots/sec@."
          Sim.parallel_backend jobs
          (float_of_int shots /. Float.max dt 1e-9);
        (match Sim.taken_frequency st with
        | None ->
            Format.printf "branches    : none reached over %d shots@." shots
        | Some f ->
            Format.printf
              "branches    : empirical taken frequency %.3f over %d shots \
               (modelled %s)@."
              f shots modelled;
            List.iter
              (fun bit ->
                match Sim.bit_taken_frequency st bit with
                | Some f -> Format.printf "  if c[%d]   : taken %.3f@." bit f
                | None -> ())
              (Sim.branch_bits st))
      end
    end
  in
  let style_arg =
    let pstyle_conv =
      let parse s =
        match String.lowercase_ascii s with
        | ("vbe" | "cdkpm" | "gidney" | "draper" | "mixed") as s -> Ok s
        | _ -> Error (`Msg "style must be vbe | cdkpm | gidney | draper | mixed")
      in
      Arg.conv (parse, Format.pp_print_string)
    in
    Arg.(value & opt pstyle_conv "cdkpm"
         & info [ "s"; "style" ] ~docv:"STYLE"
             ~doc:"Adder family: vbe | cdkpm | gidney | draper | mixed.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit Chrome trace-event JSON instead of the rendered tree.")
  in
  let shots_arg =
    Arg.(value & opt int 0
         & info [ "shots" ]
             ~doc:"Also Monte-Carlo the circuit this many times and report \
                   empirical conditional-branch frequencies.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"JOBS"
             ~doc:"Worker domains for the Monte-Carlo shots (default: the \
                   runtime's recommended count; outcomes are deterministic \
                   and independent of JOBS).")
  in
  let max_depth_arg =
    Arg.(value & opt (some int) None
         & info [ "max-depth" ] ~doc:"Prune the span tree below this depth.")
  in
  let no_merge_arg =
    Arg.(value & flag
         & info [ "no-merge" ]
             ~doc:"Do not merge same-labelled sibling spans into one row.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let term =
    Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg
          $ mode_arg $ json_arg $ shots_arg $ jobs_arg $ max_depth_arg
          $ no_merge_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-span resource attribution (flat/cumulative gate counts, \
             ancilla peaks, depth) as a tree or Chrome trace JSON.")
    term

(* ------------------------------------------------------------------ *)
(* Fault injection and linting *)

(* Inputs and oracle for a robustness spec of any CLI circuit family: the
   declared output registers of a fault-free run are the reference (valid
   because healthy outputs are outcome-independent), and every input
   register must come back unchanged unless it is also an output. *)
let spec_of_built ~name (built : built) =
  let open Mbu_robustness in
  let base =
    Engine.spec_of_builder ~name built.builder ~inits:built.inits
      ~keep:built.registers ~expect:[]
  in
  let unchanged =
    List.filter
      (fun (reg, _) -> not (List.memq reg built.outputs))
      built.inits
  in
  let expect = unchanged @ Engine.oracle_outputs base built.outputs in
  { base with Engine.expect }

let inject_cmd =
  let run circuit style mbu n p a x_val y_val runs faults_per_run seed jobs
      exhaustive progress =
    let built = build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val ~y_val in
    let spec = spec_of_built ~name:circuit built in
    let open Mbu_robustness in
    let plan =
      if exhaustive then Engine.Exhaustive { paulis = [ Fault.X; Fault.Y; Fault.Z ] }
      else Engine.Random { runs; faults_per_run }
    in
    (* Heartbeat on stderr so stdout stays machine-readable; the counter is
       monotone even when runs complete out of order across domains. *)
    let on_progress =
      if progress <= 0 then None
      else
        Some
          (fun ~completed ~total ->
            if completed mod progress = 0 || completed = total then
              Printf.eprintf "  [%d/%d] campaign runs completed\n%!" completed
                total)
    in
    let r = Engine.run_campaign ~seed ?jobs ?on_progress ~plan spec in
    Format.printf "circuit     : %s (%s%s), n = %d@." circuit
      (Adder.style_name style) (if mbu then ", MBU" else "") n;
    Format.printf "fault sites : %d (%s campaign, %d runs, seed %d)@." r.Engine.sites
      (if exhaustive then "exhaustive" else
         Printf.sprintf "random, %d fault%s/run" faults_per_run
           (if faults_per_run = 1 then "" else "s"))
      r.Engine.runs seed;
    Format.printf "correct     : %5d (fault absorbed)@." r.Engine.correct;
    Format.printf "detected    : %5d (error raised, dirty ancilla or detector)@."
      r.Engine.detected;
    Format.printf "silent      : %5d (wrong output, nothing noticed)@." r.Engine.silent;
    Format.printf "detection   : %.3f of consequential faults; silent rate %.3f@."
      (Engine.detection_rate r) (Engine.silent_rate r);
    List.iter
      (fun plan ->
        Format.printf "  silent example: %s@."
          (String.concat " + " (List.map Fault.to_string plan)))
      r.Engine.silent_examples
  in
  let runs_arg =
    Arg.(value & opt int 200
         & info [ "runs" ] ~doc:"Monte-Carlo fault runs (random campaign).")
  in
  let faults_arg =
    Arg.(value & opt int 1
         & info [ "faults" ] ~doc:"Faults injected per run (random campaign).")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Campaign seed.") in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~doc:"Worker domains (results are JOBS-independent).")
  in
  let exhaustive_arg =
    Arg.(value & flag
         & info [ "exhaustive" ]
             ~doc:"One run per fault site (X, Y and Z on every gate wire, an \
                   outcome flip per measurement, a skip per conditional) \
                   instead of random sampling.")
  in
  let progress_arg =
    Arg.(value & opt int 0
         & info [ "progress" ] ~docv:"N"
             ~doc:"Print a heartbeat line to stderr every N completed runs \
                   (0 disables).")
  in
  let term =
    Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg
          $ x_arg $ y_arg $ runs_arg $ faults_arg $ seed_arg $ jobs_arg
          $ exhaustive_arg $ progress_arg)
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Fault-injection campaign: classify every run as correct, \
             detected, or silently corrupted against the classical oracle.")
    term

let metrics_cmd =
  let run circuit style mbu n p a x_val y_val shots runs seed jobs format =
    let open Mbu_telemetry in
    (* Fresh slate so the exposition covers exactly this invocation's
       build + simulate + campaign, not other module-init noise. *)
    Telemetry.reset ();
    let built = build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val ~y_val in
    let open Mbu_simulator in
    let c = Builder.to_circuit built.builder in
    let init =
      Sim.init_registers ~num_qubits:(Builder.num_qubits built.builder)
        built.inits
    in
    if shots > 0 then ignore (Sim.run_shots ~seed ?jobs ~shots c ~init);
    if runs > 0 then begin
      let spec = spec_of_built ~name:circuit built in
      ignore
        (Mbu_robustness.Engine.run_campaign ~seed ?jobs
           ~plan:(Mbu_robustness.Engine.Random { runs; faults_per_run = 1 })
           spec)
    end;
    print_string
      (match format with
      | "json" -> Telemetry.to_json ()
      | _ -> Telemetry.to_openmetrics ())
  in
  let shots_arg =
    Arg.(value & opt int 200
         & info [ "shots" ]
             ~doc:"Monte-Carlo shots feeding the simulator instruments (0 \
                   skips).")
  in
  let runs_arg =
    Arg.(value & opt int 50
         & info [ "runs" ]
             ~doc:"Fault-campaign runs feeding the robustness instruments (0 \
                   skips).")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"RNG seed.") in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~doc:"Worker domains (metrics are JOBS-independent \
                                 apart from latency buckets).")
  in
  let format_arg =
    let fmt_conv =
      Arg.conv
        ( (fun s ->
            match String.lowercase_ascii s with
            | ("openmetrics" | "json") as s -> Ok s
            | _ -> Error (`Msg "format must be openmetrics | json")),
          Format.pp_print_string )
    in
    Arg.(value & opt fmt_conv "openmetrics"
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Exposition format: openmetrics | json.")
  in
  let term =
    Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg
          $ x_arg $ y_arg $ shots_arg $ runs_arg $ seed_arg $ jobs_arg
          $ format_arg)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Exercise a circuit (build, Monte-Carlo shots, a small fault \
             campaign) and print the process telemetry as OpenMetrics text \
             or JSON.")
    term

let lint_cmd =
  let run circuit style mbu n p a =
    let { builder; _ } =
      build_circuit ~circuit ~style ~mbu ~n ~p ~a ~x_val:0 ~y_val:0
    in
    let report =
      Lint.check ~input_qubits:(Builder.input_qubits builder)
        (Builder.to_circuit builder)
    in
    print_string (Lint.to_string report);
    if not (Lint.is_clean report) then exit 1
  in
  let term =
    Term.(const run $ circuit_arg $ style_arg $ mbu_arg $ n_arg $ p_arg $ a_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static invariant checks: ancilla leaks, conditionals on \
             unwritten bits, use-after-measure, index escapes. Exits 1 on \
             any error finding.")
    term

let () =
  let doc = "quantum modular arithmetic with measurement-based uncomputation" in
  let info = Cmd.info "mbu-cli" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ counts_cmd; draw_cmd; simulate_cmd; qasm_cmd; profile_cmd; inject_cmd;
        metrics_cmd; lint_cmd ]
  in
  (* Structured errors print as one clean line, not a backtrace. *)
  match Cmd.eval_value ~catch:false group with
  | Ok (`Ok () | `Help | `Version) -> exit 0
  | Error `Parse -> exit Cmd.Exit.cli_error
  | Error (`Term | `Exn) -> exit Cmd.Exit.internal_error
  | exception Mbu_error.Error e ->
      prerr_endline ("mbu-cli: " ^ Mbu_error.to_string e);
      exit 2
