(* Span profiling (Trace) and the simulator event hooks: conservation of
   gate counts across the span tree, transparency of spans under adjoint,
   optimization and QASM round-trips, and the Monte-Carlo check that MBU
   conditionals really fire with frequency ~1/2 on superposed inputs. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let mode = Counts.Expected 0.5

(* The Table-1 workhorse: mixed Gidney+CDKPM modular adder. *)
let table1_circuit ?(mbu = true) n =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  let p = (1 lsl (n - 1)) lor (0b1010101 land ((1 lsl (n - 1)) - 1)) lor 1 in
  Mod_add.modadd ~mbu Mod_add.spec_mixed b ~p ~x ~y;
  (b, x, y, p)

let test_span_conservation () =
  let b, _, _, _ = table1_circuit 8 in
  let c = Builder.to_circuit b in
  let root = Trace.of_circuit ~mode c in
  let total = Counts.of_instrs ~mode c.Circuit.instrs in
  (* every gate is attributed to exactly one span: flat sums = root cum =
     the circuit's own counts *)
  Alcotest.(check bool) "root cum = Counts.of_instrs" true
    (Counts.approx_equal root.Trace.cum total);
  Alcotest.(check bool) "sum of flats = root cum" true
    (Counts.approx_equal (Trace.sum_flat root) root.Trace.cum);
  Alcotest.(check (float 1e-9)) "Toffoli conservation" total.Counts.toffoli
    (List.fold_left
       (fun acc e -> acc +. e.Trace.flat.Counts.toffoli)
       0. (Trace.flatten root));
  (* the tree actually has structure: the modadd span and its stages *)
  Alcotest.(check bool) "modadd span present" true
    (Trace.find root "modadd[gidney+cdkpm]+mbu" <> None);
  Alcotest.(check bool) "stage span present" true
    (Trace.find root "modadd.comp_p" <> None)

let test_root_matches_circuit_counts_worst () =
  let b, _, _, _ = table1_circuit ~mbu:false 6 in
  let c = Builder.to_circuit b in
  List.iter
    (fun m ->
      let root = Trace.of_circuit ~mode:m c in
      Alcotest.(check bool) "root cum = circuit counts" true
        (Counts.approx_equal root.Trace.cum (Circuit.counts ~mode:m c)))
    [ Counts.Worst; Counts.Best; Counts.Expected 0.3 ]

let test_adjoint_preserves_spans_and_counts () =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" 5 in
  let y = Builder.fresh_register b "y" 6 in
  Adder.add Adder.Cdkpm b ~x ~y;
  let instrs = (Builder.to_circuit b).Circuit.instrs in
  let adj = Instr.adjoint instrs in
  Alcotest.(check int) "span count preserved" (Instr.count_spans instrs)
    (Instr.count_spans adj);
  Alcotest.(check int) "instr count preserved" (Instr.count_instrs instrs)
    (Instr.count_instrs adj);
  Alcotest.(check bool) "counts preserved" true
    (Counts.approx_equal
       (Counts.of_instrs ~mode instrs)
       (Counts.of_instrs ~mode adj));
  (* adjoint twice is the original program, spans included *)
  Alcotest.(check bool) "involution" true (Instr.adjoint adj = instrs)

let test_optimize_ignores_spans () =
  (* spans must not act as optimization barriers: the optimizer reaches the
     same gate counts whether or not the spans are there *)
  let b, _, _, _ = table1_circuit 6 in
  let c = Builder.to_circuit b in
  let stripped =
    Circuit.make ~num_qubits:c.Circuit.num_qubits ~num_bits:c.Circuit.num_bits
      (Instr.strip_spans c.Circuit.instrs)
  in
  let with_spans = Circuit.counts ~mode (Optimize.circuit c) in
  let without = Circuit.counts ~mode (Optimize.circuit stripped) in
  Alcotest.(check bool) "same optimized counts" true
    (Counts.approx_equal with_spans without);
  (* and optimization keeps the attribution sound *)
  let root = Trace.of_circuit ~mode (Optimize.circuit c) in
  Alcotest.(check bool) "conservation after optimize" true
    (Counts.approx_equal (Trace.sum_flat root) root.Trace.cum)

let test_qasm_roundtrip_keeps_spans () =
  let b, _, _, _ = table1_circuit 5 in
  let c = Builder.to_circuit b in
  let c' = Qasm.of_string (Qasm.to_string c) in
  Alcotest.(check int) "span count survives QASM"
    (Instr.count_spans c.Circuit.instrs)
    (Instr.count_spans c'.Circuit.instrs);
  Alcotest.(check bool) "counts survive QASM" true
    (Counts.approx_equal
       (Counts.of_instrs ~mode c.Circuit.instrs)
       (Counts.of_instrs ~mode c'.Circuit.instrs));
  let root = Trace.of_circuit ~mode c and root' = Trace.of_circuit ~mode c' in
  Alcotest.(check bool) "profile survives QASM" true
    (Counts.approx_equal root.Trace.cum root'.Trace.cum)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render_and_json () =
  let b, _, _, _ = table1_circuit 8 in
  let root = Trace.of_circuit ~mode (Builder.to_circuit b) in
  let txt = Trace.render root in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in render") true (contains txt needle))
    [ "(root)"; "modadd"; "cum Tof"; "anc" ];
  let json = Trace.to_json root in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in json") true (contains json needle))
    [ "traceEvents"; "\"ph\":\"X\""; "toffoli"; "peak_ancillas" ]

(* The acceptance experiment: a superposed input to an MBU modular adder,
   >= 400 shots, each run hitting exactly one measurement-conditioned
   block; the empirical taken frequency must sit at 0.5 +- 0.05. *)
let test_mbu_branch_frequency () =
  let shots = 400 in
  let rng = Random.State.make [| 0x5ead; 17 |] in
  let st = Sim.new_stats () in
  let n = 4 and p = 13 in
  for _ = 1 to shots do
    let b = Builder.create () in
    let x = Builder.fresh_register b "x" n in
    let y = Builder.fresh_register b "y" n in
    Array.iter (fun q -> Builder.h b q) (Register.qubits x);
    Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y;
    let c = Builder.to_circuit b in
    let init =
      Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (y, 11) ]
    in
    ignore (Sim.run ~rng ~on_event:(Sim.stats_hook st) c ~init);
    Sim.record_run st
  done;
  Alcotest.(check int) "runs recorded" shots (Sim.runs st);
  (match Sim.branch_bits st with
  | [ bit ] -> (
      (* one conditional per run *)
      match Sim.bit_taken_frequency st bit with
      | Some f ->
          Alcotest.(check bool)
            (Printf.sprintf "empirical frequency %.3f within 0.5 +- 0.05" f)
            true
            (Float.abs (f -. 0.5) <= 0.05)
      | None -> Alcotest.fail "no branch tally")
  | bits ->
      Alcotest.failf "expected exactly one conditional bit, got %d"
        (List.length bits));
  match Sim.taken_frequency st with
  | Some f ->
      Alcotest.(check bool) "overall frequency near 0.5" true
        (Float.abs (f -. 0.5) <= 0.05)
  | None -> Alcotest.fail "no branches seen"

(* Same acceptance experiment through the parallel multi-shot runner: one
   circuit, 400 shots fanned across domains (or the sequential fallback),
   per-shot tallies merged into one stats value. *)
let test_mbu_branch_frequency_run_shots () =
  let n = 4 and p = 13 in
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  Array.iter (fun q -> Builder.h b q) (Register.qubits x);
  Mod_add.modadd ~mbu:true Mod_add.spec_cdkpm b ~p ~x ~y;
  let st = Sim.new_stats () in
  let shots = 400 in
  let runs =
    Sim.run_shots_builder ~seed:17 ~jobs:4 ~stats:st ~shots b
      ~inits:[ (y, 11) ]
  in
  Alcotest.(check int) "shots returned" shots (Array.length runs);
  Alcotest.(check int) "runs recorded" shots (Sim.runs st);
  match Sim.taken_frequency st with
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "empirical frequency %.3f within 0.5 +- 0.05" f)
        true
        (Float.abs (f -. 0.5) <= 0.05)
  | None -> Alcotest.fail "no branches seen"

let test_sim_span_events_nest () =
  (* Span_enter/Span_exit arrive properly nested and carry the full path. *)
  let b, x, y, _ = table1_circuit 4 in
  let depth = ref 0 and max_depth = ref 0 and enters = ref 0 in
  let on_event = function
    | Sim.Span_enter { path; _ } ->
        incr enters;
        incr depth;
        max_depth := max !max_depth !depth;
        Alcotest.(check int) "path length = nesting depth" !depth
          (List.length path)
    | Sim.Span_exit _ -> decr depth
    | Sim.Gate_applied _ | Sim.Measured _ | Sim.Branch _ -> ()
  in
  ignore (Sim.run_builder ~on_event b ~inits:[ (x, 3); (y, 5) ]);
  Alcotest.(check int) "balanced enter/exit" 0 !depth;
  Alcotest.(check bool) "spans actually nested" true (!max_depth >= 3);
  Alcotest.(check int) "enter count = static span count" !enters
    (Instr.count_spans (Builder.to_circuit b).Circuit.instrs)

let suite =
  ( "trace",
    [ Alcotest.test_case "span conservation (table 1)" `Quick
        test_span_conservation;
      Alcotest.test_case "root = circuit counts, all modes" `Quick
        test_root_matches_circuit_counts_worst;
      Alcotest.test_case "adjoint round-trip" `Quick
        test_adjoint_preserves_spans_and_counts;
      Alcotest.test_case "optimize ignores spans" `Quick
        test_optimize_ignores_spans;
      Alcotest.test_case "qasm round-trip keeps spans" `Quick
        test_qasm_roundtrip_keeps_spans;
      Alcotest.test_case "render and json" `Quick test_render_and_json;
      Alcotest.test_case "mbu branch frequency 0.5 +- 0.05" `Quick
        test_mbu_branch_frequency;
      Alcotest.test_case "mbu branch frequency via run_shots" `Quick
        test_mbu_branch_frequency_run_shots;
      Alcotest.test_case "simulator span events" `Quick
        test_sim_span_events_nest ] )
