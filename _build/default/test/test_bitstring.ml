(* Tests for the classical bit-string reference semantics (paper section 1.3
   and appendix A). *)

open Mbu_bitstring

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Non-negative int generator bounded to a width. *)
let gen_value width = QCheck.Gen.int_bound ((1 lsl width) - 1)

let arb_pair width =
  QCheck.make
    QCheck.Gen.(pair (gen_value width) (gen_value width))
    ~print:(fun (x, y) -> Printf.sprintf "(%d, %d)" x y)

let test_roundtrip () =
  for width = 0 to 16 do
    let v = if width = 0 then 0 else (0x5a5a5a lsr 2) land ((1 lsl width) - 1) in
    check_int "roundtrip" v Bitstring.(to_int (of_int ~width v))
  done

let test_string_conv () =
  let x = Bitstring.of_string "1011" in
  check_int "of_string msb-first" 11 (Bitstring.to_int x);
  check_string "to_string" "1011" (Bitstring.to_string x);
  check_bool "lsb" true (Bitstring.get x 0);
  check_bool "msb" true (Bitstring.get x 3);
  check_bool "bit1" true (Bitstring.get x 1);
  check_bool "bit2" false (Bitstring.get x 2)

let test_maj () =
  (* equation (5): majority of three bits *)
  let cases =
    [ (false, false, false, false); (true, false, false, false);
      (false, true, false, false); (false, false, true, false);
      (true, true, false, true); (true, false, true, true);
      (false, true, true, true); (true, true, true, true) ]
  in
  List.iter
    (fun (a, b, c, expect) -> check_bool "maj" expect (Bitstring.maj a b c))
    cases

let test_add_small () =
  (* definition 2.1's running example: n-bit + n-bit = (n+1)-bit *)
  let add x y width =
    Bitstring.(to_int (add (of_int ~width x) (of_int ~width y)))
  in
  check_int "3+5" 8 (add 3 5 4);
  check_int "15+15 overflow" 30 (add 15 15 4);
  check_int "0+0" 0 (add 0 0 4);
  check_int "1+1 width1" 2 (add 1 1 1)

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches integer addition (def 1.2)" ~count:500
    (arb_pair 16) (fun (x, y) ->
      let width = 16 in
      Bitstring.(to_int (add (of_int ~width x) (of_int ~width y))) = x + y)

let prop_sub_msb_is_lt =
  QCheck.Test.make ~name:"sub MSB = [x<y] (prop A.3)" ~count:500 (arb_pair 14)
    (fun (x, y) ->
      let width = 14 in
      let d = Bitstring.(sub (of_int ~width x) (of_int ~width y)) in
      Bitstring.msb d = (x < y))

let prop_sub_is_signed_difference =
  QCheck.Test.make ~name:"sub = 2's-complement difference (prop A.5)"
    ~count:500 (arb_pair 14) (fun (x, y) ->
      let width = 14 in
      let d = Bitstring.(sub (of_int ~width x) (of_int ~width y)) in
      Bitstring.to_signed_int d = x - y)

let prop_twos_complement_negates =
  QCheck.Test.make ~name:"x + 2's-complement(x) = 0 mod 2^n (prop A.1 basis)"
    ~count:300
    (QCheck.make (gen_value 12) ~print:string_of_int)
    (fun x ->
      let width = 12 in
      let bx = Bitstring.of_int ~width x in
      let s = Bitstring.(add bx (twos_complement bx)) in
      Bitstring.to_int s mod (1 lsl width) = 0)

let prop_ones_complement_sum =
  QCheck.Test.make ~name:"x + ~x = 2^n - 1 (remark A.2)" ~count:300
    (QCheck.make (gen_value 12) ~print:string_of_int)
    (fun x ->
      let width = 12 in
      let bx = Bitstring.of_int ~width x in
      Bitstring.(to_int (add bx (ones_complement bx))) = (1 lsl width) - 1)

let prop_carries_definition =
  QCheck.Test.make ~name:"carry recursion c_{i+1} = maj(x_i,y_i,c_i)"
    ~count:300 (arb_pair 10) (fun (x, y) ->
      let width = 10 in
      let bx = Bitstring.of_int ~width x and by = Bitstring.of_int ~width y in
      let c = Bitstring.carries bx by in
      let ok = ref (not (Bitstring.get c 0)) in
      for i = 0 to width - 1 do
        let expect =
          Bitstring.maj (Bitstring.get bx i) (Bitstring.get by i)
            (Bitstring.get c i)
        in
        if Bitstring.get c (i + 1) <> expect then ok := false
      done;
      !ok)

let prop_signed_roundtrip =
  QCheck.Test.make ~name:"signed encode/decode roundtrip (remark A.4)"
    ~count:300
    (QCheck.make QCheck.Gen.(int_range (-2048) 2047) ~print:string_of_int)
    (fun v ->
      Bitstring.(to_signed_int (of_signed_int ~width:12 v)) = v)

let prop_signed_addition =
  QCheck.Test.make ~name:"signed addition via strings (prop A.6)" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (int_range (-500) 500) (int_range (-500) 500))
       ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b))
    (fun (a, b) ->
      (* 2's-complement addition is exact modulo 2^width: the carry-out of
         the string addition is discarded (prop A.6 with truncation). *)
      let width = 11 in
      let ba = Bitstring.of_signed_int ~width a
      and bb = Bitstring.of_signed_int ~width b in
      Bitstring.(to_signed_int (truncate (add ba bb) width)) = a + b)

let prop_lt_matches =
  QCheck.Test.make ~name:"lt matches unsigned comparison" ~count:300
    (arb_pair 16) (fun (x, y) ->
      let width = 16 in
      Bitstring.(lt (of_int ~width x) (of_int ~width y)) = (x < y))

let test_hamming () =
  check_int "|0|" 0 (Bitstring.hamming_weight_int 0);
  check_int "|7|" 3 (Bitstring.hamming_weight_int 7);
  check_int "|255|" 8 (Bitstring.hamming_weight_int 255);
  check_int "|2^20|" 1 (Bitstring.hamming_weight_int (1 lsl 20));
  check_int "weight of string" 3
    (Bitstring.hamming_weight (Bitstring.of_string "0111"))

let test_pad_truncate () =
  let x = Bitstring.of_int ~width:4 11 in
  check_int "pad preserves value" 11 Bitstring.(to_int (pad x 8));
  check_int "pad length" 8 Bitstring.(length (pad x 8));
  check_int "truncate" 3 Bitstring.(to_int (truncate x 2));
  Alcotest.check_raises "pad shrink rejected"
    (Invalid_argument "Bitstring.pad") (fun () -> ignore (Bitstring.pad x 2))

let test_bounds () =
  let x = Bitstring.of_int ~width:4 5 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitstring.get")
    (fun () -> ignore (Bitstring.get x 4));
  Alcotest.check_raises "of_int negative" (Invalid_argument "Bitstring.of_int")
    (fun () -> ignore (Bitstring.of_int ~width:4 (-1)))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "bitstring",
    [ Alcotest.test_case "int roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "string conversion" `Quick test_string_conv;
      Alcotest.test_case "majority truth table" `Quick test_maj;
      Alcotest.test_case "small additions" `Quick test_add_small;
      Alcotest.test_case "hamming weight" `Quick test_hamming;
      Alcotest.test_case "pad and truncate" `Quick test_pad_truncate;
      Alcotest.test_case "bounds checks" `Quick test_bounds;
      qtest prop_add_matches_int;
      qtest prop_sub_msb_is_lt;
      qtest prop_sub_is_signed_difference;
      qtest prop_twos_complement_negates;
      qtest prop_ones_complement_sum;
      qtest prop_carries_definition;
      qtest prop_signed_roundtrip;
      qtest prop_signed_addition;
      qtest prop_lt_matches ] )
