test/test_mod_add.ml: Adder Adder_cdkpm Alcotest Builder Circuit Complex Counts Helpers List Mbu Mbu_circuit Mbu_core Mbu_simulator Mod_add Printf Random Register Sim State
