lib/core/adder.ml: Adder_cdkpm Adder_draper Adder_gidney Adder_vbe Array Builder Increment Logical_and Mbu_circuit Printf Qft Register
