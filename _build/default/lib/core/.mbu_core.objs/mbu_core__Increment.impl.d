lib/core/increment.ml: Array Builder Logical_and Mbu_circuit Register
