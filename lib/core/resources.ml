open Mbu_circuit

type t = {
  toffoli : float;
  cnot : float;
  cz : float;
  cnot_cz : float;
  x : float;
  h : float;
  phase : float;
  cphase : float;
  measure : float;
  qft_units : float;
  qubits : int;
  ancillas : int;
  total_depth : float;
  toffoli_depth : float;
}

let measure ?(mode = Counts.Expected 0.5) ~n ~build () =
  let b = Builder.create () in
  build b;
  let circuit = Builder.to_circuit b in
  let c = Circuit.counts ~mode circuit in
  let depth_mode =
    match mode with
    | Counts.Worst -> `Worst
    | Counts.Best -> `Expected 0.
    | Counts.Expected p -> `Expected p
  in
  let d = Depth.of_circuit ~mode:depth_mode circuit in
  { toffoli = c.Counts.toffoli;
    cnot = c.Counts.cnot;
    cz = c.Counts.cz;
    cnot_cz = Counts.cnot_cz c;
    x = c.Counts.x;
    h = c.Counts.h;
    phase = c.Counts.phase;
    cphase = c.Counts.cphase;
    measure = c.Counts.measure;
    qft_units = Counts.qft_units ~m:(n + 1) c;
    qubits = Builder.num_qubits b;
    ancillas = Builder.ancilla_qubits b;
    total_depth = d.Depth.total;
    toffoli_depth = d.Depth.toffoli }

let monte_carlo_toffoli ?(shots = 400) ?rng ?(seed = 0xbca) ?jobs ~build () =
  let b = Builder.create () in
  let inits = build b in
  let circuit = Builder.to_circuit b in
  let init =
    Mbu_simulator.Sim.init_registers ~num_qubits:(Builder.num_qubits b) inits
  in
  match rng with
  | Some rng ->
      (* Legacy path: one caller-owned generator shared across shots. *)
      let total = ref 0. in
      for _ = 1 to shots do
        let r = Mbu_simulator.Sim.run ~rng circuit ~init in
        total := !total +. r.Mbu_simulator.Sim.executed.Counts.toffoli
      done;
      !total /. float_of_int shots
  | None ->
      let runs = Mbu_simulator.Sim.run_shots ~seed ?jobs ~shots circuit ~init in
      Array.fold_left
        (fun acc (r : Mbu_simulator.Sim.run) ->
          acc +. r.Mbu_simulator.Sim.executed.Counts.toffoli)
        0. runs
      /. float_of_int shots
