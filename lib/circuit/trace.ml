type entry = {
  label : string;
  path : string list;
  start : float;
  dur : float;
  flat : Counts.t;
  cum : Counts.t;
  peak_ancillas : int;
  total_depth : float;
  toffoli_depth : float;
  calls : int;
  children : entry list;
}

let root_label = "(root)"

let depth_mode = function
  | Counts.Worst -> `Worst
  | Counts.Best -> `Expected 0.
  | Counts.Expected p -> `Expected p

let cum_of flat children =
  List.fold_left (fun acc e -> Counts.add acc e.cum) flat children

(* Memo of one shared node's profile, computed once in a neutral frame
   (clock 0, weight 1, empty path). Every reference rebases it into its own
   context: starts shift by the reference's clock, counts and durations
   scale by the enclosing branch weight, paths get the reference's prefix.
   When the branch weight is a power of two (Worst/Best/Expected 0.5) all
   quantities are integers scaled by exact powers of two, so the rescaling
   is exact and the rebased entries are bit-identical to an inline walk; a
   non-dyadic branch weight (e.g. Expected 0.3) pollutes every accumulator
   with rounding, so those modes inline-walk all references instead. *)
type node_memo = { m_flat : Counts.t; m_dur : float; m_children : entry list }

type clock = { mutable c : float }

let profile ?(mode = Counts.Expected 0.5) ?(span_depth = true) instrs =
  let branch_weight =
    match mode with Counts.Worst -> 1. | Best -> 0. | Expected p -> p
  in
  let depth_of body =
    (* Per-span isolated ASAP depth is the one metric that cannot be
       memoized across contexts cheaply (ancestor spans re-walk their whole
       expansion); [~span_depth:false] skips it for cryptographic-scale
       sweeps where only counts/attribution matter. *)
    if span_depth then Depth.of_instrs ~mode:(depth_mode mode) body
    else { Depth.total = 0.; toffoli = 0. }
  in
  (* [clock] is the running weighted instruction count — the span timeline's
     time axis; a gate or measurement under branch probability [w] advances
     it by [w]. *)
  (* an all-float record keeps the clock unboxed: updating a [float ref]
     allocates a fresh box per gate, which dominates large walks *)
  let clock = { c = 0. } in
  let memo : (int, node_memo) Hashtbl.t = Hashtbl.create 64 in
  let use_memo = branch_weight = 0. || fst (Float.frexp branch_weight) = 0.5 in
  (* Number of syntactic Call sites per node in the deduplicated walk (each
     distinct body visited once, so the prepass is O(dag), allocation-free).
     A node referenced from a single site gains nothing from the
     neutral-frame memo — memoize-then-rebase would materialize its span
     entries twice — so the walk below inlines those and memoizes only
     nodes with two or more sites. *)
  let occurrences : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec count_sites = function
    | Instr.Gate _ | Instr.Measure _ -> ()
    | Instr.If_bit { body; _ } | Instr.Span { body; _ } ->
        List.iter count_sites body
    | Instr.Call node ->
        let n = try Hashtbl.find occurrences node.Instr.id with Not_found -> 0 in
        Hashtbl.replace occurrences node.Instr.id (n + 1);
        if n = 0 then List.iter count_sites node.Instr.body
  in
  if use_memo then List.iter count_sites instrs;
  let rec rebase ~w ~at ~path e =
    if w = 1. then
      { e with
        path = path @ e.path;
        start = at +. e.start;
        children = List.map (rebase ~w ~at ~path) e.children }
    else
      { e with
        path = path @ e.path;
        start = at +. (w *. e.start);
        dur = w *. e.dur;
        flat = Counts.scale w e.flat;
        cum = Counts.scale w e.cum;
        children = List.map (rebase ~w ~at ~path) e.children }
  in
  (* returns (flat counts, children in emission order) for one block *)
  let rec walk path w instrs =
    let flat, rev_children =
      List.fold_left
        (fun (flat, kids) i ->
          match i with
          | Instr.Gate g ->
              clock.c <- clock.c +. w;
              (Counts.add flat (Counts.scale w (Counts.of_gate g)), kids)
          | Instr.Measure _ ->
              clock.c <- clock.c +. w;
              (Counts.add flat (Counts.scale w { Counts.zero with measure = 1. }),
               kids)
          | Instr.If_bit { body; _ } ->
              (* a conditional block is not a span: its contents attribute to
                 the enclosing span, discounted by the branch probability *)
              let bflat, bkids = walk path (w *. branch_weight) body in
              (Counts.add flat bflat, List.rev_append bkids kids)
          | Instr.Span { label; peak_ancillas; body } ->
              let start = clock.c in
              let cpath = path @ [ label ] in
              let bflat, bkids = walk cpath w body in
              let d = depth_of body in
              let e =
                { label; path = cpath; start; dur = clock.c -. start;
                  flat = bflat; cum = cum_of bflat bkids; peak_ancillas;
                  total_depth = d.Depth.total; toffoli_depth = d.Depth.toffoli;
                  calls = 1; children = bkids }
              in
              (flat, e :: kids)
          | Instr.Call node ->
              if
                use_memo
                && (try Hashtbl.find occurrences node.Instr.id
                    with Not_found -> 0)
                   > 1
              then begin
                let m = memo_of node in
                let at = clock.c in
                clock.c <- at +. (w *. m.m_dur);
                let bkids = List.map (rebase ~w ~at ~path) m.m_children in
                let mflat =
                  if w = 1. then m.m_flat else Counts.scale w m.m_flat
                in
                (Counts.add flat mflat, List.rev_append bkids kids)
              end
              else
                let bflat, bkids = walk path w node.Instr.body in
                (Counts.add flat bflat, List.rev_append bkids kids))
        (Counts.zero, []) instrs
    in
    (flat, List.rev rev_children)
  and memo_of node =
    match Hashtbl.find_opt memo node.Instr.id with
    | Some m -> m
    | None ->
        let saved = clock.c in
        clock.c <- 0.;
        let flat, children = walk [] 1. node.Instr.body in
        let m = { m_flat = flat; m_dur = clock.c; m_children = children } in
        clock.c <- saved;
        Hashtbl.add memo node.Instr.id m;
        m
  in
  let flat, children = walk [] 1. instrs in
  let d =
    if span_depth then Depth.of_instrs ~mode:(depth_mode mode) instrs
    else { Depth.total = 0.; toffoli = 0. }
  in
  let peak =
    List.fold_left (fun m e -> max m e.peak_ancillas) 0 children
  in
  { label = root_label; path = []; start = 0.; dur = clock.c; flat;
    cum = cum_of flat children; peak_ancillas = peak;
    total_depth = d.Depth.total; toffoli_depth = d.Depth.toffoli; calls = 1;
    children }

let of_circuit ?mode ?span_depth (c : Circuit.t) =
  profile ?mode ?span_depth c.Circuit.instrs

let rec flatten e = e :: List.concat_map flatten e.children

let find root label =
  List.find_opt (fun e -> e.label = label) (flatten root)

let sum_flat root =
  List.fold_left (fun acc e -> Counts.add acc e.flat) Counts.zero (flatten root)

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Collapse runs of same-labelled siblings (e.g. the n [and.compute] leaves
   of a Gidney adder) into one row: counts and durations sum, ancilla peaks
   max, children merge recursively. *)
let rec merge_siblings entries =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.label with
      | None ->
          Hashtbl.replace tbl e.label e;
          order := e.label :: !order
      | Some m ->
          Hashtbl.replace tbl e.label
            { m with
              dur = m.dur +. e.dur;
              flat = Counts.add m.flat e.flat;
              cum = Counts.add m.cum e.cum;
              peak_ancillas = max m.peak_ancillas e.peak_ancillas;
              total_depth = m.total_depth +. e.total_depth;
              toffoli_depth = m.toffoli_depth +. e.toffoli_depth;
              calls = m.calls + e.calls;
              children = m.children @ e.children })
    entries;
  List.rev_map
    (fun label ->
      let m = Hashtbl.find tbl label in
      { m with children = merge_siblings m.children })
    !order

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let render ?(merge = true) ?max_depth root =
  let root = if merge then { root with children = merge_siblings root.children } else root in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %5s %9s %9s %7s %7s %5s %9s %9s\n" "span" "calls"
       "flat Tof" "cum Tof" "CNOT+CZ" "X" "anc" "Tof-depth" "gates");
  let rec go prefix child_prefix e =
    let name = prefix ^ e.label in
    let name =
      if String.length name > 44 then String.sub name 0 41 ^ "..." else name
    in
    Buffer.add_string buf
      (Printf.sprintf "%-44s %5d %9s %9s %7s %7s %5d %9s %9s\n" name e.calls
         (fnum e.flat.Counts.toffoli)
         (fnum e.cum.Counts.toffoli)
         (fnum (Counts.cnot_cz e.cum))
         (fnum e.cum.Counts.x)
         e.peak_ancillas
         (fnum e.toffoli_depth)
         (fnum (Counts.total_gates e.cum +. e.cum.Counts.measure)));
    let deep =
      match max_depth with
      | Some d -> List.length e.path >= d
      | None -> false
    in
    if not deep then begin
      let rec kids = function
        | [] -> ()
        | [ last ] -> go (child_prefix ^ "`- ") (child_prefix ^ "   ") last
        | k :: rest ->
            go (child_prefix ^ "|- ") (child_prefix ^ "|  ") k;
            kids rest
      in
      kids e.children
    end
  in
  go "" "" root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* One complete ("ph":"X") event per span, on a weighted-gate-count time
   axis; loads directly into chrome://tracing / Perfetto / speedscope.
   [counters] (e.g. [Telemetry.counters_alist ()]) are appended as counter
   ("ph":"C") events pinned to the root span's end, so runtime metrics
   overlay the span timeline in the same viewer. *)
let to_json ?(counters = []) root =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let rec emit e =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf
         "\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
          \"ts\":%s,\"dur\":%s,\"args\":{\
          \"path\":\"%s\",\
          \"toffoli\":%s,\"cnot_cz\":%s,\"x\":%s,\"measure\":%s,\
          \"flat_toffoli\":%s,\"flat_cnot_cz\":%s,\
          \"peak_ancillas\":%d,\"toffoli_depth\":%s,\"total_depth\":%s}}"
         (json_escape e.label)
         (jnum e.start) (jnum e.dur)
         (json_escape (String.concat "/" e.path))
         (jnum e.cum.Counts.toffoli)
         (jnum (Counts.cnot_cz e.cum))
         (jnum e.cum.Counts.x)
         (jnum e.cum.Counts.measure)
         (jnum e.flat.Counts.toffoli)
         (jnum (Counts.cnot_cz e.flat))
         e.peak_ancillas
         (jnum e.toffoli_depth)
         (jnum e.total_depth));
    List.iter emit e.children
  in
  emit root;
  let ts = jnum (root.start +. root.dur) in
  List.iter
    (fun (name, v) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"telemetry\",\"ph\":\"C\",\"pid\":1,\
            \"tid\":1,\"ts\":%s,\"args\":{\"value\":%s}}"
           (json_escape name) ts (jnum v)))
    counters;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
