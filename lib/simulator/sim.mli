(** Circuit execution.

    Runs an adaptive circuit (gates, measurements, classically controlled
    blocks) against a {!State.t}, drawing measurement outcomes from an RNG.
    Besides the final state it reports the classical outcome bits and the
    gate counts that were {e actually executed} — conditional blocks counted
    only when taken — which is what the Monte-Carlo validation of the
    paper's "in expectation" costs averages over.

    The runner works on a private copy of the initial state, so it can use
    the in-place state kernels; the caller's [init] is never mutated and can
    be shared across shots. *)

open Mbu_circuit

type run = {
  state : State.t;
  bits : bool array;  (** classical bits, indexed by measurement bit id *)
  executed : Counts.t;  (** gates actually executed in this run *)
  injected : int;
      (** injected faults that actually fired this run: Paulis whose
          position was reached, outcome flips applied, conditionals whose
          skip changed behaviour. 0 when no fault plan was given. *)
}

(** Execution event, reported to the [?on_event] hook in program order.
    [Branch] fires for every [If_bit] reached, taken or not — the raw
    material for checking the paper's "each conditional fires with
    probability 1/2" cost model empirically. Span events carry the full
    label path from the root. *)
type event =
  | Gate_applied of Gate.t
  | Measured of { qubit : Gate.qubit; bit : int; outcome : bool }
  | Branch of { bit : int; value : bool; taken : bool }
  | Span_enter of { label : string; path : string list }
  | Span_exit of { label : string; path : string list }

(** Which state backend executes the circuit. All three draw measurement
    outcomes from the same RNG stream and agree on every run (the
    backend-equivalence property tests enforce this); they differ only in
    speed.

    - [Fast] (default): classical track for single-basis-vector states
      (O(1) permutation gates, zero allocation) with automatic promotion to
      the in-place sparse kernel under superposition and demotion back.
    - [Sparse]: pin the state to the in-place sparse kernel for the whole
      run, even where the classical track would apply.
    - [Reference]: the seed simulator's pure rebuild-per-gate algorithms —
      the oracle for equivalence tests and the benchmark baseline. *)
type engine = Fast | Sparse | Reference

val run :
  ?rng:Random.State.t -> ?on_event:(event -> unit) -> ?engine:engine ->
  ?force:(int -> bool option) -> ?faults:Fault.t list -> ?max_terms:int ->
  Circuit.t -> init:State.t -> run
(** [rng] defaults to a {e freshly seeded} deterministic generator per call:
    two unseeded runs of the same circuit give the same outcomes, and an
    unseeded run never perturbs later ones. [on_event] is called
    synchronously after each instruction executes (and for each conditional
    block considered); it must not mutate the run.

    [force bit] pins measurement outcomes: [Some v] projects the measured
    qubit onto [v] instead of sampling (raising {!Mbu_circuit.Mbu_error.Error}
    if [v] has probability zero), [None] falls back to the RNG. Classical
    bits are 1:1 with measurements, so [bit] addresses each measurement
    uniquely — this is what drives {e both} arms of every MBU conditional
    deterministically.

    [faults] injects the given {!Mbu_circuit.Fault.t} plan: Pauli and skip
    faults fire when execution reaches their static position (see [Fault]
    for the numbering — branches not taken advance the position past their
    bodies), outcome flips corrupt the {e recorded} bit of the matching
    measurement while the projection (and a reset's conditional X, which
    keys on the recorded value) follow the fault. Injected Paulis are not
    counted in [executed].

    [max_terms] bounds the state's sparse support; the first gate that
    leaves more than this many table entries raises a
    [Mbu_error.Resource_limit] carrying the enclosing span path — a clean
    failure instead of thrashing toward OOM on an accidentally dense
    circuit. *)

val init_registers : num_qubits:int -> (Register.t * int) list -> State.t
(** Basis state with each register holding the given unsigned value (LSB
    first); unlisted wires start at |0>. Raises {!Mbu_circuit.Mbu_error.Error}
    (with the register name attached) if a value does not fit its register —
    including registers of 62 bits and wider, which the seed guard
    skipped. *)

val run_builder :
  ?rng:Random.State.t -> ?on_event:(event -> unit) -> ?engine:engine ->
  ?force:(int -> bool option) -> ?faults:Fault.t list -> ?max_terms:int ->
  Builder.t -> inits:(Register.t * int) list -> run
(** Convert the builder to a circuit and run it on a basis initialization. *)

(** {1 Monte-Carlo branch statistics}

    A mutable tally designed to plug into [?on_event] or {!run_shots}:
    {[
      let st = Sim.new_stats () in
      ignore (Sim.run_shots ~stats:st ~shots:400 c ~init);
      (* Sim.taken_frequency st ≈ 0.5 for MBU circuits *)
    ]} *)

type stats

val new_stats : unit -> stats

val stats_hook : stats -> event -> unit
(** Fold one event into the tally; pass [stats_hook st] as [on_event]. *)

val record_run : stats -> unit
val runs : stats -> int

val merge_stats : into:stats -> stats -> unit
(** Add the counters of the second tally into [into]. Used by the parallel
    runner to combine per-shot tallies; merging is order-independent. *)

val taken_frequency : stats -> float option
(** Fraction of all conditional blocks (across all bits and runs) that were
    taken; [None] before any branch was seen. The paper's MBU cost model
    predicts 0.5. *)

val bit_taken_frequency : stats -> int -> float option
(** Taken fraction for the conditionals guarded by one classical bit. *)

val measured_one_frequency : stats -> int -> float option
(** Fraction of measurements of the given bit that returned 1. *)

val branch_bits : stats -> int list
(** Classical bits that guarded at least one conditional, sorted. *)

(** {1 Parallel multi-shot runner} *)

val default_jobs : unit -> int
(** The fan-out {!run_shots} uses when [?jobs] is omitted: the runtime's
    recommended domain count on OCaml 5, 1 on the sequential fallback. *)

val parallel_backend : string
(** ["domains"] or ["sequential"] — which {!Parallel} implementation this
    binary was built with. *)

val run_shots :
  ?seed:int -> ?jobs:int -> ?stats:stats -> ?engine:engine ->
  ?force:(int -> bool option) -> ?faults:Fault.t list -> ?max_terms:int ->
  shots:int -> Circuit.t -> init:State.t -> run array
(** Run the circuit [shots] times and return the runs in shot order. Shot
    [i] draws its outcomes from a generator derived only from [seed] and
    [i], so the result array (states, bits, executed counts) is identical
    for every [jobs] value — shots are merely evaluated concurrently across
    domains when the runtime supports it. When [stats] is given, each
    shot's branch/outcome events are tallied and merged into it (equivalent
    to running sequentially with [stats_hook]). *)

val run_shots_builder :
  ?seed:int -> ?jobs:int -> ?stats:stats -> ?engine:engine ->
  ?force:(int -> bool option) -> ?faults:Fault.t list -> ?max_terms:int ->
  shots:int -> Builder.t -> inits:(Register.t * int) list -> run array

val register_value : State.t -> Register.t -> int option
(** The register's value if it is definite across the whole superposition. *)

val register_value_exn : State.t -> Register.t -> int

val wires_zero : State.t -> except:Register.t list -> bool
(** True when every wire outside the given registers is definitely |0> —
    the "all ancillas correctly uncomputed" check. *)

val sample_register :
  ?rng:Random.State.t -> ?seed:int -> ?jobs:int ->
  shots:int -> Mbu_circuit.Circuit.t -> init:State.t -> Mbu_circuit.Register.t ->
  (int * int) list
(** Run the circuit [shots] times and, for each run, sample the register in
    the computational basis from the final state; returns
    (value, occurrences) sorted by decreasing count (ties by value). With
    [?rng] the legacy sequential path shares the generator across shots;
    without it each shot is independently seeded from [seed] and the shot
    index and the shots may run in parallel ([jobs] defaults to
    {!default_jobs}), with [jobs]-independent output. *)

val unitary_column : Circuit.t -> int -> State.t
(** [unitary_column c j] is [U |j>] for a measurement-free circuit — column
    [j] of the circuit unitary. Raises [Invalid_argument] on adaptive
    circuits. Useful for exact unitary-equality tests on small widths. *)

val circuits_equal_unitary : ?dim_qubits:int -> Circuit.t -> Circuit.t -> bool
(** Exact unitary equality up to global phase, checked column by column
    (fidelity 1 on every basis input {e and} matching relative phases via a
    shared reference column). Only for measurement-free circuits of small
    width ([dim_qubits] defaults to the wider circuit). *)
