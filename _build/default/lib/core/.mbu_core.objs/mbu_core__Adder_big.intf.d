lib/core/adder_big.mli: Adder Bitstring Builder Gate Mbu_bitstring Mbu_circuit Register
