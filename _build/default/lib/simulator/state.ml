open Mbu_circuit

type t = { num_qubits : int; amps : (int, Complex.t) Hashtbl.t }

let eps = 1e-12
let num_qubits s = s.num_qubits

let check_range ~num_qubits idx =
  if num_qubits < 0 || num_qubits > 62 then invalid_arg "State: qubit count";
  if idx < 0 || (num_qubits < 62 && idx >= 1 lsl num_qubits) then
    invalid_arg "State: basis index out of range"

let basis ~num_qubits idx =
  check_range ~num_qubits idx;
  let amps = Hashtbl.create 16 in
  Hashtbl.replace amps idx Complex.one;
  { num_qubits; amps }

let of_alist ~num_qubits l =
  let amps = Hashtbl.create (List.length l) in
  List.iter
    (fun (idx, a) ->
      check_range ~num_qubits idx;
      if Hashtbl.mem amps idx then invalid_arg "State.of_alist: repeated index";
      Hashtbl.replace amps idx a)
    l;
  { num_qubits; amps }

let to_alist s =
  Hashtbl.fold (fun k v acc -> if Complex.norm v > eps then (k, v) :: acc else acc)
    s.amps []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let num_terms s = List.length (to_alist s)

let norm2 s = Hashtbl.fold (fun _ v acc -> acc +. Complex.norm2 v) s.amps 0.
let norm s = sqrt (norm2 s)

let map_amps s f =
  let amps = Hashtbl.create (Hashtbl.length s.amps) in
  Hashtbl.iter
    (fun k v ->
      let v = f k v in
      if Complex.norm v > eps then Hashtbl.replace amps k v)
    s.amps;
  { s with amps }

let normalize s =
  let n = norm s in
  if n = 0. then invalid_arg "State.normalize: zero state";
  map_amps s (fun _ v -> Complex.div v { re = n; im = 0. })

let bit idx q = (idx lsr q) land 1 = 1

(* Permutation gates: relabel basis indices. *)
let permute s f =
  let amps = Hashtbl.create (Hashtbl.length s.amps) in
  Hashtbl.iter (fun k v -> Hashtbl.replace amps (f k) v) s.amps;
  { s with amps }

let phase_of p = Complex.polar 1.0 (Phase.to_radians p)

let apply_gate s g =
  match g with
  | Gate.X q -> permute s (fun k -> k lxor (1 lsl q))
  | Gate.Cnot { control; target } ->
      permute s (fun k -> if bit k control then k lxor (1 lsl target) else k)
  | Gate.Toffoli { c1; c2; target } ->
      permute s (fun k ->
          if bit k c1 && bit k c2 then k lxor (1 lsl target) else k)
  | Gate.Swap (a, b) ->
      permute s (fun k ->
          if bit k a <> bit k b then k lxor (1 lsl a) lxor (1 lsl b) else k)
  | Gate.Z q -> map_amps s (fun k v -> if bit k q then Complex.neg v else v)
  | Gate.Cz (a, b) ->
      map_amps s (fun k v -> if bit k a && bit k b then Complex.neg v else v)
  | Gate.Phase (q, p) ->
      let w = phase_of p in
      map_amps s (fun k v -> if bit k q then Complex.mul w v else v)
  | Gate.Cphase { control; target; phase } ->
      let w = phase_of phase in
      map_amps s (fun k v ->
          if bit k control && bit k target then Complex.mul w v else v)
  | Gate.H q ->
      let r = 1.0 /. sqrt 2.0 in
      let amps = Hashtbl.create (2 * Hashtbl.length s.amps) in
      let accum k v =
        if Complex.norm v > eps then
          match Hashtbl.find_opt amps k with
          | Some prev ->
              let sum = Complex.add prev v in
              if Complex.norm sum > eps then Hashtbl.replace amps k sum
              else Hashtbl.remove amps k
          | None -> Hashtbl.replace amps k v
      in
      Hashtbl.iter
        (fun k v ->
          let scaled = Complex.mul { re = r; im = 0. } v in
          if bit k q then begin
            accum (k lxor (1 lsl q)) scaled;
            accum k (Complex.neg scaled)
          end
          else begin
            accum k scaled;
            accum (k lxor (1 lsl q)) scaled
          end)
        s.amps;
      { s with amps }

let prob_bit_one s q =
  let p =
    Hashtbl.fold (fun k v acc -> if bit k q then acc +. Complex.norm2 v else acc)
      s.amps 0.
  in
  p /. norm2 s

let project s ~qubit ~value =
  let amps = Hashtbl.create (Hashtbl.length s.amps) in
  Hashtbl.iter (fun k v -> if bit k qubit = value then Hashtbl.replace amps k v) s.amps;
  let s = { s with amps } in
  if norm s < eps then invalid_arg "State.project: zero-probability outcome";
  normalize s

let set_bit_zero s ~qubit = permute s (fun k -> k land lnot (1 lsl qubit))

let fidelity a b =
  if a.num_qubits <> b.num_qubits then invalid_arg "State.fidelity";
  let na = norm a and nb = norm b in
  let dot =
    Hashtbl.fold
      (fun k va acc ->
        match Hashtbl.find_opt b.amps k with
        | Some vb -> Complex.add acc (Complex.mul (Complex.conj va) vb)
        | None -> acc)
      a.amps Complex.zero
  in
  Complex.norm dot /. (na *. nb)

let classical_value s =
  match to_alist s with [ (k, _) ] -> Some k | _ -> None

let bit_value s q =
  match to_alist s with
  | [] -> None
  | (k0, _) :: rest ->
      let v = bit k0 q in
      if List.for_all (fun (k, _) -> bit k q = v) rest then Some v else None

let pp fmt s =
  let entries = to_alist s in
  let bits k =
    String.init s.num_qubits (fun i ->
        if bit k (s.num_qubits - 1 - i) then '1' else '0')
  in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (k, (v : Complex.t)) ->
      Format.fprintf fmt "|%s> -> %.4f%+.4fi@," (bits k) v.re v.im)
    entries;
  Format.fprintf fmt "@]"
