type t = { num_qubits : int; num_bits : int; instrs : Instr.t list }

let make ?num_qubits ?num_bits instrs =
  Instr.iter_gates Gate.validate instrs;
  let min_q = Instr.max_qubit instrs + 1 and min_b = Instr.max_bit instrs + 1 in
  let num_qubits = Option.value num_qubits ~default:min_q in
  let num_bits = Option.value num_bits ~default:min_b in
  if num_qubits < min_q || num_bits < min_b then
    invalid_arg "Circuit.make: declared width smaller than wires used";
  { num_qubits; num_bits; instrs }

let adjoint c = { c with instrs = Instr.adjoint c.instrs }
let counts ?(mode = Counts.Worst) c = Counts.of_instrs ~mode c.instrs
let num_gates c = Instr.count_instrs c.instrs

let is_unitary c =
  let rec unit = function
    | [] -> true
    | Instr.Gate _ :: rest -> unit rest
    | Instr.Span { body; _ } :: rest -> unit body && unit rest
    | (Instr.Measure _ | Instr.If_bit _) :: _ -> false
  in
  unit c.instrs

let append a b =
  { num_qubits = max a.num_qubits b.num_qubits;
    num_bits = max a.num_bits b.num_bits;
    instrs = a.instrs @ b.instrs }

let pp fmt c =
  Format.fprintf fmt "@[<v>circuit: %d qubits, %d bits@,%a@]" c.num_qubits
    c.num_bits
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Instr.pp)
    c.instrs
