(* Process-wide metrics registry.

   Three instrument kinds — monotonic counters, gauges with high-water
   tracking, and fixed-bucket log2-scale histograms — all safe to update
   from any domain. Counters and histograms stripe their cells by
   [Shard.index] (the running domain's id on OCaml 5, one stripe on 4.14)
   and merge on read, so hot-path updates never contend across shot
   workers; gauges are updated rarely (per alloc/free, per run) and use a
   single atomic cell plus a CAS-max high-water mark.

   Reads (snapshot / exposition) race benignly with writers: a snapshot
   taken mid-update is a consistent *possible* state of each cell, which
   is all a metrics endpoint promises. *)

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Striped atomic cells *)

type cells = int Atomic.t array

let make_cells () = Array.init Shard.stripes (fun _ -> Atomic.make 0)
let bump cells n = ignore (Atomic.fetch_and_add cells.(Shard.index ()) n)
let cells_total cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells
let cells_reset cells = Array.iter (fun c -> Atomic.set c 0) cells

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

(* ------------------------------------------------------------------ *)
(* Instruments *)

type counter = { c_name : string; c_help : string; c_cells : cells }

type gauge = {
  g_name : string;
  g_help : string;
  g_value : int Atomic.t;
  g_hwm : int Atomic.t;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_base : float;  (* upper bound of bucket 0 *)
  h_bounds : float array;  (* upper bounds; length = buckets - 1, last
                              bucket is the +Inf overflow *)
  h_buckets : cells array;
  h_sum : float Atomic.t array;  (* striped like the buckets *)
}

type instrument =
  | Counter_i of counter
  | Gauge_i of gauge
  | Histogram_i of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name make classify =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> (
          match classify i with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Telemetry: %S is already registered as another kind" name))
      | None ->
          let i, v = make () in
          Hashtbl.replace registry name i;
          v)

(* ------------------------------------------------------------------ *)
(* Counters *)

let counter ?(help = "") name =
  register name
    (fun () ->
      let c = { c_name = name; c_help = help; c_cells = make_cells () } in
      (Counter_i c, c))
    (function Counter_i c -> Some c | _ -> None)

let incr c = bump c.c_cells 1

let add c n =
  if n < 0 then invalid_arg "Telemetry.add: counters are monotonic";
  bump c.c_cells n

let counter_value c = cells_total c.c_cells

(* ------------------------------------------------------------------ *)
(* Gauges *)

let gauge ?(help = "") name =
  register name
    (fun () ->
      let g =
        { g_name = name; g_help = help; g_value = Atomic.make 0;
          g_hwm = Atomic.make 0 }
      in
      (Gauge_i g, g))
    (function Gauge_i g -> Some g | _ -> None)

let set_gauge g v =
  Atomic.set g.g_value v;
  atomic_max g.g_hwm v

let add_gauge g d =
  let v = d + Atomic.fetch_and_add g.g_value d in
  atomic_max g.g_hwm v

let observe_max g v = atomic_max g.g_hwm v
let gauge_value g = Atomic.get g.g_value
let gauge_highwater g = Atomic.get g.g_hwm

(* ------------------------------------------------------------------ *)
(* Histograms *)

let histogram ?(help = "") ?(base = 1e-6) ?(buckets = 28) name =
  if buckets < 2 then invalid_arg "Telemetry.histogram: need >= 2 buckets";
  if not (base > 0.) then invalid_arg "Telemetry.histogram: base must be > 0";
  register name
    (fun () ->
      let h =
        { h_name = name; h_help = help; h_base = base;
          h_bounds = Array.init (buckets - 1) (fun i ->
              base *. Float.of_int (1 lsl i));
          h_buckets = Array.init buckets (fun _ -> make_cells ());
          h_sum = Array.init Shard.stripes (fun _ -> Atomic.make 0.) }
      in
      (Histogram_i h, h))
    (function Histogram_i h -> Some h | _ -> None)

(* Bucket i covers (base * 2^(i-1), base * 2^i]; bucket 0 takes everything
   <= base (including zero and negatives, which the latency/allocation
   instruments never produce but which must not crash), the last bucket is
   the +Inf overflow. *)
let bucket_index h v =
  let nb = Array.length h.h_buckets in
  if not (v > h.h_base) then 0 (* also catches NaN *)
  else if not (Float.is_finite v) then nb - 1 (* +Inf overflow bucket;
      int_of_float infinity is unspecified *)
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. h.h_base))) in
    if i >= nb then nb - 1 else if i < 1 then 1 else i

let observe h v =
  bump h.h_buckets.(bucket_index h v) 1;
  atomic_add_float h.h_sum.(Shard.index ()) v

let time h f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> observe h (now () -. t0)) f

let histogram_count h =
  Array.fold_left (fun acc cells -> acc + cells_total cells) 0 h.h_buckets

let histogram_sum h =
  Array.fold_left (fun acc a -> acc +. Atomic.get a) 0. h.h_sum

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type sample =
  | Counter_sample of { name : string; help : string; value : int }
  | Gauge_sample of { name : string; help : string; value : int; highwater : int }
  | Histogram_sample of {
      name : string;
      help : string;
      count : int;
      sum : float;
      buckets : (float * int) array;  (* (le, cumulative count); last le
                                         is infinity *)
    }

let sample_name = function
  | Counter_sample { name; _ }
  | Gauge_sample { name; _ }
  | Histogram_sample { name; _ } -> name

let sample_of = function
  | Counter_i c ->
      Counter_sample { name = c.c_name; help = c.c_help;
                       value = counter_value c }
  | Gauge_i g ->
      Gauge_sample { name = g.g_name; help = g.g_help;
                     value = gauge_value g; highwater = gauge_highwater g }
  | Histogram_i h ->
      let nb = Array.length h.h_buckets in
      let cum = ref 0 in
      let buckets =
        Array.init nb (fun i ->
            cum := !cum + cells_total h.h_buckets.(i);
            let le =
              if i = nb - 1 then Float.infinity else h.h_bounds.(i)
            in
            (le, !cum))
      in
      Histogram_sample { name = h.h_name; help = h.h_help; count = !cum;
                         sum = histogram_sum h; buckets }

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold (fun _ i acc -> sample_of i :: acc) registry [])
  |> List.sort (fun a b -> compare (sample_name a) (sample_name b))

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter_i c -> cells_reset c.c_cells
          | Gauge_i g ->
              Atomic.set g.g_value 0;
              Atomic.set g.g_hwm 0
          | Histogram_i h ->
              Array.iter cells_reset h.h_buckets;
              Array.iter (fun a -> Atomic.set a 0.) h.h_sum)
        registry)

(* ------------------------------------------------------------------ *)
(* Exposition *)

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let fmt_le le = if le = Float.infinity then "+Inf" else Printf.sprintf "%g" le

(* OpenMetrics text format. Counters expose [name_total] under a [# TYPE
   name counter] family; a gauge's high-water mark is a second gauge family
   [name_highwater]. Terminated by the mandatory [# EOF]. *)
let to_openmetrics () =
  let buf = Buffer.create 4096 in
  let family name kind help =
    if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (function
      | Counter_sample { name; help; value } ->
          family name "counter" help;
          Buffer.add_string buf (Printf.sprintf "%s_total %d\n" name value)
      | Gauge_sample { name; help; value; highwater } ->
          family name "gauge" help;
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name value);
          family (name ^ "_highwater") "gauge" (help ^ " (high-water mark)");
          Buffer.add_string buf
            (Printf.sprintf "%s_highwater %d\n" name highwater)
      | Histogram_sample { name; help; count; sum; buckets } ->
          family name "histogram" help;
          Array.iter
            (fun (le, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (fmt_le le) cum))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name (fmt_float sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name count))
    (snapshot ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"metrics\": [\n";
  let samples = snapshot () in
  List.iteri
    (fun i s ->
      let sep = if i = List.length samples - 1 then "" else "," in
      (match s with
      | Counter_sample { name; help; value } ->
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"name\": \"%s\", \"kind\": \"counter\", \"help\": \
                \"%s\", \"value\": %d}"
               (json_escape name) (json_escape help) value)
      | Gauge_sample { name; help; value; highwater } ->
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"name\": \"%s\", \"kind\": \"gauge\", \"help\": \"%s\", \
                \"value\": %d, \"highwater\": %d}"
               (json_escape name) (json_escape help) value highwater)
      | Histogram_sample { name; help; count; sum; buckets } ->
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"name\": \"%s\", \"kind\": \"histogram\", \"help\": \
                \"%s\", \"count\": %d, \"sum\": %s, \"buckets\": ["
               (json_escape name) (json_escape help) count (fmt_float sum));
          Array.iteri
            (fun j (le, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{\"le\": \"%s\", \"count\": %d}"
                   (if j = 0 then "" else ", ")
                   (fmt_le le) cum))
            buckets;
          Buffer.add_string buf "]}");
      Buffer.add_string buf (sep ^ "\n"))
    samples;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* Flat (name, value) pairs — the shape Chrome trace counter events and
   quick assertions want. *)
let counters_alist () =
  List.concat_map
    (function
      | Counter_sample { name; value; _ } ->
          [ (name ^ "_total", float_of_int value) ]
      | Gauge_sample { name; value; highwater; _ } ->
          [ (name, float_of_int value);
            (name ^ "_highwater", float_of_int highwater) ]
      | Histogram_sample { name; count; sum; _ } ->
          [ (name ^ "_count", float_of_int count); (name ^ "_sum", sum) ])
    (snapshot ())

(* ------------------------------------------------------------------ *)
(* Minimal OpenMetrics parser (for round-trip tests and scripting): each
   sample line becomes (name-with-labels, value); comment lines are
   validated to be [# HELP], [# TYPE] or [# EOF]. *)

let parse_openmetrics text =
  let samples = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         let fail msg =
           failwith
             (Printf.sprintf "Telemetry.parse_openmetrics: line %d: %s"
                (lineno + 1) msg)
         in
         if line = "" then ()
         else if String.length line > 0 && line.[0] = '#' then begin
           if
             not
               (List.exists
                  (fun p ->
                    String.length line >= String.length p
                    && String.sub line 0 (String.length p) = p)
                  [ "# HELP "; "# TYPE "; "# EOF" ])
           then fail "unknown comment form"
         end
         else
           match String.rindex_opt line ' ' with
           | None -> fail "sample line without a value"
           | Some i -> (
               let name = String.sub line 0 i in
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match float_of_string_opt v with
               | Some f -> samples := (name, f) :: !samples
               | None -> fail (Printf.sprintf "unparsable value %S" v)));
  List.rev !samples
