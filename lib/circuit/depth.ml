type r = { total : float; toffoli : float }

type env = {
  qdepth : (int, float) Hashtbl.t;  (* total-depth front per qubit *)
  qtof : (int, float) Hashtbl.t;  (* toffoli-depth front per qubit *)
  bdepth : (int, float) Hashtbl.t;  (* per classical bit *)
  btof : (int, float) Hashtbl.t;
}

let get tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0.

let of_instrs ~mode instrs =
  let weight = match mode with `Worst -> 1. | `Expected p -> p in
  let env =
    { qdepth = Hashtbl.create 64; qtof = Hashtbl.create 64;
      bdepth = Hashtbl.create 8; btof = Hashtbl.create 8 }
  in
  (* [w] is the product of branch probabilities enclosing the current
     instruction; a gate in such a context advances the front by [w]. *)
  let rec exec w extra_total extra_tof = function
    | [] -> ()
    | Instr.Gate g :: rest ->
        let qs = Gate.qubits g in
        let front tbl = List.fold_left (fun m q -> Float.max m (get tbl q)) 0. qs in
        let t = Float.max (front env.qdepth) extra_total +. w in
        let tof_step = if Gate.is_toffoli g then w else 0. in
        let tt = Float.max (front env.qtof) extra_tof +. tof_step in
        List.iter (fun q -> Hashtbl.replace env.qdepth q t) qs;
        List.iter (fun q -> Hashtbl.replace env.qtof q tt) qs;
        exec w extra_total extra_tof rest
    | Instr.Measure { qubit; bit; _ } :: rest ->
        let t = Float.max (get env.qdepth qubit) extra_total +. w in
        let tt = Float.max (get env.qtof qubit) extra_tof in
        Hashtbl.replace env.qdepth qubit t;
        Hashtbl.replace env.bdepth bit t;
        Hashtbl.replace env.qtof qubit tt;
        Hashtbl.replace env.btof bit tt;
        exec w extra_total extra_tof rest
    | Instr.If_bit { bit; body; _ } :: rest ->
        exec (w *. weight)
          (Float.max extra_total (get env.bdepth bit))
          (Float.max extra_tof (get env.btof bit))
          body;
        exec w extra_total extra_tof rest
    | Instr.Span { body; _ } :: rest ->
        exec w extra_total extra_tof body;
        exec w extra_total extra_tof rest
    | Instr.Call { body; _ } :: rest ->
        (* Depth is not compositional (the per-wire fronts couple a block to
           its context), so references are walked exactly, like spans. *)
        exec w extra_total extra_tof body;
        exec w extra_total extra_tof rest
  in
  exec 1. 0. 0. instrs;
  let max_of tbl = Hashtbl.fold (fun _ v m -> Float.max v m) tbl 0. in
  { total = Float.max (max_of env.qdepth) (max_of env.bdepth);
    toffoli = Float.max (max_of env.qtof) (max_of env.btof) }

let of_circuit ~mode (c : Circuit.t) = of_instrs ~mode c.instrs
