lib/circuit/circuit.ml: Counts Format Gate Instr Option
