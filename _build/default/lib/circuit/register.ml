type t = { name : string; qubits : Gate.qubit array }

let make ~name qubits = { name; qubits = Array.copy qubits }
let name r = r.name
let length r = Array.length r.qubits

let get r i =
  if i < 0 || i >= Array.length r.qubits then
    invalid_arg (Printf.sprintf "Register.get %s.%d" r.name i);
  r.qubits.(i)

let qubits r = Array.copy r.qubits
let to_list r = Array.to_list r.qubits

let sub r ~pos ~len =
  { name = Printf.sprintf "%s[%d:%d]" r.name pos (pos + len); qubits = Array.sub r.qubits pos len }

let append lo hi =
  { name = lo.name ^ "+" ^ hi.name; qubits = Array.append lo.qubits hi.qubits }

let extend r q = { name = r.name; qubits = Array.append r.qubits [| q |] }
let pp fmt r = Format.fprintf fmt "%s(%d)" r.name (Array.length r.qubits)
