open Mbu_circuit

type run = { state : State.t; bits : bool array; executed : Counts.t }

type event =
  | Gate_applied of Gate.t
  | Measured of { qubit : Gate.qubit; bit : int; outcome : bool }
  | Branch of { bit : int; value : bool; taken : bool }
  | Span_enter of { label : string; path : string list }
  | Span_exit of { label : string; path : string list }

let default_rng = lazy (Random.State.make [| 0x6d62755f; 0x51432025 |])

let run ?rng ?on_event (c : Circuit.t) ~init =
  let rng = match rng with Some r -> r | None -> Lazy.force default_rng in
  let fire =
    match on_event with Some f -> f | None -> fun (_ : event) -> ()
  in
  if State.num_qubits init < c.num_qubits then
    invalid_arg "Sim.run: state narrower than circuit";
  let bits = Array.make (max c.num_bits 1) false in
  let executed = ref Counts.zero in
  let state = ref init in
  let rec exec path = function
    | [] -> ()
    | Instr.Gate g :: rest ->
        state := State.apply_gate !state g;
        executed := Counts.add !executed (Counts.of_gate g);
        fire (Gate_applied g);
        exec path rest
    | Instr.Measure { qubit; bit; reset } :: rest ->
        let p1 = State.prob_bit_one !state qubit in
        let outcome =
          if p1 <= 1e-12 then false
          else if p1 >= 1.0 -. 1e-12 then true
          else Random.State.float rng 1.0 < p1
        in
        bits.(bit) <- outcome;
        state := State.project !state ~qubit ~value:outcome;
        if reset && outcome then state := State.set_bit_zero !state ~qubit;
        executed := Counts.add !executed { Counts.zero with measure = 1. };
        fire (Measured { qubit; bit; outcome });
        exec path rest
    | Instr.If_bit { bit; value; body } :: rest ->
        let taken = bits.(bit) = value in
        fire (Branch { bit; value; taken });
        if taken then exec path body;
        exec path rest
    | Instr.Span { label; body; _ } :: rest ->
        let spath = path @ [ label ] in
        fire (Span_enter { label; path = spath });
        exec spath body;
        fire (Span_exit { label; path = spath });
        exec path rest
  in
  exec [] c.instrs;
  { state = !state; bits; executed = !executed }

let init_registers ~num_qubits assignments =
  let idx = ref 0 in
  List.iter
    (fun (reg, v) ->
      let n = Register.length reg in
      if v < 0 || (n < 62 && v >= 1 lsl n) then
        invalid_arg
          (Printf.sprintf "Sim.init_registers: %d does not fit %s"
             v (Register.name reg));
      for i = 0 to n - 1 do
        if (v lsr i) land 1 = 1 then idx := !idx lor (1 lsl Register.get reg i)
      done)
    assignments;
  State.basis ~num_qubits !idx

let run_builder ?rng ?on_event b ~inits =
  let c = Builder.to_circuit b in
  let init = init_registers ~num_qubits:(Builder.num_qubits b) inits in
  run ?rng ?on_event c ~init

(* ------------------------------------------------------------------ *)
(* Aggregate branch / outcome statistics over Monte-Carlo runs *)

type stats = {
  mutable runs : int;
  branch : (int, int * int) Hashtbl.t;  (* bit -> taken, seen *)
  outcome : (int, int * int) Hashtbl.t;  (* bit -> ones, measured *)
}

let new_stats () = { runs = 0; branch = Hashtbl.create 16; outcome = Hashtbl.create 16 }

let bump tbl key hit =
  let a, b = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0) in
  Hashtbl.replace tbl key ((if hit then a + 1 else a), b + 1)

let stats_hook st = function
  | Branch { bit; taken; _ } -> bump st.branch bit taken
  | Measured { bit; outcome; _ } -> bump st.outcome bit outcome
  | Gate_applied _ | Span_enter _ | Span_exit _ -> ()

let record_run st = st.runs <- st.runs + 1
let runs st = st.runs

let freq = function
  | _, 0 -> None
  | taken, seen -> Some (float_of_int taken /. float_of_int seen)

let bit_taken_frequency st bit =
  Option.bind (Hashtbl.find_opt st.branch bit) (fun c -> freq c)

let taken_frequency st =
  let taken, seen =
    Hashtbl.fold (fun _ (t, s) (at, as_) -> (at + t, as_ + s)) st.branch (0, 0)
  in
  freq (taken, seen)

let measured_one_frequency st bit =
  Option.bind (Hashtbl.find_opt st.outcome bit) (fun c -> freq c)

let branch_bits st = Hashtbl.fold (fun k _ acc -> k :: acc) st.branch [] |> List.sort compare

let register_value state reg =
  (* Accumulate from the MSB down so bit i lands at weight 2^i. *)
  let rec from_msb acc i =
    if i < 0 then Some acc
    else
      match State.bit_value state (Register.get reg i) with
      | Some b -> from_msb ((acc lsl 1) lor (if b then 1 else 0)) (i - 1)
      | None -> None
  in
  from_msb 0 (Register.length reg - 1)

let register_value_exn state reg =
  match register_value state reg with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Sim.register_value_exn: %s is in superposition"
           (Register.name reg))

let wires_zero state ~except =
  let marked = Hashtbl.create 64 in
  List.iter
    (fun r -> Array.iter (fun q -> Hashtbl.replace marked q ()) (Register.qubits r))
    except;
  let n = State.num_qubits state in
  let rec check q =
    if q >= n then true
    else if Hashtbl.mem marked q then check (q + 1)
    else
      match State.bit_value state q with
      | Some false -> check (q + 1)
      | Some true | None -> false
  in
  check 0

let sample_register ?rng ~shots c ~init reg =
  let rng = match rng with Some r -> r | None -> Lazy.force default_rng in
  let tally = Hashtbl.create 16 in
  for _ = 1 to shots do
    let r = run ~rng c ~init in
    (* sample each register qubit by measuring the final state *)
    let state = ref r.state in
    let v = ref 0 in
    for i = Register.length reg - 1 downto 0 do
      let q = Register.get reg i in
      let p1 = State.prob_bit_one !state q in
      let bit =
        if p1 <= 1e-12 then false
        else if p1 >= 1. -. 1e-12 then true
        else Random.State.float rng 1.0 < p1
      in
      state := State.project !state ~qubit:q ~value:bit;
      v := (!v lsl 1) lor (if bit then 1 else 0)
    done;
    Hashtbl.replace tally !v (1 + Option.value (Hashtbl.find_opt tally !v) ~default:0)
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let unitary_column (c : Circuit.t) j =
  if not (Circuit.is_unitary c) then
    invalid_arg "Sim.unitary_column: circuit contains measurements";
  (run c ~init:(State.basis ~num_qubits:c.Circuit.num_qubits j)).state

let circuits_equal_unitary ?dim_qubits a b =
  let n =
    match dim_qubits with
    | Some n -> n
    | None -> max a.Circuit.num_qubits b.Circuit.num_qubits
  in
  if n > 12 then invalid_arg "Sim.circuits_equal_unitary: too wide";
  let widen (c : Circuit.t) =
    Circuit.make ~num_qubits:n ~num_bits:c.Circuit.num_bits c.Circuit.instrs
  in
  let a = widen a and b = widen b in
  (* Columns must match up to a single global phase shared across all
     columns. Compare the relative phase of each column against column 0 by
     checking U_a |+...+> against U_b |+...+> as well as each basis state. *)
  let dim = 1 lsl n in
  let col_ok = ref true in
  for j = 0 to dim - 1 do
    if State.fidelity (unitary_column a j) (unitary_column b j) < 1. -. 1e-9 then
      col_ok := false
  done;
  (* catching relative-phase differences between columns: feed the uniform
     superposition through both *)
  let uniform =
    let amp : Complex.t = { re = 1.0 /. sqrt (float_of_int dim); im = 0.0 } in
    State.of_alist ~num_qubits:n (List.init dim (fun j -> (j, amp)))
  in
  let through (c : Circuit.t) = (run c ~init:uniform).state in
  !col_ok && State.fidelity (through a) (through b) > 1. -. 1e-9
