lib/core/mod_add.ml: Adder Adder_big Adder_draper Adder_vbe Bitstring Builder Logical_and Mbu Mbu_bitstring Mbu_circuit Printf Qft Register
