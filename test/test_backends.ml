(* Backend-equivalence property tests: the classical track (Fast), the
   in-place sparse kernel (Sparse) and the seed's rebuild-per-gate oracle
   (Reference) must agree run-for-run — same measurement outcomes, same
   executed counts, same final state — on randomized modadd circuits for
   every Mod_add spec, and the parallel multi-shot runner must return
   jobs-independent output. *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let qtest = QCheck_alcotest.to_alcotest

let specs =
  [ ("cdkpm", Mod_add.spec_cdkpm);
    ("gidney", Mod_add.spec_gidney);
    ("mixed", Mod_add.spec_mixed) ]

let spec_of_int i = List.nth specs (i mod List.length specs)

(* Random odd modulus with the top bit set, and operands below it. *)
let gen_modadd_case =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    int_range 0 ((1 lsl (n - 1)) - 1) >>= fun plow ->
    let p = max 3 (((1 lsl (n - 1)) lor plow) lor 1) in
    map3
      (fun s x y -> (s, n, p, x mod p, y mod p))
      (int_bound 2) (int_bound (p - 1)) (int_bound (p - 1)))

let print_case (s, n, p, x, y) =
  Printf.sprintf "spec=%s n=%d p=%d x=%d y=%d" (fst (spec_of_int s)) n p x y

let arb_modadd_case = QCheck.make gen_modadd_case ~print:print_case

let build_modadd spec ~n ~p =
  let b = Builder.create () in
  let x = Builder.fresh_register b "x" n in
  let y = Builder.fresh_register b "y" n in
  Mod_add.modadd ~mbu:true spec b ~p ~x ~y;
  (b, x, y)

let run_engine engine ~seed c ~init =
  Sim.run ~rng:(Random.State.make [| seed; 0xe9 |]) ~engine c ~init

(* All three engines consume the same RNG stream, so a fixed seed must give
   identical classical outcomes and (up to float noise) identical states. *)
let prop_engines_agree =
  QCheck.Test.make ~name:"Fast = Sparse = Reference on modadd (all specs)"
    ~count:120 arb_modadd_case (fun (s, n, p, x_val, y_val) ->
      let _, spec = spec_of_int s in
      let b, x, y = build_modadd spec ~n ~p in
      let c = Builder.to_circuit b in
      let init =
        Sim.init_registers ~num_qubits:(Builder.num_qubits b)
          [ (x, x_val); (y, y_val) ]
      in
      let seed = (s * 7919) + (x_val * 131) + y_val in
      let rf = run_engine Sim.Fast ~seed c ~init in
      let rs = run_engine Sim.Sparse ~seed c ~init in
      let rr = run_engine Sim.Reference ~seed c ~init in
      let same_class (a : Sim.run) (b : Sim.run) =
        a.Sim.bits = b.Sim.bits
        && Counts.approx_equal a.Sim.executed b.Sim.executed
      in
      same_class rf rs && same_class rf rr
      && State.fidelity rf.Sim.state rs.Sim.state > 1. -. 1e-9
      && State.fidelity rf.Sim.state rr.Sim.state > 1. -. 1e-9
      && Sim.register_value rf.Sim.state y = Some ((x_val + y_val) mod p)
      && Sim.register_value rf.Sim.state x = Some x_val
      && Sim.wires_zero rf.Sim.state ~except:[ x; y ])

(* Measurement-free random unitaries exercise the sparse kernel on genuinely
   dense states (H puts every wire in superposition); the in-place kernel
   must match the rebuild-per-gate oracle exactly. *)
let gen_gate_seq =
  QCheck.Gen.(
    let nq = 5 in
    list_size (int_range 5 60)
      (int_range 0 7 >>= fun kind ->
       int_range 0 (nq - 1) >>= fun a ->
       int_range 0 (nq - 2) >>= fun db ->
       int_range 0 (nq - 3) >>= fun dc' ->
       (* distinct wires: b is a shifted by 1..nq-1; c skips both *)
       let b = (a + 1 + db) mod nq in
       let c =
         let c0 = (a + 1 + ((db + 1 + dc') mod (nq - 1))) mod nq in
         c0
       in
       return
         (match kind with
         | 0 -> Gate.X a
         | 1 -> Gate.H a
         | 2 -> Gate.Z a
         | 3 -> Gate.Cnot { control = a; target = b }
         | 4 -> Gate.Toffoli { c1 = a; c2 = b; target = c }
         | 5 -> Gate.Swap (a, b)
         | 6 -> Gate.Phase (a, Phase.theta 2)
         | _ -> Gate.Cphase { control = a; target = b; phase = Phase.theta 3 })))

let arb_gate_seq =
  QCheck.make gen_gate_seq ~print:(fun gs ->
      Printf.sprintf "%d gates" (List.length gs))

let prop_sparse_kernel_matches_reference_dense =
  QCheck.Test.make ~name:"in-place sparse kernel = oracle on dense states"
    ~count:100 arb_gate_seq (fun gates ->
      let c =
        Circuit.make ~num_qubits:5 (List.map (fun g -> Instr.Gate g) gates)
      in
      let init = State.basis ~num_qubits:5 0 in
      let rs = run_engine Sim.Sparse ~seed:1 c ~init in
      let rr = run_engine Sim.Reference ~seed:1 c ~init in
      let rf = run_engine Sim.Fast ~seed:1 c ~init in
      State.fidelity rs.Sim.state rr.Sim.state > 1. -. 1e-9
      && State.fidelity rf.Sim.state rr.Sim.state > 1. -. 1e-9
      && abs_float (State.norm rs.Sim.state -. 1.) < 1e-9)

(* run_shots must be a pure function of (seed, shot index): identical run
   arrays and identical merged statistics whatever the fan-out. *)
let run_key (r : Sim.run) reg =
  (Sim.register_value r.Sim.state reg, Array.to_list r.Sim.bits,
   Counts.total_gates r.Sim.executed)

let prop_run_shots_jobs_independent =
  QCheck.Test.make ~name:"run_shots: jobs=1 and jobs=4 identical" ~count:40
    arb_modadd_case (fun (s, n, p, x_val, y_val) ->
      let _, spec = spec_of_int s in
      let b, x, y = build_modadd spec ~n ~p in
      let c = Builder.to_circuit b in
      let init =
        Sim.init_registers ~num_qubits:(Builder.num_qubits b)
          [ (x, x_val); (y, y_val) ]
      in
      let shots = 16 in
      let st1 = Sim.new_stats () and st4 = Sim.new_stats () in
      let r1 = Sim.run_shots ~seed:s ~jobs:1 ~stats:st1 ~shots c ~init in
      let r4 = Sim.run_shots ~seed:s ~jobs:4 ~stats:st4 ~shots c ~init in
      Array.length r1 = shots
      && Array.for_all2 (fun a b -> run_key a y = run_key b y) r1 r4
      && Sim.runs st1 = shots
      && Sim.runs st4 = shots
      && Sim.taken_frequency st1 = Sim.taken_frequency st4
      && Sim.branch_bits st1 = Sim.branch_bits st4
      && List.for_all
           (fun bit ->
             Sim.bit_taken_frequency st1 bit = Sim.bit_taken_frequency st4 bit)
           (Sim.branch_bits st1))

(* The parallel runner with per-shot stats must tally exactly what a
   sequential loop with the stats_hook tallies. *)
let test_run_shots_stats_match_sequential () =
  let b, x, y = build_modadd Mod_add.spec_cdkpm ~n:4 ~p:13 in
  let c = Builder.to_circuit b in
  let init =
    Sim.init_registers ~num_qubits:(Builder.num_qubits b) [ (x, 7); (y, 11) ]
  in
  let shots = 100 in
  let st_par = Sim.new_stats () in
  let runs_par = Sim.run_shots ~seed:5 ~jobs:4 ~stats:st_par ~shots c ~init in
  (* replay each shot sequentially through run_shots with one shot and the
     offset seed is not possible (the split is internal), so compare against
     jobs=1 with the same seed instead, which must be bit-identical. *)
  let st_seq = Sim.new_stats () in
  let runs_seq = Sim.run_shots ~seed:5 ~jobs:1 ~stats:st_seq ~shots c ~init in
  Alcotest.(check int) "runs" (Sim.runs st_seq) (Sim.runs st_par);
  Alcotest.(check (list int)) "branch bits" (Sim.branch_bits st_seq)
    (Sim.branch_bits st_par);
  Alcotest.(check bool) "per-shot equality" true
    (Array.for_all2
       (fun (a : Sim.run) (b : Sim.run) ->
         run_key a y = run_key b y)
       runs_seq runs_par);
  List.iter
    (fun bit ->
      Alcotest.(check (option (float 1e-12)))
        (Printf.sprintf "bit %d taken frequency" bit)
        (Sim.bit_taken_frequency st_seq bit)
        (Sim.bit_taken_frequency st_par bit))
    (Sim.branch_bits st_seq)

(* sample_register without ?rng: deterministic, jobs-independent tallies. *)
let test_sample_register_jobs_independent () =
  let b = Builder.create () in
  let q = Builder.fresh_register b "q" 3 in
  Array.iter (fun w -> Builder.h b w) (Register.qubits q);
  let c = Builder.to_circuit b in
  let init = Sim.init_registers ~num_qubits:(Builder.num_qubits b) [] in
  let t1 = Sim.sample_register ~seed:9 ~jobs:1 ~shots:64 c ~init q in
  let t4 = Sim.sample_register ~seed:9 ~jobs:4 ~shots:64 c ~init q in
  Alcotest.(check (list (pair int int))) "tallies equal" t1 t4;
  Alcotest.(check int) "total shots" 64
    (List.fold_left (fun acc (_, k) -> acc + k) 0 t1)

let suite =
  ( "backends",
    [ qtest prop_engines_agree;
      qtest prop_sparse_kernel_matches_reference_dense;
      qtest prop_run_shots_jobs_independent;
      Alcotest.test_case "run_shots stats = sequential stats" `Quick
        test_run_shots_stats_match_sequential;
      Alcotest.test_case "sample_register jobs-independent" `Quick
        test_sample_register_jobs_independent ] )
