(** A complete circuit: an instruction program plus its wire/bit widths. *)

type t = private {
  num_qubits : int;
  num_bits : int;
  instrs : Instr.t list;
}

val make :
  ?validate:bool -> ?num_qubits:int -> ?num_bits:int -> Instr.t list -> t
(** Widths default to (1 + the largest index used). Raises
    [Invalid_argument] if an explicit width is too small or a gate is
    malformed (see {!Gate.validate}). [validate] defaults to [true]; pass
    [~validate:false] on the trusted path where every gate was already
    checked on emission ({!Builder.gate} does), skipping the per-gate
    re-validation while still computing the width invariant in one fused
    pass. *)

val adjoint : t -> t
(** Raises [Invalid_argument] on circuits containing measurements
    (remark 2.23). *)

val counts : ?mode:Counts.mode -> t -> Counts.t
(** Defaults to [Worst]. *)

val num_gates : t -> int
val is_unitary : t -> bool

val append : t -> t -> t
(** Sequential composition on a shared wire numbering. *)

val pp : Format.formatter -> t -> unit
