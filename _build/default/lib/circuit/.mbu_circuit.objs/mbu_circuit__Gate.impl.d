lib/circuit/gate.ml: Format List Phase Stdlib
