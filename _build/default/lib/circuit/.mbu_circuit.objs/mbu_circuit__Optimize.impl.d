lib/circuit/optimize.ml: Circuit Gate Instr List Phase
