test/test_cla.ml: Adder_cdkpm Adder_cla Alcotest Bitstring Builder Helpers List Mbu_bitstring Mbu_circuit Mbu_core Mbu_simulator Printf Random Register Resources Sim
