examples/quickstart.mli:
