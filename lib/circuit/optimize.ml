let disjoint g h =
  let qs = Gate.qubits g in
  List.for_all (fun q -> not (List.mem q qs)) (Gate.qubits h)

(* Try to fuse [g] with an earlier gate, walking back through gates on
   disjoint wires. Gates carry their span path (a list of span instances,
   outermost first) so the tree can be rebuilt afterwards; the path never
   blocks fusion — spans are weightless and must not change what the
   optimizer can cancel. A merged rotation stays at the earlier gate's
   position and keeps its span. Returns the updated reversed-prefix when
   something happened. *)
let rec fuse_back rev_prefix ((g, _) as tagged) =
  match rev_prefix with
  | [] -> None
  | ((h, ph) as th) :: rest -> (
      match g, h with
      (* merge single-qubit rotations on the same wire *)
      | Gate.Phase (q, p), Gate.Phase (q', p') when q = q' ->
          let p'' = Phase.add p p' in
          if Phase.is_zero p'' then Some rest
          else Some ((Gate.Phase (q, p''), ph) :: rest)
      (* merge controlled rotations on the same wire pair *)
      | ( Gate.Cphase { control = c; target = t; phase = p },
          Gate.Cphase { control = c'; target = t'; phase = p' } )
        when (c = c' && t = t') || (c = t' && t = c') ->
          let p'' = Phase.add p p' in
          if Phase.is_zero p'' then Some rest
          else Some ((Gate.Cphase { control = c; target = t; phase = p'' }, ph) :: rest)
      (* adjacent inverse pair *)
      | _ when Gate.equal h (Gate.adjoint g) -> Some rest
      (* slide past disjoint gates *)
      | _ when disjoint g h -> (
          match fuse_back rest tagged with
          | Some rest' -> Some (th :: rest')
          | None -> None)
      | _ -> None)

let optimize_gates tagged_gates =
  let step acc tg =
    match fuse_back acc tg with Some acc' -> acc' | None -> tg :: acc
  in
  List.rev (List.fold_left step [] tagged_gates)

(* One span instance on a gate's path: a unique id (so two sibling spans
   with the same label stay distinct) plus what is needed to rebuild the
   node. *)
type span_id = { id : int; label : string; peak_ancillas : int }

type item =
  | G of Gate.t * span_id list
  | Barrier of Instr.t * span_id list  (* Measure or If_bit *)

(* Erase span brackets, tagging every gate and barrier with its span path.
   If_bit bodies are optimized recursively here (they really are barriers:
   whether they execute depends on a run-time bit). *)
let rec flatten_items instrs =
  let next_id = ref 0 in
  let rec go path acc = function
    | [] -> acc
    | Instr.Gate g :: rest -> go path (G (g, path) :: acc) rest
    | (Instr.Measure _ as i) :: rest -> go path (Barrier (i, path) :: acc) rest
    | Instr.If_bit { bit; value; body } :: rest ->
        let body = optimize_instrs body in
        go path (Barrier (Instr.If_bit { bit; value; body }, path) :: acc) rest
    | Instr.Span { label; peak_ancillas; body } :: rest ->
        let id = !next_id in
        incr next_id;
        let acc = go (path @ [ { id; label; peak_ancillas } ]) acc body in
        go path acc rest
    | Instr.Call { body; _ } :: rest ->
        (* The optimizer works on the expansion: each reference is inlined
           (fusion may rewrite one occurrence differently from another, so
           sharing cannot survive optimization). *)
        let acc = go path acc body in
        go path acc rest
  in
  List.rev (go [] [] instrs)

(* Inverse of [flatten_items]: regroup a tagged item sequence into nested
   spans by longest-common-prefix of the paths. Optimization can tear a
   span instance apart (a surviving gate of span A between gates of span B);
   such an instance reappears as several nodes with the same label, which
   profiling merges back into one row. *)
and rebuild items =
  let cur = ref [] in (* open span instances, innermost first *)
  let stack = ref [ [] ] in (* reversed bodies, innermost first *)
  let push i =
    match !stack with
    | top :: rest -> stack := (i :: top) :: rest
    | [] -> assert false
  in
  let close () =
    match !cur, !stack with
    | { label; peak_ancillas; _ } :: ctail, body :: srest ->
        cur := ctail;
        stack := srest;
        push (Instr.Span { label; peak_ancillas; body = List.rev body })
    | _ -> assert false
  in
  let open_span sp =
    cur := sp :: !cur;
    stack := [] :: !stack
  in
  let sync path =
    let cur_out = List.rev !cur in
    let rec common a b =
      match a, b with
      | x :: a', y :: b' when x.id = y.id -> 1 + common a' b'
      | _ -> 0
    in
    let k = common cur_out path in
    for _ = 1 to List.length cur_out - k do
      close ()
    done;
    List.iteri (fun i sp -> if i >= k then open_span sp) path
  in
  List.iter
    (function
      | G (g, path) ->
          sync path;
          push (Instr.Gate g)
      | Barrier (i, path) ->
          sync path;
          push i)
    items;
  sync [];
  match !stack with [ top ] -> List.rev top | _ -> assert false

(* Split into maximal gate runs; measurements and conditionals are
   barriers, spans are transparent. *)
and optimize_instrs instrs =
  let items = flatten_items instrs in
  let flush run acc =
    if run = [] then acc
    else
      List.rev_append
        (List.map (fun (g, p) -> G (g, p)) (optimize_gates (List.rev run)))
        acc
  in
  let rec go run acc = function
    | [] -> List.rev (flush run acc)
    | G (g, p) :: rest -> go ((g, p) :: run) acc rest
    | (Barrier _ as i) :: rest -> go [] (i :: flush run acc) rest
  in
  rebuild (go [] [] items)

let rec fixpoint prev =
  let next = optimize_instrs prev in
  if Instr.count_instrs next = Instr.count_instrs prev then next
  else fixpoint next

let instrs = fixpoint

let circuit (c : Circuit.t) =
  Circuit.make ~num_qubits:c.Circuit.num_qubits ~num_bits:c.Circuit.num_bits
    (instrs c.Circuit.instrs)
