type t = { num : int; log2_den : int }

let zero = { num = 0; log2_den = 0 }

(* Reduce so that num is odd (or the phase is zero) and 0 <= num < 2^k. *)
let normalize num log2_den =
  let den = 1 lsl log2_den in
  let num = ((num mod den) + den) mod den in
  if num = 0 then zero
  else begin
    let rec shed num k = if num land 1 = 0 then shed (num lsr 1) (k - 1) else (num, k) in
    let num, log2_den = shed num log2_den in
    { num; log2_den }
  end

let make ~num ~log2_den =
  if log2_den < 0 || log2_den > 61 then invalid_arg "Phase.make";
  normalize num log2_den

let theta k = make ~num:1 ~log2_den:k
let of_fraction_of_turn = make

let add a b =
  let k = max a.log2_den b.log2_den in
  let na = a.num lsl (k - a.log2_den) and nb = b.num lsl (k - b.log2_den) in
  normalize (na + nb) k

let neg a = normalize (-a.num) a.log2_den
let is_zero a = a.num = 0
let equal a b = a.num = b.num && a.log2_den = b.log2_den
let compare a b = Stdlib.compare (a.num, a.log2_den) (b.num, b.log2_den)
let num a = a.num
let log2_den a = a.log2_den

let to_radians a =
  2.0 *. Float.pi *. float_of_int a.num /. float_of_int (1 lsl a.log2_den)

let pp fmt a =
  if a.num = 0 then Format.pp_print_string fmt "0"
  else Format.fprintf fmt "2pi*%d/2^%d" a.num a.log2_den
