lib/simulator/sim.ml: Array Builder Circuit Complex Counts Hashtbl Instr Lazy List Mbu_circuit Option Printf Random Register State
