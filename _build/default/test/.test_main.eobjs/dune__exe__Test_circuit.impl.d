test/test_circuit.ml: Alcotest Builder Circuit Counts Depth Float Gate Instr List Mbu_circuit Phase Printf QCheck QCheck_alcotest
