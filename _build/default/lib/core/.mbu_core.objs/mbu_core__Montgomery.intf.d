lib/core/montgomery.mli: Adder Builder Mbu_circuit Register
