open Mbu_circuit

let carry b ~c_in ~x ~y ~c_out =
  Builder.toffoli b ~c1:x ~c2:y ~target:c_out;
  Builder.cnot b ~control:x ~target:y;
  Builder.toffoli b ~c1:c_in ~c2:y ~target:c_out

let carry_adjoint b ~c_in ~x ~y ~c_out =
  Builder.toffoli b ~c1:c_in ~c2:y ~target:c_out;
  Builder.cnot b ~control:x ~target:y;
  Builder.toffoli b ~c1:x ~c2:y ~target:c_out

let sum b ~c_in ~x ~y =
  Builder.cnot b ~control:x ~target:y;
  Builder.cnot b ~control:c_in ~target:y

let add b ~x ~y =
  let n = Register.length x in
  if Register.length y <> n + 1 then invalid_arg "Adder_vbe.add: length y <> length x + 1";
  if n = 0 then invalid_arg "Adder_vbe.add: empty addend";
  Builder.with_ancilla_register b "c" n (fun c ->
      let cq i = Register.get c i
      and xq i = Register.get x i
      and yq i = Register.get y i in
      (* Rising carry chain; the top carry goes directly into y_n. *)
      for i = 0 to n - 2 do
        carry b ~c_in:(cq i) ~x:(xq i) ~y:(yq i) ~c_out:(cq (i + 1))
      done;
      carry b ~c_in:(cq (n - 1)) ~x:(xq (n - 1)) ~y:(yq (n - 1)) ~c_out:(yq n);
      (* Undo the in-carry CNOT on y_{n-1}, then write s_{n-1}. *)
      Builder.cnot b ~control:(xq (n - 1)) ~target:(yq (n - 1));
      sum b ~c_in:(cq (n - 1)) ~x:(xq (n - 1)) ~y:(yq (n - 1));
      (* Falling chain: uncompute each carry, then write each sum bit. *)
      for i = n - 2 downto 0 do
        carry_adjoint b ~c_in:(cq i) ~x:(xq i) ~y:(yq i) ~c_out:(cq (i + 1));
        sum b ~c_in:(cq i) ~x:(xq i) ~y:(yq i)
      done)

let carry_chain b ~x ~y ~carries =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Adder_vbe.carry_chain: unequal lengths";
  if Register.length carries <> n + 1 then
    invalid_arg "Adder_vbe.carry_chain: carries must have n+1 qubits";
  for i = 0 to n - 1 do
    carry b ~c_in:(Register.get carries i) ~x:(Register.get x i)
      ~y:(Register.get y i) ~c_out:(Register.get carries (i + 1))
  done

let compare b ~x ~y ~target =
  let n = Register.length x in
  if Register.length y <> n then invalid_arg "Adder_vbe.compare: unequal lengths";
  (* The top carry of x + NOT(y) is 1 iff x > y (see proposition 2.27's
     discussion: x + (2^n - 1 - y) >= 2^n iff x > y). *)
  let complement () = Array.iter (fun q -> Builder.x b q) (Register.qubits y) in
  Builder.with_ancilla_register b "cc" (n + 1) (fun carries ->
      complement ();
      carry_chain b ~x ~y ~carries;
      Builder.cnot b ~control:(Register.get carries n) ~target;
      Builder.emit_adjoint b (fun () -> carry_chain b ~x ~y ~carries);
      complement ())

(* Equal-length addition modulo 2^m (no overflow qubit). *)
let add_mod b ~x ~y =
  let m = Register.length x in
  if Register.length y <> m then invalid_arg "Adder_vbe.add_mod: unequal lengths";
  if m = 0 then invalid_arg "Adder_vbe.add_mod: empty register";
  if m = 1 then
    Builder.cnot b ~control:(Register.get x 0) ~target:(Register.get y 0)
  else
    Builder.with_ancilla_register b "c" (m - 1) (fun c ->
        (* c.(i-1) holds carry c_i for 1 <= i <= m-1; c_0 = 0 implicit. *)
        Builder.with_ancilla b (fun c0 ->
            let cq i = if i = 0 then c0 else Register.get c (i - 1) in
            for i = 0 to m - 2 do
              carry b ~c_in:(cq i) ~x:(Register.get x i) ~y:(Register.get y i)
                ~c_out:(cq (i + 1))
            done;
            Builder.cnot b ~control:(cq (m - 1)) ~target:(Register.get y (m - 1));
            Builder.cnot b ~control:(Register.get x (m - 1))
              ~target:(Register.get y (m - 1));
            for i = m - 2 downto 0 do
              carry_adjoint b ~c_in:(cq i) ~x:(Register.get x i)
                ~y:(Register.get y i) ~c_out:(cq (i + 1));
              sum b ~c_in:(cq i) ~x:(Register.get x i) ~y:(Register.get y i)
            done))
