type pauli = X | Y | Z

type site =
  | Gate_site of { pos : int; gate : Gate.t; qubit : Gate.qubit }
  | Measure_site of { pos : int; qubit : Gate.qubit; bit : int }
  | Branch_site of { pos : int; bit : int; value : bool }

type t =
  | Pauli_after of { pos : int; qubit : Gate.qubit; pauli : pauli }
  | Flip_outcome of { bit : int }
  | Skip_block of { pos : int }

(* Per-node memo tables, keyed by the interned node's process-unique id
   (same scheme as Instr's summary memoization). [sites] counts the fault
   sites inside a node, [slots] its instruction positions — they differ
   because a k-wire gate is one slot but k sites. *)
let node_sites_tbl : (int, int) Hashtbl.t = Hashtbl.create 64
let node_slots_tbl : (int, int) Hashtbl.t = Hashtbl.create 64

let rec sites_in_list l =
  List.fold_left (fun acc i -> acc + sites_in_instr i) 0 l

and sites_in_instr = function
  | Instr.Gate g -> List.length (Gate.qubits g)
  | Instr.Measure _ -> 1
  | Instr.If_bit { body; _ } -> 1 + sites_in_list body
  | Instr.Span { body; _ } -> sites_in_list body
  | Instr.Call n -> (
      match Hashtbl.find_opt node_sites_tbl n.Instr.id with
      | Some c -> c
      | None ->
          let c = sites_in_list n.Instr.body in
          Hashtbl.add node_sites_tbl n.Instr.id c;
          c)

let rec slots_in_list l =
  List.fold_left (fun acc i -> acc + slots_in_instr i) 0 l

and slots_in_instr = function
  | Instr.Gate _ | Instr.Measure _ -> 1
  | Instr.If_bit { body; _ } -> 1 + slots_in_list body
  | Instr.Span { body; _ } -> slots_in_list body
  | Instr.Call n -> (
      match Hashtbl.find_opt node_slots_tbl n.Instr.id with
      | Some c -> c
      | None ->
          let c = slots_in_list n.Instr.body in
          Hashtbl.add node_slots_tbl n.Instr.id c;
          c)

let num_sites = sites_in_list

let site instrs k0 =
  if k0 < 0 || k0 >= num_sites instrs then
    invalid_arg "Fault.site: index out of range";
  (* [go] relies on the precondition [k < sites_in_list l], so the
     list-exhausted case is unreachable. *)
  let rec go ~pos k = function
    | [] -> assert false
    | i :: rest ->
        let ns = sites_in_instr i in
        if k < ns then in_instr ~pos k i
        else go ~pos:(pos + slots_in_instr i) (k - ns) rest
  and in_instr ~pos k = function
    | Instr.Gate g -> Gate_site { pos; gate = g; qubit = List.nth (Gate.qubits g) k }
    | Instr.Measure { qubit; bit; _ } -> Measure_site { pos; qubit; bit }
    | Instr.If_bit { bit; value; body } ->
        if k = 0 then Branch_site { pos; bit; value }
        else go ~pos:(pos + 1) (k - 1) body
    | Instr.Span { body; _ } -> go ~pos k body
    | Instr.Call n -> go ~pos k n.Instr.body
  in
  go ~pos:0 k0 instrs

let sites instrs =
  let acc = ref [] in
  let rec walk pos l = List.fold_left walk_instr pos l
  and walk_instr pos = function
    | Instr.Gate g ->
        List.iter
          (fun q -> acc := Gate_site { pos; gate = g; qubit = q } :: !acc)
          (Gate.qubits g);
        pos + 1
    | Instr.Measure { qubit; bit; _ } ->
        acc := Measure_site { pos; qubit; bit } :: !acc;
        pos + 1
    | Instr.If_bit { bit; value; body } ->
        acc := Branch_site { pos; bit; value } :: !acc;
        walk (pos + 1) body
    | Instr.Span { body; _ } -> walk pos body
    | Instr.Call n -> walk pos n.Instr.body
  in
  ignore (walk 0 instrs);
  List.rev !acc

let of_site ?(pauli = X) = function
  | Gate_site { pos; qubit; _ } -> Pauli_after { pos; qubit; pauli }
  | Measure_site { bit; _ } -> Flip_outcome { bit }
  | Branch_site { pos; _ } -> Skip_block { pos }

let pauli_gates p q =
  match p with
  | X -> [ Gate.X q ]
  | Z -> [ Gate.Z q ]
  | Y -> [ Gate.Z q; Gate.X q ]

let pauli_name = function X -> "X" | Y -> "Y" | Z -> "Z"

let to_string = function
  | Pauli_after { pos; qubit; pauli } ->
      Printf.sprintf "%s on qubit %d after instr %d" (pauli_name pauli) qubit pos
  | Flip_outcome { bit } -> Printf.sprintf "flip outcome of bit %d" bit
  | Skip_block { pos } -> Printf.sprintf "skip conditional at instr %d" pos
