(** Modular multiplication and exponentiation (the paper's stated
    application / future work, section 1.1): Beauregard-style circuits built
    entirely from the controlled constant modular adders of section 3.3, so
    every MBU saving in those adders compounds here.

    The construction is the standard shift-and-add one: with
    [a_i = a 2^i mod p],

      [t <- t + c.a.x mod p]  =  for each bit [x_i], a doubly controlled
      [MODADD_p(a_i)], where the double control [c AND x_i] is held in a
      temporary logical-AND ancilla erased by MBU;

    and in-place multiplication conjugates that with a controlled swap and
    the inverse multiplication by [a^{-1} mod p] (requires [gcd(a,p) = 1]).
    Modular exponentiation applies one in-place controlled multiplication
    per exponent bit. *)

open Mbu_circuit

(** The controlled constant modular adder the multiplier is built from. *)
type engine

val ripple_engine : ?mbu:bool -> Mod_add.spec -> engine
(** Proposition 3.18 (theorem 4.12 with [mbu]) with the given subroutines. *)

val draper_engine : ?mbu:bool -> unit -> engine
(** Beauregard's QFT adder (proposition 3.19). *)

val engine_name : engine -> string

val modinv : a:int -> p:int -> int
(** Modular inverse by extended Euclid. Raises [Invalid_argument] when
    [gcd (a, p) <> 1]. *)

val cmult_add :
  engine -> Builder.t ->
  ctrl:Gate.qubit -> a:int -> p:int -> x:Register.t -> target:Register.t -> unit
(** [target <- (target + ctrl.a.x) mod p]. [x] and [target] have equal
    length [n], [p < 2^n], [target < p]; [x] is read-only. *)

val cmult_sub :
  engine -> Builder.t ->
  ctrl:Gate.qubit -> a:int -> p:int -> x:Register.t -> target:Register.t -> unit
(** [target <- (target - ctrl.a.x) mod p] (adds the modular negations). *)

val cmult_inplace :
  engine -> Builder.t -> ctrl:Gate.qubit -> a:int -> p:int -> x:Register.t -> unit
(** [x <- ctrl ? (a.x mod p) : x]; requires [gcd (a, p) = 1] and [x < p]. *)

val modexp :
  engine -> Builder.t -> a:int -> p:int -> e:Register.t -> x:Register.t -> unit
(** [x <- (x . a^e) mod p] — the Shor-style modular exponentiation ladder:
    one {!cmult_inplace} by [a^{2^j} mod p] per exponent bit [e_j].
    Requires [gcd (a, p) = 1] and [x < p]. *)

(** {1 Windowed multiplication (Gidney, "Windowed quantum arithmetic")}

    Instead of one controlled constant modular addition per multiplier bit,
    process [window] bits at a time: look up [u . a . 2^(w i) mod p] for the
    window value [u] from a QROM table (with the control folded in as an
    extra address bit), add the looked-up register with one quantum-quantum
    modular addition, and erase the table entry with the measurement-based
    unlookup. MBU thus enters twice: in the unlookup and in the modular
    adder's own comparator. *)

val cmult_add_windowed :
  ?window:int ->
  ?mbu:bool ->
  Mod_add.spec ->
  Builder.t ->
  ctrl:Gate.qubit -> a:int -> p:int -> x:Register.t -> target:Register.t -> unit
(** [target <- (target + ctrl.a.x) mod p]; [window] defaults to 2 and must
    divide into [length x] greedily (a final smaller window is used for the
    remainder). *)

(** {1 Uncontrolled and register-register multiplication} *)

val mult_add :
  engine -> Builder.t -> a:int -> p:int -> x:Register.t -> target:Register.t -> unit
(** [target <- (target + a.x) mod p]: one controlled constant modular adder
    per multiplier bit, the bit itself being the control. *)

val mult_inplace : engine -> Builder.t -> a:int -> p:int -> x:Register.t -> unit
(** [x <- a.x mod p]; requires [gcd (a, p) = 1] and [x < p]. *)

val mul_register :
  engine -> Builder.t ->
  x:Register.t -> y:Register.t -> p:int -> target:Register.t -> unit
(** Fully quantum multiply-accumulate
    [target <- (target + x.y) mod p]: a doubly controlled constant modular
    adder of [2^{i+j} mod p] per bit pair [(x_i, y_j)], the double control
    held in a logical-AND ancilla erased by MBU — the building block of
    elliptic-curve-style cryptanalysis circuits. *)

val square_register :
  engine -> Builder.t -> x:Register.t -> p:int -> target:Register.t -> unit
(** [target <- (target + x^2) mod p]: the register-register multiplier with
    both operands the same register — the diagonal terms need only a single
    control. *)

val modexp_windowed :
  ?window:int ->
  Mod_add.spec -> Builder.t -> a:int -> p:int -> e:Register.t -> x:Register.t -> unit
(** {!modexp} with each controlled multiplication's ladder replaced by the
    windowed QROM form of {!cmult_add_windowed}. *)
