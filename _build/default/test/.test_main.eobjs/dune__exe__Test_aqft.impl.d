test/test_aqft.ml: Adder_draper Alcotest Builder Circuit Counts Helpers Mbu_circuit Mbu_core Mbu_simulator Printf Qft Sim State
