open Mbu_circuit
open Mbu_simulator
open Mbu_telemetry

(* Campaign instruments: progress and classification tallies plus per-run
   latency. Counters are striped per domain, so the parallel campaign
   loop bumps them contention-free. *)
let m_runs =
  Telemetry.counter ~help:"Fault-campaign runs completed"
    "mbu_robustness_runs"

let m_correct =
  Telemetry.counter ~help:"Campaign runs classified correct"
    "mbu_robustness_correct"

let m_detected =
  Telemetry.counter ~help:"Campaign runs classified detected"
    "mbu_robustness_detected"

let m_silent =
  Telemetry.counter ~help:"Campaign runs classified silent_corrupt"
    "mbu_robustness_silent"

let m_run_seconds =
  Telemetry.histogram ~help:"Per-campaign-run wall-clock latency in seconds"
    "mbu_robustness_run_seconds"

type spec = {
  name : string;
  circuit : Circuit.t;
  init : State.t;
  keep : Register.t list;
  expect : (Register.t * int) list;
  detectors : (string * (Sim.run -> bool)) list;
}

let spec_of_builder ~name ?(detectors = []) ~keep ~expect b ~inits =
  let circuit = Builder.to_circuit b in
  let init = Sim.init_registers ~num_qubits:(Builder.num_qubits b) inits in
  { name; circuit; init; keep; expect; detectors }

type outcome = Correct | Detected | Silent_corrupt

let outcome_name = function
  | Correct -> "correct"
  | Detected -> "detected"
  | Silent_corrupt -> "silent_corrupt"

let classify_run spec (r : Sim.run) =
  if List.exists (fun (_, d) -> d r) spec.detectors then Detected
  else if not (Sim.wires_zero r.Sim.state ~except:spec.keep) then Detected
  else if
    List.for_all
      (fun (reg, v) -> Sim.register_value r.Sim.state reg = Some v)
      spec.expect
  then Correct
  else Silent_corrupt

let classify ?engine ?force ?max_terms ~rng ~faults spec =
  match
    Sim.run ~rng ?engine ?force ~faults ?max_terms spec.circuit
      ~init:spec.init
  with
  | r -> classify_run spec r
  | exception Mbu_error.Error _ -> Detected
  | exception Invalid_argument _ -> Detected

let oracle_outputs ?engine spec outputs =
  let r = Sim.run ?engine spec.circuit ~init:spec.init in
  if not (Sim.wires_zero r.Sim.state ~except:spec.keep) then
    Mbu_error.invalid ~subsystem:"Robustness.oracle_outputs"
      "fault-free run leaves a dirty ancilla";
  List.map (fun reg -> (reg, Sim.register_value_exn r.Sim.state reg)) outputs

(* ------------------------------------------------------------------ *)
(* Campaigns *)

type plan =
  | Exhaustive of { paulis : Fault.pauli list }
  | Random of { runs : int; faults_per_run : int }

type result = {
  spec_name : string;
  sites : int;
  runs : int;
  correct : int;
  detected : int;
  silent : int;
  silent_examples : Fault.t list list;
}

(* Split-RNG derivations: the fault plan and the measurement stream of run
   [i] each come from (tag, seed, i) only, so campaigns are reproducible
   and independent of the parallel fan-out. *)
let plan_rng ~seed i = Random.State.make [| 0x6661756c; seed; i |]
let run_rng ~seed i = Random.State.make [| 0x696e6a63; seed; i |]

let random_plan ~num_sites ~faults_per_run instrs rng =
  let k = min faults_per_run num_sites in
  let chosen = Hashtbl.create (2 * k) in
  let rec draw () =
    let s = Random.State.int rng num_sites in
    if Hashtbl.mem chosen s then draw ()
    else begin
      Hashtbl.add chosen s ();
      s
    end
  in
  List.init k (fun _ ->
      let site = Fault.site instrs (draw ()) in
      let pauli =
        match Random.State.int rng 3 with
        | 0 -> Fault.X
        | 1 -> Fault.Y
        | _ -> Fault.Z
      in
      Fault.of_site ~pauli site)

let exhaustive_plans ~paulis instrs =
  List.concat_map
    (fun site ->
      match site with
      | Fault.Gate_site _ ->
          List.map (fun pauli -> [ Fault.of_site ~pauli site ]) paulis
      | Fault.Measure_site _ | Fault.Branch_site _ -> [ [ Fault.of_site site ] ])
    (Fault.sites instrs)

let run_campaign ?(seed = 0) ?jobs ?engine ?force ?max_terms ?on_progress
    ~plan spec =
  let instrs = spec.circuit.Circuit.instrs in
  let sites = Fault.num_sites instrs in
  (* Warm the per-node memo tables (site counts, instruction counts) on
     this thread: the parallel tasks below then only read them, which keeps
     the shared Hashtbls race-free under OCaml 5 domains. *)
  ignore (Instr.count_instrs instrs);
  (match classify ?engine ?force ?max_terms ~rng:(run_rng ~seed (-1)) ~faults:[] spec with
  | Correct -> ()
  | o ->
      Mbu_error.invalid ~subsystem:"Robustness.run_campaign"
        (Printf.sprintf
           "fault-free baseline of %s classifies as %s — oracle or keep-list \
            is wrong"
           spec.name (outcome_name o)));
  let plans =
    match plan with
    | Exhaustive { paulis } -> Array.of_list (exhaustive_plans ~paulis instrs)
    | Random { runs; faults_per_run } ->
        Array.init runs (fun i ->
            random_plan ~num_sites:sites ~faults_per_run instrs
              (plan_rng ~seed i))
  in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallel.default_jobs ()
  in
  let total = Array.length plans in
  let completed = Atomic.make 0 in
  let outcomes =
    Parallel.map_tasks ~jobs ~tasks:total (fun i ->
        let o =
          Telemetry.time m_run_seconds (fun () ->
              classify ?engine ?force ?max_terms ~rng:(run_rng ~seed i)
                ~faults:plans.(i) spec)
        in
        Telemetry.incr m_runs;
        (match o with
        | Correct -> Telemetry.incr m_correct
        | Detected -> Telemetry.incr m_detected
        | Silent_corrupt -> Telemetry.incr m_silent);
        (* The heartbeat sees a monotone completion count; under parallel
           jobs it may fire from any domain, so callbacks must be
           thread-safe (printing a line is). *)
        (match on_progress with
        | Some f -> f ~completed:(1 + Atomic.fetch_and_add completed 1) ~total
        | None -> ());
        o)
  in
  let correct = ref 0 and detected = ref 0 and silent = ref 0 in
  let silent_examples = ref [] in
  Array.iteri
    (fun i o ->
      match o with
      | Correct -> incr correct
      | Detected -> incr detected
      | Silent_corrupt ->
          incr silent;
          if !silent < 8 then silent_examples := plans.(i) :: !silent_examples)
    outcomes;
  { spec_name = spec.name; sites; runs = total;
    correct = !correct; detected = !detected; silent = !silent;
    silent_examples = List.rev !silent_examples }

let detection_rate r =
  if r.detected + r.silent = 0 then 1.0
  else float_of_int r.detected /. float_of_int (r.detected + r.silent)

let silent_rate r =
  if r.runs = 0 then 0.0 else float_of_int r.silent /. float_of_int r.runs

(* ------------------------------------------------------------------ *)
(* Forced-branch execution *)

let force_all v _bit = Some v

let branch_arms (c : Circuit.t) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (function
      | Fault.Branch_site { bit; value; _ } ->
          if Hashtbl.mem seen (bit, value) then None
          else begin
            Hashtbl.add seen (bit, value) ();
            Some (bit, value)
          end
      | Fault.Gate_site _ | Fault.Measure_site _ -> None)
    (Fault.sites c.Circuit.instrs)

type coverage = {
  arms : (int * bool) list;
  uncovered : (int * bool * bool) list;
  correct_on_true : bool;
  correct_on_false : bool;
  correct_on_targeted : bool;
}

let check_forced_branches ?engine spec =
  let arms = branch_arms spec.circuit in
  let driven = Hashtbl.create 32 in
  let hook = function
    | Sim.Branch { bit; value; taken } ->
        Hashtbl.replace driven (bit, value, taken) ()
    | _ -> ()
  in
  let run_forced force =
    match
      Sim.run ?engine ~on_event:hook ~force spec.circuit ~init:spec.init
    with
    | r -> classify_run spec r = Correct
    | exception Mbu_error.Error _ -> false
  in
  let correct_on_true = run_forced (force_all true) in
  let correct_on_false = run_forced (force_all false) in
  let uncovered_now () =
    List.concat_map
      (fun (bit, value) ->
        List.filter_map
          (fun taken ->
            if Hashtbl.mem driven (bit, value, taken) then None
            else Some (bit, value, taken))
          [ true; false ])
      arms
  in
  (* Conditionals nested inside another conditional's body (e.g. a Gidney
     AND erasure inside an MBU correction block) only execute when the
     enclosing guard fires, so the two uniform runs can miss one of their
     arms.  Chase each remaining arm with targeted runs — the arm's own bit
     overridden against a uniform base — until a full sweep makes no
     progress. *)
  let correct_on_targeted = ref true in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (bit, value, taken) ->
        List.iter
          (fun base ->
            if not (Hashtbl.mem driven (bit, value, taken)) then begin
              let before = Hashtbl.length driven in
              let ok =
                run_forced (fun b ->
                    if b = bit then Some (if taken then value else not value)
                    else Some base)
              in
              if Hashtbl.length driven > before then progress := true;
              if Hashtbl.mem driven (bit, value, taken) && not ok then
                correct_on_targeted := false
            end)
          [ true; false ])
      (uncovered_now ())
  done;
  { arms; uncovered = uncovered_now (); correct_on_true; correct_on_false;
    correct_on_targeted = !correct_on_targeted }

let covered c =
  c.uncovered = [] && c.correct_on_true && c.correct_on_false
  && c.correct_on_targeted
