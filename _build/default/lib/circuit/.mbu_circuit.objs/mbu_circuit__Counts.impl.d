lib/circuit/counts.ml: Float Format Fun Gate Instr List Printf String
