test/test_big_constants.ml: Adder Adder_big Alcotest Bitstring Builder Circuit Counts Helpers List Mbu_bitstring Mbu_circuit Mbu_core Mbu_simulator Mod_add Printf Register Sim
