examples/range_query.mli:
