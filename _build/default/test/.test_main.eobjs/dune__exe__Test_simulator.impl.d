test/test_simulator.ml: Alcotest Array Builder Circuit Counts Gate Instr List Mbu_circuit Mbu_simulator Phase Random Register Sim State
