(* Grover search over a modular-arithmetic predicate.

   The paper's introduction lists "oracles for Grover's search" among the
   applications of efficient arithmetic circuits. This example builds such
   an oracle from the library's pieces — an in-place modular multiplication
   and the two-sided comparator of theorem 4.13, both MBU-optimized — and
   runs full Grover iterations on the simulator:

       find x in [0, p) such that (a.x mod p) is in (lo, hi).

     dune exec examples/grover.exe *)

open Mbu_circuit
open Mbu_simulator
open Mbu_core

let n = 4
let search_bits = 3 (* superpose x over [0, 8) so x < p always holds *)
let p = 13
let a = 5
let lo = 8
let hi = 12

let engine = Mod_mul.ripple_engine ~mbu:true Mod_add.spec_cdkpm

(* phase oracle: |x> -> (-1)^{a.x mod p in (lo,hi)} |x> *)
let oracle b ~x ~lo_reg ~hi_reg ~flag =
  Mod_mul.mult_inplace engine b ~a ~p ~x;
  Mbu.in_range ~mbu:true Adder.Cdkpm b ~x ~y:lo_reg ~z:hi_reg ~target:flag;
  Builder.z b flag;
  Mbu.in_range ~mbu:true Adder.Cdkpm b ~x ~y:lo_reg ~z:hi_reg ~target:flag;
  Mod_mul.mult_inplace engine b ~a:(Mod_mul.modinv ~a ~p) ~p ~x

(* diffusion about the uniform superposition over the search subspace *)
let diffusion b ~x =
  let qs = Register.to_list (Register.sub x ~pos:0 ~len:search_bits) in
  List.iter (fun q -> Builder.h b q) qs;
  List.iter (fun q -> Builder.x b q) qs;
  (match List.rev qs with
  | target :: controls -> Mcx.apply_z b ~controls ~target
  | [] -> ());
  List.iter (fun q -> Builder.x b q) qs;
  List.iter (fun q -> Builder.h b q) qs

let marked x = a * x mod p > lo && a * x mod p < hi

let () =
  let domain = 1 lsl search_bits in
  let marked_list =
    List.filter_map
      (fun x -> if marked x then Some (string_of_int x) else None)
      (List.init domain Fun.id)
  in
  Printf.printf
    "Searching x < %d with %d.x mod %d in (%d, %d); marked values: {%s}\n\n"
    domain a p lo hi
    (String.concat ", " marked_list);
  let iterations = [ 0; 1; 2 ] in
  List.iter
    (fun iters ->
      let b = Builder.create () in
      let x = Builder.fresh_register b "x" n in
      let lo_reg = Builder.fresh_register b "lo" n in
      let hi_reg = Builder.fresh_register b "hi" n in
      let flag = Builder.fresh_register b "flag" 1 in
      for i = 0 to search_bits - 1 do
        Builder.h b (Register.get x i)
      done;
      for _ = 1 to iters do
        oracle b ~x ~lo_reg ~hi_reg ~flag:(Register.get flag 0);
        diffusion b ~x
      done;
      let c = Builder.to_circuit b in
      let init =
        Sim.init_registers ~num_qubits:(Builder.num_qubits b)
          [ (lo_reg, lo); (hi_reg, hi) ]
      in
      let shots = 400 in
      let counts =
        Sim.sample_register ~rng:(Random.State.make [| iters; 11 |]) ~shots c
          ~init x
      in
      let hit =
        List.fold_left
          (fun acc (v, k) -> if marked v then acc + k else acc)
          0 counts
      in
      Printf.printf "  %d Grover iteration(s): marked probability %5.1f%%" iters
        (100. *. float_of_int hit /. float_of_int shots);
      let top =
        match counts with
        | (v, k) :: _ -> Printf.sprintf " (most frequent: x=%d, %d/%d)" v k shots
        | [] -> ""
      in
      print_endline top)
    iterations;
  let m = List.length marked_list in
  let theta = asin (sqrt (float_of_int m /. float_of_int domain)) in
  Printf.printf
    "\n(%d marked of %d: the sin^2((2k+1) theta) law predicts %.1f%% after 1\n\
    \ iteration and %.1f%% after 2)\n" m domain
    (100. *. (sin (3. *. theta) ** 2.))
    (100. *. (sin (5. *. theta) ** 2.))
