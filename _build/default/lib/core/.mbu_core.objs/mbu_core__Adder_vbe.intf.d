lib/core/adder_vbe.mli: Builder Gate Mbu_circuit Register
