(** Static invariant linter for adaptive circuits.

    [check] abstractly interprets the program once on the classical track —
    every wire and classical bit carries [Zero], [One] or [Top] (unknown) —
    joining over both arms of every conditional. The checks:

    - {b ancilla-leak} (error): an ancilla wire (index at or above
      [input_qubits]) ends the program {e provably} in |1>. Ancillas the
      analysis cannot decide (Top — e.g. MBU garbage wires, whose return to
      |0> relies on the H·U_g·H cancellation the abstract domain cannot
      see) are not reported: only definite violations are errors, which is
      what keeps the linter clean on every catalogue circuit while still
      catching a forgotten uncompute of a definite value.
    - {b unwritten-bit} (error): an [If_bit] conditions on a classical bit
      no measurement ever wrote.
    - {b wire-escape} / {b bit-escape} (error): a gate, measurement or
      conditional touches a wire / bit outside the declared widths. (A
      [Circuit.t] built through [Circuit.make] cannot contain these; the
      checks guard raw instruction lists via {!check_instrs}.)
    - {b use-after-measure} (warning): a gate acts on a measured-and-not-
      reset wire outside any conditional keyed on that measurement's bit —
      i.e. the collapsed wire is reused before (or without) the correction
      block that consumes the outcome. Once a conditional on the bit has
      run, the wire is considered handled.
    - {b bit-overwrite} (warning): a measurement writes a classical bit
      that already holds an outcome.

    Conditional bodies are re-analysed per call site (the abstract state
    differs), so shared [Call] nodes do not reduce lint work; findings are
    deduplicated, so a shared block referenced many times reports each
    problem once. *)

type severity = Error | Warning

type finding = {
  check : string;  (** ["ancilla-leak"], ["unwritten-bit"], ... *)
  severity : severity;
  message : string;
  qubit : int option;
  bit : int option;
}

type report = {
  num_qubits : int;
  num_bits : int;
  input_qubits : int;
  findings : finding list;  (** program order, deduplicated *)
}

val check : ?input_qubits:int -> Circuit.t -> report
(** [input_qubits] marks wires [0 .. input_qubits - 1] as circuit inputs
    (abstract value Top); the rest are ancillas assumed to start |0>.
    Defaults to {e all} wires, which disables the ancilla-leak check —
    pass the builder's [Builder.input_qubits] to enable it. *)

val check_instrs :
  ?input_qubits:int -> num_qubits:int -> num_bits:int -> Instr.t list -> report
(** Lint a raw instruction list against explicit widths (escape checks can
    actually fire here). *)

val is_clean : report -> bool
(** No [Error]-severity findings (warnings allowed). *)

val errors : report -> finding list

val to_string : report -> string
(** Human-readable, one line per finding plus a summary line. *)
